//! Drive the collective algorithms over *real* Linux kernel-assisted
//! copies: fork a team of processes and move data with
//! `process_vm_readv`/`process_vm_writev`, timing each Broadcast
//! algorithm.
//!
//! ```text
//! cargo run --release --example real_cma_collectives [nprocs] [bytes]
//! ```

use kacc::collectives::{bcast, BcastAlgo};
use kacc::comm::{Comm, CommError, CommExt};
use kacc::native::{cma_available, run_forked};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 20);

    if !cma_available() {
        eprintln!(
            "cross-process CMA is unavailable here (check \
             /proc/sys/kernel/yama/ptrace_scope); nothing to demonstrate"
        );
        return;
    }
    println!("broadcasting {count} B across {p} forked processes via real CMA\n");

    for algo in [
        BcastAlgo::DirectRead,
        BcastAlgo::DirectWrite,
        BcastAlgo::KNomial { radix: 3 },
        BcastAlgo::ScatterAllgather,
    ] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let buf = if me == 0 {
                comm.alloc_with(&kacc::collectives::verify::contribution(0, count))
            } else {
                comm.alloc(count)
            };
            // Synchronize, run, and report rank 0's wall time.
            kacc::comm::smcoll::sm_barrier(comm)?;
            let t0 = comm.time_ns();
            bcast(comm, algo, buf, count, 0)?;
            let dt = comm.time_ns() - t0;
            // Every byte must have arrived.
            let got = comm.read_all(buf)?;
            let expected = kacc::collectives::verify::contribution(0, count);
            if let Some(d) = kacc::collectives::verify::diff(&got, &expected) {
                return Err(CommError::Protocol(format!("rank {me}: {d}")));
            }
            // Rank 0 prints after everyone verified.
            kacc::comm::smcoll::sm_barrier(comm)?;
            if me == 0 {
                println!(
                    "  {algo:?}: {:.1} us (verified on all ranks)",
                    dt as f64 / 1000.0
                );
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{algo:?} failed: {e}"));
    }
    println!("\nnote: wall times on a shared CI box are noisy; the simulator\n(`repro fig11`) is the calibrated instrument for algorithm shapes.");
}
