//! Characterize a machine the way the paper does (§II): run the Table
//! III step-isolation probes against the simulator, measure the
//! contention factor γ under increasing concurrency, and fit it with
//! Levenberg–Marquardt. Finally, ask the model-driven tuner what it
//! would pick for each collective.
//!
//! ```text
//! cargo run --release --example contention_model [knl|broadwell|power8]
//! ```

use kacc::collectives::Tuner;
use kacc::machine::SimProbe;
use kacc::model::extract::{extract_params, measure_gamma};
use kacc::model::gamma::fit_gamma;
use kacc::model::{ArchProfile, GammaModel};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "knl".into());
    let arch = ArchProfile::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown architecture '{name}' (try knl, broadwell, power8)");
        std::process::exit(2);
    });
    println!("== characterizing {} ==", arch.name);

    // Table III: T1..T4 with degenerate iovec counts.
    let mut probe = SimProbe::new(arch.clone());
    let ex = extract_params(&mut probe, 200);
    println!("\nstep isolation (200 pages):");
    println!("  T1 syscall          {:>9.2} us", ex.t1_ns / 1e3);
    println!("  T2 + access check   {:>9.2} us", ex.t2_ns / 1e3);
    println!("  T3 + lock/pin       {:>9.2} us", ex.t3_ns / 1e3);
    println!("  T4 + copy           {:>9.2} us", ex.t4_ns / 1e3);
    println!("\nderived model parameters (paper Table IV analogues):");
    println!("  alpha = {:.2} us", ex.alpha_ns / 1e3);
    println!("  beta  = {:.2} GB/s", ex.bandwidth_gbps());
    println!(
        "  l     = {:.3} us/page (s = {} B)",
        ex.l_ns / 1e3,
        arch.page_size
    );

    // Fig 5: gamma measurement + NLLS fit.
    let readers: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&r| r < arch.default_procs)
        .collect();
    let points = measure_gamma(&mut probe, &readers, &[10, 50, 100]);
    println!("\ncontention factor (averaged over 10/50/100-page probes):");
    for pt in &points {
        println!("  c = {:>3}: gamma = {:>8.2}", pt.c, pt.gamma);
    }
    let fit = fit_gamma(&points).expect("gamma fit");
    if let GammaModel::Quadratic { a, b } = fit.model {
        println!(
            "  NLLS best fit: gamma(c) = {a:.4} c^2 + {b:.4} c  (ssr {:.2})",
            fit.ssr
        );
    }

    // What the tuner concludes.
    let tuner = Tuner::new(&arch);
    let p = arch.default_procs;
    println!("\ntuner selections for p = {p}:");
    for eta in [4 << 10, 64 << 10, 1 << 20, 4 << 20] {
        println!(
            "  {:>7} B: scatter {:?}, bcast {:?}, allgather {:?}",
            eta,
            tuner.scatter(p, eta),
            tuner.bcast(p, eta),
            tuner.allgather(p, eta),
        );
    }
}
