//! The §VII-G scaling study: gather across a simulated KNL cluster with
//! a single-level direct algorithm vs the two-level contention-aware
//! design, sweeping node counts.
//!
//! ```text
//! cargo run --release --example multinode_gather [ranks_per_node] [bytes]
//! ```

use kacc::model::ArchProfile;
use kacc::netsim::{cluster_gather, MultiNodeStrategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let rpn: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64 << 10);
    let arch = ArchProfile::knl();
    let fabric = arch.default_fabric();
    println!(
        "MPI_Gather of {count} B/rank, {rpn} ranks/node over {} ({} B/ns, {} ns startup)\n",
        fabric.name, fabric.bw_link, fabric.alpha_ns
    );
    println!(
        "{:>6} {:>8} {:>18} {:>18} {:>16} {:>12}",
        "nodes", "ranks", "single-level (us)", "two-level (us)", "pipelined (us)", "improvement"
    );
    for nodes in [2usize, 4, 8] {
        let single = cluster_gather(
            &arch,
            nodes,
            rpn,
            fabric.clone(),
            count,
            MultiNodeStrategy::SingleLevel,
        )
        .end_ns as f64
            / 1e3;
        let two = cluster_gather(
            &arch,
            nodes,
            rpn,
            fabric.clone(),
            count,
            MultiNodeStrategy::TwoLevel { k: 4 },
        )
        .end_ns as f64
            / 1e3;
        let piped = cluster_gather(
            &arch,
            nodes,
            rpn,
            fabric.clone(),
            count,
            MultiNodeStrategy::TwoLevelPipelined { k: 4 },
        )
        .end_ns as f64
            / 1e3;
        println!(
            "{nodes:>6} {:>8} {single:>18.1} {two:>18.1} {piped:>16.1} {:>11.2}x",
            nodes * rpn,
            single / piped
        );
    }
    println!(
        "\nthe two-level design leans on the cheap contention-aware intra-node\n\
         gather (throttled CMA writes) and ships one bulk message per node."
    );
}
