//! Calibrate the *real* host machine the way the paper characterizes its
//! testbeds: recover α, β and the per-page cost from genuine
//! `process_vm_readv` calls between forked processes, and probe the
//! contention inflation with concurrent same-source readers.
//!
//! ```text
//! cargo run --release --example calibrate_native [trials]
//! ```
//!
//! Numbers from shared/virtualized machines are noisy and a box with
//! fewer cores than readers under-reports contention; the calibrated
//! simulator remains the instrument for figure regeneration.

use kacc::native::{calibrate_native, cma_available, measure_native_gamma};

fn main() {
    if !cma_available() {
        eprintln!("cross-process CMA unavailable (ptrace scope?); cannot calibrate");
        return;
    }
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(9);

    println!("calibrating this machine's kernel-assisted copy path ({trials} trials)\n");
    match calibrate_native(trials) {
        Ok(cal) => {
            println!("  page size     : {} B", cal.page_size);
            println!(
                "  alpha         : {:.2} us  (paper Table IV: 0.75-1.43 us)",
                cal.alpha_ns / 1e3
            );
            println!(
                "  beta          : {:.2} GB/s (paper Table IV: 3.1-3.7 GB/s)",
                cal.bandwidth_gbps()
            );
            println!(
                "  page slope    : {:.3} us/page (cold, = l + s*beta)",
                cal.page_slope_ns / 1e3
            );
            println!(
                "  l (lock+pin)  : {:.3} us/page (paper Table IV: 0.11-0.53 us)",
                cal.l_ns / 1e3
            );
        }
        Err(e) => {
            eprintln!("calibration failed: {e}");
            return;
        }
    }

    println!("\ncontention probe (one-to-all, 64 pages):");
    for readers in [2usize, 4, 8] {
        match measure_native_gamma(readers, 64, trials) {
            Ok(g) => println!("  {readers} readers: per-reader inflation {g:.2}x"),
            Err(e) => eprintln!("  {readers} readers: failed: {e}"),
        }
    }
    println!("\n(on boxes with fewer cores than readers this is a lower bound;\n the simulator's emergent gamma is the calibrated reference)");
}
