//! Quickstart: run a contention-aware Gather on a simulated KNL node and
//! compare it with what the baseline library personas would do.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kacc::collectives::{gather, GatherAlgo, Tuner};
use kacc::comm::{Comm, CommExt};
use kacc::machine::run_team;
use kacc::model::ArchProfile;

fn main() {
    let arch = ArchProfile::knl();
    let p = arch.default_procs;
    let count = 1 << 20; // 1 MiB per rank
    let tuner = Tuner::new(&arch);
    let algo = tuner.gather(p, count);
    println!(
        "simulating MPI_Gather of {count} B x {p} ranks on {}",
        arch.name
    );
    println!("tuner selected: {algo:?}");

    // Every rank contributes a rank-stamped pattern; rank 0 collects.
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&kacc::collectives::verify::contribution(me, count));
        let rb = (me == 0).then(|| comm.alloc(p * count));
        gather(comm, algo, Some(sb), rb, count, 0).expect("gather");
        rb.map(|b| comm.read_all(b).expect("read"))
    });

    // Verify MPI semantics byte-for-byte.
    let expected = kacc::collectives::verify::gather_expected(p, count);
    match &results[0] {
        Some(got) if kacc::collectives::verify::diff(got, &expected).is_none() => {
            println!("data check: OK ({} bytes at the root)", expected.len());
        }
        Some(got) => {
            panic!(
                "data mismatch: {}",
                kacc::collectives::verify::diff(got, &expected).unwrap()
            )
        }
        None => unreachable!("rank 0 returns the buffer"),
    }
    println!("simulated latency: {:.1} us", run.end_ns as f64 / 1000.0);

    // How long would the naive algorithms have taken?
    for (label, algo) in [
        ("parallel writes (unthrottled)", GatherAlgo::ParallelWrite),
        ("sequential reads", GatherAlgo::SequentialRead),
    ] {
        let (alt, _) = run_team(&arch, p, move |comm| {
            let me = comm.rank();
            let sb = comm.alloc(count);
            let rb = (me == 0).then(|| comm.alloc(p * count));
            gather(comm, algo, Some(sb), rb, count, 0).expect("gather");
        });
        println!(
            "  vs {label:32} {:>9.1} us ({:.2}x slower)",
            alt.end_ns as f64 / 1000.0,
            alt.end_ns as f64 / run.end_ns as f64
        );
    }
}
