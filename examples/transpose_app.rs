//! A miniature application kernel of the kind the paper's introduction
//! motivates: a distributed matrix transpose (the communication heart of
//! 2-D FFTs) built on MPI_Alltoall, followed by a residual check via
//! MPI_Allreduce — all intra-node, where the paper says applications
//! spend "a significant portion of their execution time".
//!
//! The transpose runs on the calibrated KNL simulator under three
//! Alltoall implementations (two-copy shared memory, point-to-point CMA,
//! native contention-aware CMA) and verifies the mathematics each time.
//!
//! ```text
//! cargo run --release --example transpose_app [ranks] [n]
//! ```

use kacc::collectives::reduce::{allreduce, AllreduceAlgo, Dtype, ReduceAlgo, ReduceOp};
use kacc::collectives::{alltoall, AlltoallAlgo, BcastAlgo, Tuner};
use kacc::comm::{Comm, CommExt};
use kacc::machine::run_team;
use kacc::model::ArchProfile;
use kacc::mpi::{baseline, Library};

/// Element (i, j) of the global n×n matrix.
fn elem(i: usize, j: usize) -> f64 {
    (i * 31 + j * 7) as f64 * 0.25
}

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    if !n.is_multiple_of(p) {
        eprintln!("error: matrix side {n} must be a multiple of the rank count {p}");
        std::process::exit(2);
    }
    let rows = n / p; // row-block decomposition
    let arch = ArchProfile::knl();
    println!(
        "distributed {n}x{n} f64 transpose on simulated {} with {p} ranks \
         ({} KiB per rank per exchange)\n",
        arch.name,
        n * rows * 8 / 1024,
    );

    let variants: Vec<(&str, Option<AlltoallAlgo>, Option<Library>)> = vec![
        ("SHMEM (IntelMPI-like)", None, Some(Library::IntelMpi)),
        ("CMA pt2pt (MVAPICH2-like)", None, Some(Library::Mvapich2)),
        (
            "native CMA-coll (proposed)",
            Some(AlltoallAlgo::Pairwise),
            None,
        ),
    ];

    for (label, algo, lib) in variants {
        let (run, results) = run_team(&arch, p, move |comm| {
            let me = comm.rank();
            // My row block, packed so destination blocks are contiguous:
            // block d holds my rows restricted to columns [d·rows, ...).
            let block = rows * rows * 8;
            let sb = comm.alloc(p * block);
            for d in 0..p {
                let mut chunk = Vec::with_capacity(block);
                for r in 0..rows {
                    for c in 0..rows {
                        chunk.extend_from_slice(&elem(me * rows + r, d * rows + c).to_le_bytes());
                    }
                }
                comm.write_local(sb, d * block, &chunk).expect("pack");
            }
            let rb = comm.alloc(p * block);
            match (algo, lib) {
                (Some(a), _) => alltoall(comm, a, Some(sb), rb, block).expect("alltoall"),
                (_, Some(l)) => {
                    let tuner = Tuner::new(&ArchProfile::knl());
                    baseline::alltoall(comm, l, &tuner, Some(sb), rb, block).expect("alltoall");
                }
                _ => unreachable!(),
            }

            // Verify: after the exchange + local block transpose, I hold
            // column block `me` of the original matrix.
            let mut max_err = 0.0f64;
            let mut buf = vec![0u8; block];
            for s in 0..p {
                comm.read_local(rb, s * block, &mut buf).expect("unpack");
                for r in 0..rows {
                    for c in 0..rows {
                        let got =
                            f64::from_le_bytes(buf[(r * rows + c) * 8..][..8].try_into().unwrap());
                        // Element (s·rows + r, me·rows + c) transposed.
                        let want = elem(s * rows + r, me * rows + c);
                        max_err = max_err.max((got - want).abs());
                    }
                }
            }

            // Agree on the global max error with the extension
            // Allreduce (Max over f64 lanes).
            let err_in = comm.alloc_with(&max_err.to_le_bytes());
            let err_out = comm.alloc(8);
            allreduce(
                comm,
                AllreduceAlgo::ReduceBcast {
                    reduce: ReduceAlgo::KNomialTree { radix: 4 },
                    bcast: BcastAlgo::KNomial { radix: 4 },
                },
                err_in,
                err_out,
                8,
                Dtype::F64,
                ReduceOp::Max,
            )
            .expect("allreduce");
            let global = comm.read_all(err_out).expect("read");
            f64::from_le_bytes(global.try_into().unwrap())
        });
        let err = results[0];
        assert!(
            results.iter().all(|e| *e == err),
            "allreduce must agree everywhere"
        );
        assert_eq!(err, 0.0, "transpose must be exact");
        println!(
            "  {label:28} {:>10.1} us  (global max error {err})",
            run.end_ns as f64 / 1e3
        );
    }
    println!(
        "\nabove the ~16 KiB kernel-assist threshold the single-copy paths win,\n\
         and the native collective also skips per-message RTS/CTS; for tiny\n\
         blocks the libraries' eager path is the right tool (try n = 256).\n\
         see `repro fig9` and `repro fig15` for the full sweeps."
    );
}
