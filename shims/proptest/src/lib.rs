//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`
//! header), `Strategy` with `prop_map`/`boxed`, range / `Just` / tuple /
//! `collection::vec` / `any::<T>()` / `bool::ANY` strategies,
//! `prop_oneof!`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, acceptable for this workspace:
//! cases are generated from a seed derived deterministically from the
//! test name (reproducible across runs, printed on failure), and there
//! is **no shrinking** — a failure reports the assertion message and
//! case number instead of a minimized input.

pub mod test_runner {
    //! Case runner, config, and the RNG handed to strategies.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (subset of proptest's, all fields public so
    /// `ProptestConfig { cases: N, ..ProptestConfig::default() }` works).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Abort after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the inputs are outside the test's
        /// domain; generate a fresh case without counting it.
        Reject(String),
        /// `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving strategy generation.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Access the underlying seedable generator.
        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive `case` until `config.cases` successes, a failure, or the
    /// rejection cap. Called by the expansion of [`proptest!`].
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let seed = fnv1a(name);
        let mut rng = TestRng(StdRng::seed_from_u64(seed));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected}) — prop_assume! domain too narrow"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {passed} \
                         (name-derived seed {seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.inner().random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategies {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.inner().random_range(self.clone())
                    }
                }

                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.inner().random_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.inner().random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical full-domain strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(rng: &mut TestRng) -> $t {
                        rng.inner().random_range(<$t>::MIN..=<$t>::MAX)
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.inner().random()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`, e.g. `any::<u8>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.inner().random()
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification: an exact `usize` or a `usize` range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng
                .inner()
                .random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` usage.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Matches real-proptest syntax: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(
                    stringify!($name),
                    &__config,
                    |__rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                        #[allow(clippy::redundant_closure_call)]
                        let __result: $crate::test_runner::TestCaseResult = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        __result
                    },
                );
            }
        )*
    };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a property; on failure the current case fails (no panic
/// mid-case — the runner reports name, case number, and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality; operands are taken by reference so they remain
/// usable after the assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}`", __left, __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}: `{:?}` != `{:?}`",
                    ::std::format!($($fmt)+), __left, __right
                ),
            ));
        }
    }};
}

/// Discard the current case (does not count toward `cases`) when the
/// generated inputs fall outside the test's domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn algo() -> impl Strategy<Value = (u32, bool)> {
        prop_oneof![Just((1u32, false)), (2u32..5).prop_map(|k| (k, true)),]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            n in 1usize..7,
            vals in crate::collection::vec(-1.0f64..1.0, 49),
            bytes in crate::collection::vec(crate::arbitrary::any::<u8>(), 0..20),
            flag in crate::bool::ANY,
            pair in algo(),
        ) {
            prop_assume!(n != 6);
            prop_assert!((1..6).contains(&n), "n was {n}");
            prop_assert_eq!(vals.len(), 49);
            prop_assert!(vals.iter().all(|v| (-1.0..1.0).contains(v)));
            prop_assert!(bytes.len() < 20);
            let _ = flag;
            prop_assert!(pair.0 >= 1 && pair.0 < 5);
            // operands stay usable after prop_assert_eq
            prop_assert_eq!(pair.0 >= 2, pair.1);
            prop_assert!(pair.0 > 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::test_runner::run(
            "always_fails",
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            |_rng| Err(TestCaseError::Fail("nope".into())),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ProptestConfig {
            cases: 8,
            ..ProptestConfig::default()
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for sink in [&mut a, &mut b] {
            crate::test_runner::run("det", &cfg, |rng| {
                sink.push(Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }
}
