//! Offline stand-in for `criterion`.
//!
//! Implements the group/bencher API surface this workspace's benches
//! use (`benchmark_group`, `sample_size`/`warm_up_time`/
//! `measurement_time`, `bench_function`, `iter`/`iter_batched`/
//! `iter_custom`, `criterion_group!`/`criterion_main!`) with a simple
//! wall-clock mean estimator: one warm-up call, then up to
//! `sample_size` samples bounded by the measurement-time budget, and a
//! `group/label: mean ... ns/iter` line on stdout. There is no
//! statistical analysis, outlier detection, or HTML report.
//!
//! When cargo runs a bench target in test mode (`cargo test` passes
//! `--test`), each benchmark executes exactly once as a smoke test.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types (subset of criterion's).

    /// Wall-clock time measurement (the only one the shim supports).
    pub struct WallTime;
}

/// Benchmark driver; hand `&mut Criterion` to each registered bench fn.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test`
        // and `--bench` under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(2),
            test_mode: self.test_mode,
            _criterion: PhantomData,
            _measurement: PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    _criterion: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark. `f` is called repeatedly with a [`Bencher`]
    /// and must invoke one of its `iter*` methods.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        if self.test_mode {
            f(&mut b);
            println!("{}/{}: ok (test mode, 1 iter)", self.name, id);
            return self;
        }

        // Warm-up: at least one call, then keep going until the budget
        // is spent.
        let warm_start = Instant::now();
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Measurement: one logical iteration per sample, stopping early
        // once the time budget is exhausted.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{}/{}: mean {:.1} ns/iter, min {:.1} ns/iter ({} samples)",
            self.name,
            id,
            mean,
            min,
            samples.len()
        );
        self
    }

    /// End the group (report aggregation is a no-op in the shim).
    pub fn finish(self) {}
}

/// Per-benchmark timing harness passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` excluding per-iteration `setup` cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Let the routine report its own duration for `iters` iterations
    /// (used to feed simulated virtual time into the harness).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// How `iter_batched` amortizes setup (ignored by the shim's
/// one-iteration-per-sample model).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_probe(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("iter", |b| b.iter(|| 2u64 + 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(17 * iters))
        });
        g.finish();
    }

    criterion_group!(benches, bench_probe);

    #[test]
    fn group_api_runs_every_iter_flavor() {
        benches();
    }

    #[test]
    fn iter_custom_reports_routine_duration() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(|iters| Duration::from_nanos(10 * iters));
        assert_eq!(b.elapsed, Duration::from_nanos(40));
    }
}
