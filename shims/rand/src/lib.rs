//! Offline stand-in for `rand` 0.9.
//!
//! Implements the slice of the rand 0.9 API this workspace uses
//! (`StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range`) on top
//! of xoshiro256++ seeded via splitmix64 — the same constructions the
//! real crate family uses, though the exact stream differs from upstream
//! `StdRng` (which is ChaCha12). All consumers in this workspace only
//! require determinism for a fixed seed, not a specific stream.

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from a range, e.g. `rng.random_range(3..=4)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Raw 64-bit output source.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types sampleable by [`Rng::random`].
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform sample in `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in random_range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = uniform_below(rng, span);
                    ((self.start as i128) + off as i128) as $t
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in random_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full-width range: every raw value is valid.
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_below(rng, span as u64);
                    ((lo as i128) + off as i128) as $t
                }
            }
        )*
    };
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit: f64 = Random::random(rng);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! RNG implementations (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ with splitmix64
    /// state expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 2];
        for _ in 0..200 {
            let v: u32 = rng.random_range(3..=4);
            assert!((3..=4).contains(&v));
            seen[(v - 3) as usize] = true;
            let w: usize = rng.random_range(5..8);
            assert!((5..8).contains(&w));
            let x: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&x));
        }
        assert!(seen[0] && seen[1], "inclusive upper bound never sampled");
    }
}
