//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape:
//! `Mutex::lock` returns the guard directly (poisoning is swallowed, as
//! parking_lot has no poisoning) and `Condvar::wait` takes the guard by
//! `&mut`. Fairness/performance characteristics differ from the real
//! crate, which is irrelevant for this workspace's correctness-oriented
//! simulator use.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex with parking_lot's panic-free `lock`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds the std guard behind an `Option` so
/// [`Condvar::wait`] can move it through std's by-value wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` shape.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }
}
