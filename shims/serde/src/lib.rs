//! Offline stand-in for `serde`.
//!
//! This workspace only uses serde as *derive-checked marker traits* (no
//! serializer backend is wired up yet — DESIGN.md notes serde_json is
//! deliberately unused). The shim therefore exposes `Serialize` /
//! `Deserialize` as empty traits plus derive macros that emit empty
//! impls, which is exactly enough for the `#[derive(...)]` sites and
//! trait-bound assertions in `kacc-model` to type-check. When a real
//! serialization backend is needed, swap this shim for the real crate by
//! editing the workspace `Cargo.toml` path entry.

// Let the derive-emitted `::serde::...` paths resolve inside this
// crate's own tests.
#[cfg(test)]
extern crate self as serde;

/// Marker for types that can be serialized (no-op in the shim).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op in the shim).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

// Blanket impls for std types commonly nested in derived structs, so
// generated empty impls never need field bounds.
macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Probe {
        a: usize,
        b: Vec<f64>,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum ProbeEnum {
        One,
        Two(u32),
    }

    #[test]
    fn derives_produce_marker_impls() {
        fn assert_serde<T: crate::Serialize + for<'a> crate::Deserialize<'a>>() {}
        assert_serde::<Probe>();
        assert_serde::<ProbeEnum>();
    }
}
