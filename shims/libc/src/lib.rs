//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *tiny* slice of libc that `kacc-native` actually uses: process
//! control (`fork`/`waitpid`/`kill`), anonymous shared mappings
//! (`mmap`/`munmap`), and `sysconf`. Constants are the Linux ABI values;
//! this crate is gated to Linux by `kacc-native` itself.

#![allow(non_camel_case_types)]

use core::ffi::c_void as core_c_void;

/// Opaque C `void`.
pub type c_void = core_c_void;
/// C `int`.
pub type c_int = i32;
/// C `unsigned int`.
pub type c_uint = u32;
/// C `long`.
pub type c_long = i64;
/// POSIX process id.
pub type pid_t = i32;
/// POSIX offset type.
pub type off_t = i64;
/// C `size_t`.
pub type size_t = usize;
/// C `ssize_t`.
pub type ssize_t = isize;

/// `PROT_READ` — pages may be read.
pub const PROT_READ: c_int = 1;
/// `PROT_WRITE` — pages may be written.
pub const PROT_WRITE: c_int = 2;
/// `MAP_SHARED` — updates are visible to other mappings.
pub const MAP_SHARED: c_int = 0x0001;
/// `MAP_ANONYMOUS` — not backed by a file.
pub const MAP_ANONYMOUS: c_int = 0x0020;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
/// `SIGKILL`.
pub const SIGKILL: c_int = 9;
/// `sysconf` name for the page size.
pub const _SC_PAGESIZE: c_int = 30;

extern "C" {
    /// `fork(2)`.
    pub fn fork() -> pid_t;
    /// `_exit(2)`.
    pub fn _exit(status: c_int) -> !;
    /// `kill(2)`.
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
    /// `waitpid(2)`.
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    /// `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// `sysconf(3)`.
    pub fn sysconf(name: c_int) -> c_long;
}

/// Did the child exit normally? (Linux `WIFEXITED`.)
#[allow(non_snake_case)]
pub fn WIFEXITED(status: c_int) -> bool {
    (status & 0x7f) == 0
}

/// Exit code of a normally exited child. (Linux `WEXITSTATUS`.)
#[allow(non_snake_case)]
pub fn WEXITSTATUS(status: c_int) -> c_int {
    (status >> 8) & 0xff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_macros_match_linux_encoding() {
        // Normal exit with code 3 is encoded as 3 << 8.
        assert!(WIFEXITED(3 << 8));
        assert_eq!(WEXITSTATUS(3 << 8), 3);
        // Killed by SIGKILL (low 7 bits nonzero) is not a normal exit.
        assert!(!WIFEXITED(SIGKILL));
    }

    #[test]
    fn sysconf_page_size_is_sane() {
        let sz = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(sz >= 4096, "page size {sz}");
    }
}
