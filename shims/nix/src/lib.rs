//! Offline stand-in for the `nix` crate.
//!
//! Provides exactly the API slice `kacc-native` uses: `unistd::Pid`,
//! `errno::Errno`, and `sys::uio::{process_vm_readv, process_vm_writev,
//! RemoteIoVec}` as safe wrappers over the raw Linux syscalls.

/// Crate-level result alias, matching `nix::Result`.
pub type Result<T> = std::result::Result<T, errno::Errno>;

/// Process identifiers.
pub mod unistd {
    /// A process id (newtype over `pid_t`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Pid(libc::pid_t);

    impl Pid {
        /// Wrap a raw pid.
        pub fn from_raw(pid: libc::pid_t) -> Pid {
            Pid(pid)
        }

        /// The raw pid value.
        pub fn as_raw(self) -> libc::pid_t {
            self.0
        }
    }
}

/// errno values as a typed enum (the small set this workspace matches on).
pub mod errno {
    /// Subset of Linux errno values. `from_raw` folds unknown values into
    /// the raw variant-free representation by keeping the integer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[repr(i32)]
    #[allow(clippy::upper_case_acronyms)]
    pub enum Errno {
        /// Operation not permitted.
        EPERM = 1,
        /// No such process.
        ESRCH = 3,
        /// Interrupted system call (retry transparently).
        EINTR = 4,
        /// Resource temporarily unavailable (transient; retry with backoff).
        EAGAIN = 11,
        /// Bad address.
        EFAULT = 14,
        /// Invalid argument.
        EINVAL = 22,
        /// No such syscall (or unsupported feature).
        ENOSYS = 38,
        /// Any errno this shim has no named variant for.
        UnknownErrno = 0,
    }

    impl Errno {
        /// Latest errno of the calling thread.
        pub fn last() -> Errno {
            Errno::from_raw(last_raw())
        }

        /// Map a raw errno to the typed enum.
        pub fn from_raw(raw: i32) -> Errno {
            match raw {
                1 => Errno::EPERM,
                3 => Errno::ESRCH,
                4 => Errno::EINTR,
                11 => Errno::EAGAIN,
                14 => Errno::EFAULT,
                22 => Errno::EINVAL,
                38 => Errno::ENOSYS,
                _ => Errno::UnknownErrno,
            }
        }
    }

    pub(crate) fn last_raw() -> i32 {
        // SAFETY: __errno_location is the glibc TLS errno accessor.
        unsafe { *__errno_location() }
    }

    extern "C" {
        fn __errno_location() -> *mut i32;
    }
}

/// Vectored cross-process I/O (`process_vm_readv`/`process_vm_writev`).
pub mod sys {
    /// See module docs.
    pub mod uio {
        use crate::errno::Errno;
        use crate::unistd::Pid;
        use std::io::{IoSlice, IoSliceMut};

        /// A `(base, len)` span in the remote process's address space.
        #[derive(Debug, Clone, Copy)]
        pub struct RemoteIoVec {
            /// Remote virtual address.
            pub base: usize,
            /// Span length in bytes.
            pub len: usize,
        }

        #[repr(C)]
        struct RawIoVec {
            iov_base: *mut libc::c_void,
            iov_len: usize,
        }

        extern "C" {
            #[link_name = "process_vm_readv"]
            fn raw_process_vm_readv(
                pid: libc::pid_t,
                local_iov: *const RawIoVec,
                liovcnt: libc::c_long,
                remote_iov: *const RawIoVec,
                riovcnt: libc::c_long,
                flags: libc::c_long,
            ) -> isize;
            #[link_name = "process_vm_writev"]
            fn raw_process_vm_writev(
                pid: libc::pid_t,
                local_iov: *const RawIoVec,
                liovcnt: libc::c_long,
                remote_iov: *const RawIoVec,
                riovcnt: libc::c_long,
                flags: libc::c_long,
            ) -> isize;
        }

        fn remote_raw(remote: &[RemoteIoVec]) -> Vec<RawIoVec> {
            remote
                .iter()
                .map(|r| RawIoVec {
                    iov_base: r.base as *mut libc::c_void,
                    iov_len: r.len,
                })
                .collect()
        }

        /// Single-copy read from `pid`'s address space into `local`.
        pub fn process_vm_readv(
            pid: Pid,
            local: &mut [IoSliceMut<'_>],
            remote: &[RemoteIoVec],
        ) -> crate::Result<usize> {
            let local_raw: Vec<RawIoVec> = local
                .iter_mut()
                .map(|s| RawIoVec {
                    iov_base: s.as_mut_ptr() as *mut libc::c_void,
                    iov_len: s.len(),
                })
                .collect();
            let remote_raw = remote_raw(remote);
            // SAFETY: iovecs point at live slices sized by their lengths.
            let n = unsafe {
                raw_process_vm_readv(
                    pid.as_raw(),
                    local_raw.as_ptr(),
                    local_raw.len() as libc::c_long,
                    remote_raw.as_ptr(),
                    remote_raw.len() as libc::c_long,
                    0,
                )
            };
            if n < 0 {
                Err(Errno::last())
            } else {
                Ok(n as usize)
            }
        }

        /// Single-copy write of `local` into `pid`'s address space.
        pub fn process_vm_writev(
            pid: Pid,
            local: &[IoSlice<'_>],
            remote: &[RemoteIoVec],
        ) -> crate::Result<usize> {
            let local_raw: Vec<RawIoVec> = local
                .iter()
                .map(|s| RawIoVec {
                    iov_base: s.as_ptr() as *mut libc::c_void,
                    iov_len: s.len(),
                })
                .collect();
            let remote_raw = remote_raw(remote);
            // SAFETY: iovecs point at live slices sized by their lengths.
            let n = unsafe {
                raw_process_vm_writev(
                    pid.as_raw(),
                    local_raw.as_ptr(),
                    local_raw.len() as libc::c_long,
                    remote_raw.as_ptr(),
                    remote_raw.len() as libc::c_long,
                    0,
                )
            };
            if n < 0 {
                Err(Errno::last())
            } else {
                Ok(n as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sys::uio::{process_vm_readv, RemoteIoVec};
    use super::unistd::Pid;
    use std::io::IoSliceMut;

    #[test]
    fn self_read_roundtrips() {
        let src = vec![7u8; 64];
        let mut dst = vec![0u8; 64];
        let me = Pid::from_raw(unsafe { libc_getpid() });
        let n = process_vm_readv(
            me,
            &mut [IoSliceMut::new(&mut dst)],
            &[RemoteIoVec {
                base: src.as_ptr() as usize,
                len: src.len(),
            }],
        )
        .expect("self-read is always permitted");
        assert_eq!(n, 64);
        assert_eq!(dst, src);
    }

    extern "C" {
        #[link_name = "getpid"]
        fn libc_getpid() -> i32;
    }
}
