//! Derive macros for the offline `serde` stand-in: emit empty marker
//! impls for the derived type. Handwritten token scanning instead of
//! `syn`/`quote` keeps the shim dependency-free (the build environment
//! has no registry access).

use proc_macro::{TokenStream, TokenTree};

/// Derive an empty `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive an empty `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}

/// Extract the type name following the `struct`/`enum` keyword. Generic
/// types are rejected (nothing in this workspace derives on generics).
fn type_name(ts: TokenStream) -> String {
    let mut iter = ts.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde shim: generic type {name} unsupported; \
                                     write the impls by hand"
                                );
                            }
                        }
                        return name;
                    }
                    other => panic!("serde shim: expected type name, got {other:?}"),
                }
            }
        }
    }
    panic!("serde shim: no struct/enum keyword in derive input");
}
