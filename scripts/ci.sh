#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Fails fast on the first gate that trips.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1) =="
cargo test -q

echo "== benches compile =="
cargo bench --no-run -q

echo "== determinism suite (repeat runs, --jobs 1 vs 8, traces) =="
cargo test -q --release -p kacc-bench --test determinism
cargo test -q --release -p kacc-collectives --test fastpath_equivalence

echo "== engine equivalence (threads vs polled, bitwise) =="
cargo test -q --release -p kacc-sim-core --test polled_parity
cargo test -q --release -p kacc-collectives --test engine_equivalence

echo "== chaos suite (fixed seed corpus + one fresh seed) =="
# The chaos tests always run their fixed corpus; KACC_CHAOS_SEED adds one
# fresh seed on top. Echoed up front so a failure is reproducible with
# `KACC_CHAOS_SEED=<seed> cargo test -p kacc-collectives --test chaos`
# (every assertion message also carries the seed it failed under).
chaos_seed="${KACC_CHAOS_SEED:-$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')}"
echo "[chaos fresh seed: ${chaos_seed}]"
KACC_CHAOS_SEED="$chaos_seed" cargo test -q --release -p kacc-collectives --test chaos

echo "== membership chaos (kill-k recovery, fixed corpus + fresh seed, both engines) =="
# Silent-kill fault plans: k in {1,2} ranks die mid-collective; survivors
# must detect, agree, shrink, and re-execute with verified payloads on the
# threads AND the polled engine (the suite checks bitwise engine equality
# itself). Same seed protocol as the chaos suite above; reproduce with
# `KACC_CHAOS_SEED=<seed> cargo test -p kacc-collectives --test membership_chaos`.
echo "[membership chaos fresh seed: ${chaos_seed}]"
KACC_CHAOS_SEED="$chaos_seed" cargo test -q --release -p kacc-collectives --test membership_chaos

echo "== trace-validate (Chrome-trace export schema) =="
trace_tmp="$(mktemp -t kacc-trace-XXXXXX.json)"
fault_tmp="$(mktemp -t kacc-fault-plan-XXXXXX.txt)"
trap 'rm -f "$trace_tmp" "$fault_tmp"' EXIT
cargo run --release -q -p kacc-bench --bin repro -- --quick --trace-out "$trace_tmp"
cargo run --release -q -p kacc-trace --bin trace-validate -- "$trace_tmp"

# The faulty timeline must validate too: recovery spans (fault:*,
# retry:*, fallback:*) ride the same Chrome-trace schema.
printf 'seed 42\nrule prob=0.05 kind=transient errno=11\nrule ops=cma_read prob=0.25 max=2 kind=truncate frac=1/2\n' > "$fault_tmp"
cargo run --release -q -p kacc-bench --bin repro -- --quick --fault-plan "$fault_tmp" --trace-out "$trace_tmp"
cargo run --release -q -p kacc-trace --bin trace-validate -- "$trace_tmp"

echo "== repro artifacts identical under both engines =="
# The quick sweep of an engine-routed figure must print byte-identical
# charts on the threads and the polled engine (the repro-level face of
# the engine-equivalence suite).
threads_tmp="$(mktemp -t kacc-threads-XXXXXX.txt)"
polled_tmp="$(mktemp -t kacc-polled-XXXXXX.txt)"
cargo run --release -q -p kacc-bench --bin repro -- --quick --jobs 1 fig10 > "$threads_tmp"
cargo run --release -q -p kacc-bench --bin repro -- --quick --jobs 1 --engine polled fig10 > "$polled_tmp"
diff "$threads_tmp" "$polled_tmp"
rm -f "$threads_tmp" "$polled_tmp"

echo "== metrics snapshot determinism (--jobs 1 vs 4, both engines) =="
cargo test -q --release -p kacc-bench --test metrics_determinism

echo "== perf-regression gate (bench-regress vs committed baseline) =="
# Hard-fails (exit 1) on any event-count or metric drift from the
# committed BENCH_PR10.json; brand-new metric keys only warn (additions,
# not regressions); wall-clock drift only warns (machines vary).
# Refresh the baseline after an intentional behavior change via
#   cargo run --release -p kacc-bench --bin bench-regress -- --write-baseline BENCH_PR10.json
cargo run --release -q -p kacc-bench --bin bench-regress -- \
  --baseline BENCH_PR10.json --out /tmp/bench-regress-verdict.json
cat /tmp/bench-regress-verdict.json

echo "== bench metrics snapshot (both engines) =="
# Quick-scale events/sec + wall-clock snapshot, including the p=64
# one-to-all probe (the PR-4 acceptance metric) and wake-storm
# diagnostics, on each engine, plus the always-on metrics registry dump.
# Kept out of git status noise: CI uploads them; refresh the committed
# BENCH_PR6.json with full runs via
#   cargo run --release -p kacc-bench --bin repro -- --bench-out ... fig10 table6
cargo run --release -q -p kacc-bench --bin repro -- --quick --bench-out /tmp/BENCH_threads.json --metrics-out /tmp/METRICS_threads.json all >/dev/null
cargo run --release -q -p kacc-bench --bin repro -- --quick --engine polled --bench-out /tmp/BENCH_polled.json --metrics-out /tmp/METRICS_polled.json all >/dev/null
# The registry dump must be engine-invariant, byte for byte.
cmp /tmp/METRICS_threads.json /tmp/METRICS_polled.json
cat /tmp/BENCH_threads.json /tmp/BENCH_polled.json

echo "CI gates all green."
