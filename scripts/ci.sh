#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Fails fast on the first gate that trips.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1) =="
cargo test -q

echo "CI gates all green."
