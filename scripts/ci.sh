#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
# Fails fast on the first gate that trips.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (tier-1) =="
cargo test -q

echo "== trace-validate (Chrome-trace export schema) =="
trace_tmp="$(mktemp -t kacc-trace-XXXXXX.json)"
trap 'rm -f "$trace_tmp"' EXIT
cargo run --release -q -p kacc-bench --bin repro -- --quick --trace-out "$trace_tmp"
cargo run --release -q -p kacc-trace --bin trace-validate -- "$trace_tmp"

echo "CI gates all green."
