//! Compiled-schedule equivalence: every collective entry point now
//! compiles to a `Schedule` and replays it through the generic executor.
//! These tests pit that path against the preserved `*_legacy` direct
//! implementations for arbitrary `(p, counts, root, algo)` on both the
//! deterministic simulator (`SimComm`) and the in-process thread
//! transport (`ThreadComm`), asserting byte-identical payloads — and, on
//! the simulator, identical virtual end-times (the schedules are
//! traffic-identical, so the discrete-event clock must agree exactly).
//! A pinned case cross-checks the executor's `ScheduleReport` against
//! the simulator's own step accounting.

use kacc::collectives::allgather::allgather_legacy;
use kacc::collectives::bcast::bcast_legacy;
use kacc::collectives::gather::gatherv_legacy;
use kacc::collectives::scatter::scatterv_legacy;
use kacc::collectives::verify::{contribution, pat2, scatter_sendbuf};
use kacc::collectives::{
    allgather, bcast, gatherv, scatterv, scatterv_with_report, AllgatherAlgo, BcastAlgo,
    GatherAlgo, ScatterAlgo,
};
use kacc::comm::{Comm, CommExt};
use kacc::machine::run_team;
use kacc::model::ArchProfile;
use kacc::native::run_threads;
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.cores_per_socket = 4;
    a
}

fn scatter_algo() -> impl Strategy<Value = ScatterAlgo> {
    prop_oneof![
        Just(ScatterAlgo::ParallelRead),
        Just(ScatterAlgo::SequentialWrite),
        (1usize..8).prop_map(|k| ScatterAlgo::ThrottledRead { k }),
    ]
}

fn gather_algo() -> impl Strategy<Value = GatherAlgo> {
    prop_oneof![
        Just(GatherAlgo::ParallelWrite),
        Just(GatherAlgo::SequentialRead),
        (1usize..8).prop_map(|k| GatherAlgo::ThrottledWrite { k }),
    ]
}

fn bcast_algo() -> impl Strategy<Value = BcastAlgo> {
    prop_oneof![
        Just(BcastAlgo::DirectRead),
        Just(BcastAlgo::DirectWrite),
        (2usize..8).prop_map(|radix| BcastAlgo::KNomial { radix }),
        Just(BcastAlgo::ScatterAllgather),
    ]
}

fn allgather_algo(p: usize, stride_seed: usize) -> Vec<AllgatherAlgo> {
    let coprime: Vec<usize> = (1..p).filter(|j| gcd(*j, p) == 1).collect();
    vec![
        AllgatherAlgo::RingNeighbor {
            j: coprime[stride_seed % coprime.len()],
        },
        AllgatherAlgo::RingSourceRead,
        AllgatherAlgo::RingSourceWrite,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ]
}

fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// Run scatterv on the simulator and return (end_ns, per-rank payloads).
fn sim_scatter(
    legacy: bool,
    p: usize,
    counts: Vec<usize>,
    root: usize,
    algo: ScatterAlgo,
) -> (u64, Vec<Vec<u8>>) {
    let total: usize = counts.iter().sum();
    let (run, results) = run_team(&small_arch(), p, move |comm| {
        let me = comm.rank();
        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let sb = (me == root).then(|| comm.alloc_with(&payload));
        let rb = comm.alloc(counts[me]);
        if legacy {
            scatterv_legacy(comm, algo, sb, Some(rb), &counts, None, root).unwrap();
        } else {
            scatterv(comm, algo, sb, Some(rb), &counts, None, root).unwrap();
        }
        comm.read_all(rb).unwrap()
    });
    (run.end_ns, results)
}

/// Run gatherv (with optional displacement gaps) on the simulator.
fn sim_gather(
    legacy: bool,
    p: usize,
    counts: Vec<usize>,
    gap: usize,
    root: usize,
    algo: GatherAlgo,
) -> (u64, Vec<Vec<u8>>) {
    let displs: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, c| {
            let d = *acc;
            *acc += c + gap;
            Some(d)
        })
        .collect();
    let cap = displs.last().unwrap() + counts.last().unwrap() + gap;
    let (run, results) = run_team(&small_arch(), p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&contribution(me, counts[me]));
        let rb = (me == root).then(|| comm.alloc(cap));
        let d = (gap > 0).then_some(displs.as_slice());
        if legacy {
            gatherv_legacy(comm, algo, Some(sb), rb, &counts, d, root).unwrap();
        } else {
            gatherv(comm, algo, Some(sb), rb, &counts, d, root).unwrap();
        }
        rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
    });
    (run.end_ns, results)
}

/// Run bcast on the simulator.
fn sim_bcast(
    legacy: bool,
    p: usize,
    count: usize,
    root: usize,
    algo: BcastAlgo,
) -> (u64, Vec<Vec<u8>>) {
    let (run, results) = run_team(&small_arch(), p, move |comm| {
        let me = comm.rank();
        let init: Vec<u8> = if me == root {
            (0..count).map(|i| pat2(root, i)).collect()
        } else {
            vec![0; count]
        };
        let buf = comm.alloc_with(&init);
        if legacy {
            bcast_legacy(comm, algo, buf, count, root).unwrap();
        } else {
            bcast(comm, algo, buf, count, root).unwrap();
        }
        comm.read_all(buf).unwrap()
    });
    (run.end_ns, results)
}

/// Run allgather (optionally MPI_IN_PLACE) on the simulator.
fn sim_allgather(
    legacy: bool,
    p: usize,
    count: usize,
    in_place: bool,
    algo: AllgatherAlgo,
) -> (u64, Vec<Vec<u8>>) {
    let (run, results) = run_team(&small_arch(), p, move |comm| {
        let me = comm.rank();
        let mine = contribution(me, count);
        let (sb, rb) = if in_place {
            let mut init = vec![0u8; p * count];
            init[me * count..(me + 1) * count].copy_from_slice(&mine);
            (None, comm.alloc_with(&init))
        } else {
            (Some(comm.alloc_with(&mine)), comm.alloc(p * count))
        };
        if legacy {
            allgather_legacy(comm, algo, sb, rb, count).unwrap();
        } else {
            allgather(comm, algo, sb, rb, count).unwrap();
        }
        comm.read_all(rb).unwrap()
    });
    (run.end_ns, results)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Compiled scatterv == legacy scatterv on the simulator: identical
    /// payloads at every rank AND the exact same virtual end-time.
    #[test]
    fn sim_scatter_compiled_matches_legacy(
        p in 2usize..7,
        counts_seed in proptest::collection::vec(0usize..600, 7),
        root_seed in 0usize..100,
        algo in scatter_algo(),
    ) {
        let counts: Vec<usize> = counts_seed[..p].to_vec();
        let root = root_seed % p;
        let (t_legacy, legacy) = sim_scatter(true, p, counts.clone(), root, algo);
        let (t_compiled, compiled) = sim_scatter(false, p, counts, root, algo);
        prop_assert_eq!(&legacy, &compiled, "{:?} p={} root={}", algo, p, root);
        prop_assert_eq!(t_legacy, t_compiled, "{:?}: schedules are not traffic-identical", algo);
    }

    /// Compiled gatherv == legacy gatherv (including sparse displs).
    #[test]
    fn sim_gather_compiled_matches_legacy(
        p in 2usize..7,
        counts_seed in proptest::collection::vec(0usize..600, 7),
        gap in 0usize..3,
        root_seed in 0usize..100,
        algo in gather_algo(),
    ) {
        let counts: Vec<usize> = counts_seed[..p].to_vec();
        let root = root_seed % p;
        let (t_legacy, legacy) = sim_gather(true, p, counts.clone(), gap, root, algo);
        let (t_compiled, compiled) = sim_gather(false, p, counts, gap, root, algo);
        prop_assert_eq!(&legacy, &compiled, "{:?} p={} root={} gap={}", algo, p, root, gap);
        prop_assert_eq!(t_legacy, t_compiled, "{:?}: schedules are not traffic-identical", algo);
    }

    /// Compiled bcast == legacy bcast.
    #[test]
    fn sim_bcast_compiled_matches_legacy(
        p in 2usize..7,
        count in 0usize..4000,
        root_seed in 0usize..100,
        algo in bcast_algo(),
    ) {
        let root = root_seed % p;
        let (t_legacy, legacy) = sim_bcast(true, p, count, root, algo);
        let (t_compiled, compiled) = sim_bcast(false, p, count, root, algo);
        prop_assert_eq!(&legacy, &compiled, "{:?} p={} count={} root={}", algo, p, count, root);
        prop_assert_eq!(t_legacy, t_compiled, "{:?}: schedules are not traffic-identical", algo);
    }

    /// Compiled allgather == legacy allgather for every algorithm,
    /// both out-of-place and MPI_IN_PLACE.
    #[test]
    fn sim_allgather_compiled_matches_legacy(
        p in 2usize..7,
        count in 0usize..2000,
        stride_seed in 0usize..64,
        in_place in proptest::bool::ANY,
    ) {
        for algo in allgather_algo(p, stride_seed) {
            let (t_legacy, legacy) = sim_allgather(true, p, count, in_place, algo);
            let (t_compiled, compiled) = sim_allgather(false, p, count, in_place, algo);
            prop_assert_eq!(&legacy, &compiled,
                "{:?} p={} count={} in_place={}", algo, p, count, in_place);
            prop_assert_eq!(t_legacy, t_compiled,
                "{:?}: schedules are not traffic-identical", algo);
        }
    }

    /// The same equivalence on the real in-process thread transport:
    /// compiled schedules deliver byte-identical payloads under true
    /// concurrency, not just under the deterministic simulator.
    #[test]
    fn thread_scatter_compiled_matches_legacy(
        p in 2usize..6,
        counts_seed in proptest::collection::vec(0usize..300, 6),
        root_seed in 0usize..100,
        algo in scatter_algo(),
    ) {
        let counts: Vec<usize> = counts_seed[..p].to_vec();
        let root = root_seed % p;
        let total: usize = counts.iter().sum();
        let run = |legacy: bool| {
            let counts = counts.clone();
            run_threads(p, move |comm| {
                let me = comm.rank();
                let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
                let sb = (me == root).then(|| comm.alloc_with(&payload));
                let rb = comm.alloc(counts[me]);
                if legacy {
                    scatterv_legacy(comm, algo, sb, Some(rb), &counts, None, root).unwrap();
                } else {
                    scatterv(comm, algo, sb, Some(rb), &counts, None, root).unwrap();
                }
                comm.read_all(rb).unwrap()
            })
        };
        prop_assert_eq!(run(true), run(false), "{:?} p={} root={}", algo, p, root);
    }

    /// Thread-transport equivalence for gatherv.
    #[test]
    fn thread_gather_compiled_matches_legacy(
        p in 2usize..6,
        count in 0usize..400,
        root_seed in 0usize..100,
        algo in gather_algo(),
    ) {
        let root = root_seed % p;
        let counts = vec![count; p];
        let run = |legacy: bool| {
            let counts = counts.clone();
            run_threads(p, move |comm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&contribution(me, count));
                let rb = (me == root).then(|| comm.alloc(p * count));
                if legacy {
                    gatherv_legacy(comm, algo, Some(sb), rb, &counts, None, root).unwrap();
                } else {
                    gatherv(comm, algo, Some(sb), rb, &counts, None, root).unwrap();
                }
                rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
            })
        };
        prop_assert_eq!(run(true), run(false), "{:?} p={} count={} root={}", algo, p, count, root);
    }

    /// Thread-transport equivalence for bcast.
    #[test]
    fn thread_bcast_compiled_matches_legacy(
        p in 2usize..6,
        count in 0usize..2000,
        root_seed in 0usize..100,
        algo in bcast_algo(),
    ) {
        let root = root_seed % p;
        let run = |legacy: bool| {
            run_threads(p, move |comm| {
                let me = comm.rank();
                let init: Vec<u8> = if me == root {
                    (0..count).map(|i| pat2(root, i)).collect()
                } else {
                    vec![0; count]
                };
                let buf = comm.alloc_with(&init);
                if legacy {
                    bcast_legacy(comm, algo, buf, count, root).unwrap();
                } else {
                    bcast(comm, algo, buf, count, root).unwrap();
                }
                comm.read_all(buf).unwrap()
            })
        };
        prop_assert_eq!(run(true), run(false), "{:?} p={} count={} root={}", algo, p, count, root);
    }

    /// Thread-transport equivalence for allgather.
    #[test]
    fn thread_allgather_compiled_matches_legacy(
        p in 2usize..6,
        count in 0usize..1000,
        stride_seed in 0usize..64,
    ) {
        for algo in allgather_algo(p, stride_seed) {
            let run = |legacy: bool| {
                run_threads(p, move |comm| {
                    let me = comm.rank();
                    let sb = comm.alloc_with(&contribution(me, count));
                    let rb = comm.alloc(p * count);
                    if legacy {
                        allgather_legacy(comm, algo, Some(sb), rb, count).unwrap();
                    } else {
                        allgather(comm, algo, Some(sb), rb, count).unwrap();
                    }
                    comm.read_all(rb).unwrap()
                })
            };
            prop_assert_eq!(run(true), run(false), "{:?} p={} count={}", algo, p, count);
        }
    }
}

/// Pinned case: the executor's `ScheduleReport` must agree with the
/// simulator's own step accounting. Parallel-read scatter on 6 ranks:
/// every non-root rank performs exactly one kernel-assisted read of its
/// `count`-byte slice, and the root performs none.
#[test]
fn schedule_report_matches_simulator_accounting() {
    let p = 6;
    let count = 4096;
    let root = 2;
    let (run, reports) = run_team(&small_arch(), p, move |comm| {
        let me = comm.rank();
        let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
        let rb = comm.alloc(count);
        let counts = vec![count; p];
        scatterv_with_report(
            comm,
            ScatterAlgo::ParallelRead,
            sb,
            Some(rb),
            &counts,
            None,
            root,
        )
        .unwrap()
        .expect("non-degenerate call must produce a report")
    });
    for (r, rep) in reports.iter().enumerate() {
        assert!(rep.steps > 0, "rank {r} executed an empty schedule");
        assert!(rep.total_ns > 0, "rank {r} spent no virtual time");
        if r == root {
            assert_eq!(
                rep.cma_read.count, 0,
                "root reads nothing in parallel-read scatter"
            );
            assert_eq!(
                run.stats[r].cma_ops, 0,
                "simulator saw a CMA op at the root"
            );
            assert_eq!(
                rep.copy_local.bytes, count as u64,
                "root self-copies its slice"
            );
        } else {
            assert_eq!(rep.cma_read.count, 1, "rank {r} must read exactly once");
            assert_eq!(
                rep.cma_read.count, run.stats[r].cma_ops,
                "rank {r} op count drifts"
            );
            assert_eq!(
                rep.cma_read.bytes, count as u64,
                "rank {r} read the wrong size"
            );
            assert_eq!(
                rep.cma_read.bytes, run.stats[r].bytes_read,
                "rank {r} byte count drifts"
            );
        }
    }
    assert_eq!(
        run.mail_pending, 0,
        "protocol left undelivered control messages"
    );
}
