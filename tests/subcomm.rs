//! Sub-communicator semantics: disjoint subgroups run collectives
//! concurrently with correct results and no cross-talk.

use kacc::collectives::verify::{contribution, diff, gather_expected};
use kacc::collectives::{allgather, bcast, gather, AllgatherAlgo, BcastAlgo, GatherAlgo};
use kacc::comm::{Comm, CommExt, SubComm};
use kacc::machine::run_team;
use kacc::model::ArchProfile;

#[test]
fn split_forms_expected_groups() {
    let (_, results) = run_team(&ArchProfile::broadwell(), 8, |comm| {
        let me = comm.rank();
        let color = (me % 2) as u64;
        let sub = SubComm::split(comm, color, me as u64).unwrap();
        (sub.rank(), sub.size(), sub.members().to_vec())
    });
    for (me, (sub_rank, sub_size, members)) in results.iter().enumerate() {
        assert_eq!(*sub_size, 4);
        let expect: Vec<usize> = (0..8).filter(|r| r % 2 == me % 2).collect();
        assert_eq!(members, &expect);
        assert_eq!(members[*sub_rank], me);
    }
}

#[test]
fn disjoint_subgroups_gather_concurrently() {
    // Even and odd ranks each gather within their own subgroup at the
    // same time; matching must never leak across groups.
    let p = 10;
    let count = 2048;
    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&contribution(me, count));
        let color = (me % 2) as u64;
        let mut sub = SubComm::split(comm, color, me as u64).unwrap();
        let sub_p = sub.size();
        let rb = (sub.rank() == 0).then(|| sub.alloc(sub_p * count));
        gather(
            &mut sub,
            GatherAlgo::ThrottledWrite { k: 2 },
            Some(sb),
            rb,
            count,
            0,
        )
        .unwrap();
        rb.map(|b| sub.read_all(b).unwrap()).unwrap_or_default()
    });
    // Subgroup roots are parent ranks 0 and 1; each must hold its own
    // members' contributions in subgroup order.
    for root in [0usize, 1] {
        let members: Vec<usize> = (0..p).filter(|r| r % 2 == root % 2).collect();
        let expect: Vec<u8> = members
            .iter()
            .flat_map(|&m| contribution(m, count))
            .collect();
        assert_eq!(results[root], expect, "subgroup rooted at {root}");
    }
}

#[test]
fn subgroup_allgather_and_bcast_work() {
    let p = 9;
    let count = 1500;
    let (_, results) = run_team(&ArchProfile::knl(), p, move |comm| {
        let me = comm.rank();
        // Three groups of three by rank / 3 (contiguous blocks).
        let color = (me / 3) as u64;
        let mut sub = SubComm::split(comm, color, me as u64).unwrap();
        let sub_p = sub.size();
        let sb = sub.alloc_with(&contribution(me, count));
        let rb = sub.alloc(sub_p * count);
        allgather(&mut sub, AllgatherAlgo::RingSourceRead, Some(sb), rb, count).unwrap();
        let ag = sub.read_all(rb).unwrap();
        // Then broadcast subgroup rank 0's block to everyone in-group.
        let buf = if sub.rank() == 0 {
            sub.alloc_with(&contribution(me, count))
        } else {
            sub.alloc(count)
        };
        bcast(&mut sub, BcastAlgo::KNomial { radix: 2 }, buf, count, 0).unwrap();
        (ag, sub.read_all(buf).unwrap())
    });
    for (me, (ag, bc)) in results.iter().enumerate() {
        let group = me / 3;
        let members: Vec<usize> = (group * 3..group * 3 + 3).collect();
        let expect: Vec<u8> = members
            .iter()
            .flat_map(|&m| contribution(m, count))
            .collect();
        assert!(diff(ag, &expect).is_none(), "allgather rank {me}");
        assert!(
            diff(bc, &contribution(group * 3, count)).is_none(),
            "bcast rank {me}"
        );
    }
    let _ = gather_expected(1, 1); // keep helper linked for symmetry
}
