//! Property-based tests: MPI semantics hold for arbitrary process
//! counts, message sizes, roots, and algorithm choices; auxiliary
//! invariants (determinism, phantom-timing equivalence) hold throughout.

use kacc::collectives::reduce::expected_u64;
use kacc::collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc::collectives::{
    allgather, alltoall, bcast, gather, reduce, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    Dtype, GatherAlgo, ReduceAlgo, ReduceOp, ScatterAlgo,
};
use kacc::comm::{Comm, CommExt};
use kacc::machine::{run_team, run_team_phantom};
use kacc::model::ArchProfile;
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.cores_per_socket = 4;
    a
}

fn scatter_algo() -> impl Strategy<Value = ScatterAlgo> {
    prop_oneof![
        Just(ScatterAlgo::ParallelRead),
        Just(ScatterAlgo::SequentialWrite),
        (1usize..10).prop_map(|k| ScatterAlgo::ThrottledRead { k }),
    ]
}

fn gather_algo() -> impl Strategy<Value = GatherAlgo> {
    prop_oneof![
        Just(GatherAlgo::ParallelWrite),
        Just(GatherAlgo::SequentialRead),
        (1usize..10).prop_map(|k| GatherAlgo::ThrottledWrite { k }),
    ]
}

fn bcast_algo() -> impl Strategy<Value = BcastAlgo> {
    prop_oneof![
        Just(BcastAlgo::DirectRead),
        Just(BcastAlgo::DirectWrite),
        (2usize..8).prop_map(|radix| BcastAlgo::KNomial { radix }),
        Just(BcastAlgo::ScatterAllgather),
    ]
}

fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn scatter_delivers_for_any_shape(
        p in 1usize..10,
        count in 0usize..6000,
        root_seed in 0usize..100,
        algo in scatter_algo(),
    ) {
        let root = root_seed % p;
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            scatter(comm, algo, sb, Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        });
        for (r, got) in results.iter().enumerate() {
            prop_assert!(diff(got, &scatter_expected(r, count)).is_none(),
                "{algo:?} p={p} count={count} root={root} rank {r}");
        }
    }

    #[test]
    fn gather_delivers_for_any_shape(
        p in 1usize..10,
        count in 0usize..6000,
        root_seed in 0usize..100,
        algo in gather_algo(),
    ) {
        let root = root_seed % p;
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == root).then(|| comm.alloc(p * count));
            gather(comm, algo, Some(sb), rb, count, root).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        prop_assert!(diff(&results[root], &gather_expected(p, count)).is_none(),
            "{algo:?} p={p} count={count} root={root}");
    }

    #[test]
    fn allgather_delivers_for_any_shape(
        p in 2usize..10,
        count in 0usize..4000,
        pick in 0usize..5,
        stride_seed in 0usize..64,
    ) {
        let algo = match pick {
            0 => {
                let coprime: Vec<usize> =
                    (1..p).filter(|&j| gcd(j, p) == 1).collect();
                AllgatherAlgo::RingNeighbor { j: coprime[stride_seed % coprime.len()] }
            }
            1 => AllgatherAlgo::RingSourceRead,
            2 => AllgatherAlgo::RingSourceWrite,
            3 => AllgatherAlgo::RecursiveDoubling,
            _ => AllgatherAlgo::Bruck,
        };
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            allgather(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        });
        let expected = gather_expected(p, count);
        for (r, got) in results.iter().enumerate() {
            prop_assert!(diff(got, &expected).is_none(), "{algo:?} p={p} rank {r}");
        }
    }

    #[test]
    fn alltoall_delivers_for_any_shape(
        p in 1usize..9,
        count in 0usize..3000,
        bruck in proptest::bool::ANY,
        in_place in proptest::bool::ANY,
    ) {
        let algo = if bruck { AlltoallAlgo::Bruck } else { AlltoallAlgo::Pairwise };
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            if in_place {
                let rb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
                alltoall(comm, algo, None, rb, count).unwrap();
                comm.read_all(rb).unwrap()
            } else {
                let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
                let rb = comm.alloc(p * count);
                alltoall(comm, algo, Some(sb), rb, count).unwrap();
                comm.read_all(rb).unwrap()
            }
        });
        for (r, got) in results.iter().enumerate() {
            prop_assert!(diff(got, &alltoall_expected(r, p, count)).is_none(),
                "{algo:?} p={p} count={count} in_place={in_place} rank {r}");
        }
    }

    #[test]
    fn bcast_delivers_for_any_shape(
        p in 1usize..12,
        count in 0usize..6000,
        root_seed in 0usize..100,
        algo in bcast_algo(),
    ) {
        let root = root_seed % p;
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            bcast(comm, algo, buf, count, root).unwrap();
            comm.read_all(buf).unwrap()
        });
        let expected = contribution(root, count);
        for (r, got) in results.iter().enumerate() {
            prop_assert!(diff(got, &expected).is_none(),
                "{algo:?} p={p} count={count} root={root} rank {r}");
        }
    }

    #[test]
    fn reduce_matches_reference_fold(
        p in 1usize..10,
        lanes in 1usize..400,
        root_seed in 0usize..100,
        radix in 2usize..6,
        op_pick in 0usize..3,
        tree in proptest::bool::ANY,
    ) {
        let root = root_seed % p;
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_pick];
        let algo = if tree {
            ReduceAlgo::KNomialTree { radix }
        } else {
            ReduceAlgo::SequentialRead
        };
        let value_of =
            |r: usize, l: usize| (r as u64).wrapping_mul(0xABCD_EF01).wrapping_add(l as u64);
        let (_, results) = run_team(&small_arch(), p, move |comm| {
            let me = comm.rank();
            let data: Vec<u8> =
                (0..lanes).flat_map(|l| value_of(me, l).to_le_bytes()).collect();
            let sb = comm.alloc_with(&data);
            let rb = (me == root).then(|| comm.alloc(lanes * 8));
            reduce(comm, algo, sb, rb, lanes * 8, Dtype::U64, op, root).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        let got: Vec<u64> = results[root]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        prop_assert_eq!(got, expected_u64(p, lanes, op, value_of),
            "{:?} {:?} p={} root={}", algo, op, p, root);
    }

    #[test]
    fn simulation_is_deterministic_and_phantom_timing_matches(
        p in 2usize..8,
        count in 1usize..30_000,
        algo in bcast_algo(),
    ) {
        let go = |phantom: bool| {
            let body = move |comm: &mut kacc::machine::SimComm| {
                let buf = comm.alloc(count);
                bcast(comm, algo, buf, count, 0).unwrap();
                comm.time_ns()
            };
            if phantom {
                run_team_phantom(&small_arch(), p, body).0.end_ns
            } else {
                run_team(&small_arch(), p, body).0.end_ns
            }
        };
        let a = go(false);
        let b = go(false);
        prop_assert_eq!(a, b, "same-config runs must be bit-identical");
        let ph = go(true);
        prop_assert_eq!(a, ph, "phantom buffers must not change virtual timing");
    }
}
