//! Differential testing across transports: the same collective code must
//! produce byte-identical MPI semantics on the deterministic simulator
//! and on the thread-backed real-concurrency transport (and, where the
//! kernel permits, on real forked processes — covered in
//! `crates/native/tests/forked_cma.rs`).

use kacc::collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc::collectives::{
    allgather, alltoall, bcast, gather, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    GatherAlgo, ScatterAlgo,
};
use kacc::comm::{Comm, CommExt};
use kacc::machine::run_team;
use kacc::model::ArchProfile;
use kacc::native::run_threads;

fn arch() -> ArchProfile {
    ArchProfile::broadwell()
}

#[test]
fn scatter_agrees_across_transports() {
    let p = 7;
    let count = 5000;
    let root = 3;
    for algo in [
        ScatterAlgo::ParallelRead,
        ScatterAlgo::SequentialWrite,
        ScatterAlgo::ThrottledRead { k: 2 },
    ] {
        let run = move |comm: &mut dyn Comm| {
            let me = comm.rank();
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            scatter(comm, algo, sb, Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        };
        let (_, sim) = run_team(&arch(), p, move |c| run(c));
        let thr = run_threads(p, move |c| run(c));
        for r in 0..p {
            assert_eq!(sim[r], thr[r], "{algo:?} transports disagree at rank {r}");
            assert!(diff(&sim[r], &scatter_expected(r, count)).is_none());
        }
    }
}

#[test]
fn gather_agrees_across_transports() {
    let p = 6;
    let count = 3210;
    for algo in [
        GatherAlgo::ParallelWrite,
        GatherAlgo::SequentialRead,
        GatherAlgo::ThrottledWrite { k: 3 },
    ] {
        let run = move |comm: &mut dyn Comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == 0).then(|| comm.alloc(p * count));
            gather(comm, algo, Some(sb), rb, count, 0).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        };
        let (_, sim) = run_team(&arch(), p, move |c| run(c));
        let thr = run_threads(p, move |c| run(c));
        assert_eq!(sim[0], thr[0], "{algo:?}");
        assert!(diff(&sim[0], &gather_expected(p, count)).is_none());
    }
}

#[test]
fn allgather_agrees_across_transports() {
    let p = 8;
    let count = 1777;
    for algo in [
        AllgatherAlgo::RingNeighbor { j: 1 },
        AllgatherAlgo::RingSourceRead,
        AllgatherAlgo::RingSourceWrite,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ] {
        let run = move |comm: &mut dyn Comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            allgather(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        };
        let (_, sim) = run_team(&arch(), p, move |c| run(c));
        let thr = run_threads(p, move |c| run(c));
        for r in 0..p {
            assert_eq!(sim[r], thr[r], "{algo:?} rank {r}");
            assert!(diff(&sim[r], &gather_expected(p, count)).is_none());
        }
    }
}

#[test]
fn alltoall_agrees_across_transports() {
    let p = 5;
    let count = 900;
    for algo in [AlltoallAlgo::Pairwise, AlltoallAlgo::Bruck] {
        let run = move |comm: &mut dyn Comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            alltoall(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        };
        let (_, sim) = run_team(&arch(), p, move |c| run(c));
        let thr = run_threads(p, move |c| run(c));
        for r in 0..p {
            assert_eq!(sim[r], thr[r], "{algo:?} rank {r}");
            assert!(diff(&sim[r], &alltoall_expected(r, p, count)).is_none());
        }
    }
}

#[test]
fn bcast_agrees_across_transports() {
    let p = 9;
    let count = 4321;
    let root = 4;
    for algo in [
        BcastAlgo::DirectRead,
        BcastAlgo::DirectWrite,
        BcastAlgo::KNomial { radix: 3 },
        BcastAlgo::ScatterAllgather,
    ] {
        let run = move |comm: &mut dyn Comm| {
            let me = comm.rank();
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            bcast(comm, algo, buf, count, root).unwrap();
            comm.read_all(buf).unwrap()
        };
        let (_, sim) = run_team(&arch(), p, move |c| run(c));
        let thr = run_threads(p, move |c| run(c));
        for r in 0..p {
            assert_eq!(sim[r], thr[r], "{algo:?} rank {r}");
            assert!(diff(&sim[r], &contribution(root, count)).is_none());
        }
    }
}
