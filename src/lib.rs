#![warn(missing_docs)]

//! # kacc — contention-aware kernel-assisted collectives
//!
//! Umbrella crate re-exporting the full kacc workspace: a
//! production-quality Rust reproduction of *"Contention-Aware
//! Kernel-Assisted MPI Collectives for Multi-/Many-core Systems"*
//! (Chakraborty, Subramoni, Panda — IEEE CLUSTER 2017).
//!
//! The workspace contains:
//!
//! * [`comm`] — the [`comm::Comm`] endpoint trait, buffers, topology, and
//!   small-message shared-memory collectives;
//! * [`collectives`] — the paper's contribution: contention-aware
//!   native-CMA Scatter/Gather/Alltoall/Allgather/Bcast algorithms and a
//!   model-driven tuner;
//! * [`model`] — the analytical cost model (`α + nβ + l·γ_c·⌈n/s⌉`),
//!   architecture profiles, parameter extraction, and γ fitting;
//! * [`machine`] — a deterministic discrete-event simulation of a
//!   multi-core node with an emergent page-lock contention mechanism;
//! * [`sim`] — the underlying simulation kernel;
//! * [`mpi`] — a mini-MPI point-to-point substrate plus baseline
//!   MPI-library personas used as comparison targets;
//! * [`netsim`] — an inter-node fabric model for multi-node experiments;
//! * [`native`] — a real Linux transport using `process_vm_readv` /
//!   `process_vm_writev` between forked processes;
//! * [`numerics`] — from-scratch least-squares and Levenberg–Marquardt
//!   fitting used to recover the model parameters;
//! * [`trace`] — zero-cost-when-disabled structured tracing: spans and
//!   counters in virtual time, ftrace-style phase breakdowns, and
//!   Chrome trace-event JSON export for Perfetto.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use kacc_collectives as collectives;
pub use kacc_comm as comm;
pub use kacc_machine as machine;
pub use kacc_model as model;
pub use kacc_mpi as mpi;
pub use kacc_native as native;
pub use kacc_netsim as netsim;
pub use kacc_numerics as numerics;
pub use kacc_sim_core as sim;
pub use kacc_trace as trace;

/// Commonly used items, for `use kacc::prelude::*`.
pub mod prelude {
    pub use kacc_collectives::{AllgatherAlgo, AlltoallAlgo, BcastAlgo, GatherAlgo, ScatterAlgo};
    pub use kacc_comm::{BufId, Comm, CommExt, RemoteToken, Tag, Topology};
    pub use kacc_model::arch::ArchProfile;
}
