//! End-to-end check of the collective algorithms over *real*
//! `process_vm_readv`/`process_vm_writev` between forked processes.
//!
//! Everything runs inside a single `#[test]` so the process only forks
//! while this test binary has no other test threads mid-allocation.

use kacc_collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc_collectives::{
    allgather, alltoall, bcast, gather, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    GatherAlgo, ScatterAlgo,
};
use kacc_comm::{Comm, CommError, CommExt};
use kacc_native::{cma_available, run_forked};

fn proto_err(msg: String) -> CommError {
    CommError::Protocol(msg)
}

#[test]
fn real_cma_collectives_end_to_end() {
    if !cma_available() {
        eprintln!("skipping: cross-process CMA unavailable (ptrace scope?)");
        return;
    }
    let p = 6;
    let count = 24_000; // page-misaligned, multi-page

    // Scatter: every algorithm against real syscalls.
    for algo in [
        ScatterAlgo::ParallelRead,
        ScatterAlgo::SequentialWrite,
        ScatterAlgo::ThrottledRead { k: 2 },
    ] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let sb = (me == 1).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            scatter(comm, algo, sb, Some(rb), count, 1)?;
            let got = comm.read_all(rb)?;
            if let Some(d) = diff(&got, &scatter_expected(me, count)) {
                return Err(proto_err(format!("{algo:?}: {d}")));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("scatter {algo:?} failed: {e}"));
    }

    // Gather.
    for algo in [
        GatherAlgo::ParallelWrite,
        GatherAlgo::SequentialRead,
        GatherAlgo::ThrottledWrite { k: 3 },
    ] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == 0).then(|| comm.alloc(p * count));
            gather(comm, algo, Some(sb), rb, count, 0)?;
            if let Some(rb) = rb {
                let got = comm.read_all(rb)?;
                if let Some(d) = diff(&got, &gather_expected(p, count)) {
                    return Err(proto_err(format!("{algo:?}: {d}")));
                }
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("gather {algo:?} failed: {e}"));
    }

    // Allgather.
    for algo in [
        AllgatherAlgo::RingNeighbor { j: 1 },
        AllgatherAlgo::RingSourceRead,
        AllgatherAlgo::RingSourceWrite,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            allgather(comm, algo, Some(sb), rb, count)?;
            let got = comm.read_all(rb)?;
            if let Some(d) = diff(&got, &gather_expected(p, count)) {
                return Err(proto_err(format!("{algo:?} rank {me}: {d}")));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("allgather {algo:?} failed: {e}"));
    }

    // Alltoall (smaller blocks: p·p·count bytes total traffic).
    for algo in [AlltoallAlgo::Pairwise, AlltoallAlgo::Bruck] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, 8_000));
            let rb = comm.alloc(p * 8_000);
            alltoall(comm, algo, Some(sb), rb, 8_000)?;
            let got = comm.read_all(rb)?;
            if let Some(d) = diff(&got, &alltoall_expected(me, p, 8_000)) {
                return Err(proto_err(format!("{algo:?} rank {me}: {d}")));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("alltoall {algo:?} failed: {e}"));
    }

    // Bcast.
    for algo in [
        BcastAlgo::DirectRead,
        BcastAlgo::DirectWrite,
        BcastAlgo::KNomial { radix: 3 },
        BcastAlgo::ScatterAllgather,
    ] {
        run_forked(p, |comm| {
            let me = comm.rank();
            let buf = if me == 0 {
                comm.alloc_with(&contribution(0, count))
            } else {
                comm.alloc(count)
            };
            bcast(comm, algo, buf, count, 0)?;
            let got = comm.read_all(buf)?;
            if let Some(d) = diff(&got, &contribution(0, count)) {
                return Err(proto_err(format!("{algo:?} rank {me}: {d}")));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("bcast {algo:?} failed: {e}"));
    }

    // Failure propagation: a rank that errors is reported by rank id.
    let err = run_forked(3, |comm| {
        if comm.rank() == 2 {
            Err(proto_err("deliberate failure".into()))
        } else {
            Ok(())
        }
    })
    .unwrap_err();
    match err {
        kacc_native::TeamError::RankFailures(fails) => {
            assert_eq!(fails.len(), 1);
            assert_eq!(fails[0].0, 2);
            assert!(fails[0].1.contains("deliberate failure"));
        }
        other => panic!("unexpected error: {other}"),
    }
}
