//! Property-based tests for the SPSC shared-memory ring: arbitrary frame
//! sequences survive unchanged, in order, across thread boundaries.

use kacc_native::ring::{ring_bytes, SpscRing};
use kacc_native::shm::ShmRegion;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn frames_never_lost_or_reordered(
        frames in proptest::collection::vec(
            (0u32..1000, proptest::collection::vec(any::<u8>(), 0..200)),
            0..64,
        ),
        cap_pow in 8u32..12,
    ) {
        let cap = 1usize << cap_pow;
        // Skip frame sets containing oversized frames for this capacity.
        prop_assume!(frames.iter().all(|(_, p)| p.len() + 16 <= cap));
        let shm = ShmRegion::new(ring_bytes(cap)).unwrap();
        // SAFETY: fresh zeroed region; single producer and single
        // consumer below.
        let tx = unsafe { SpscRing::attach(shm.as_ptr(), cap) };
        let rx = unsafe { SpscRing::attach(shm.as_ptr(), cap) };

        let expected = frames.clone();
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || {
                for (tag, payload) in &frames {
                    tx.push(*tag, payload);
                }
            });
            for (tag, payload) in &expected {
                let (got_tag, got_payload) = rx.pop();
                assert_eq!(got_tag, *tag);
                assert_eq!(&got_payload, payload);
            }
            producer.join().unwrap();
        });
        prop_assert!(rx.try_pop().is_none(), "ring must drain completely");
    }

    #[test]
    fn interleaved_push_pop_preserves_fifo(
        payload_lens in proptest::collection::vec(0usize..100, 1..200),
    ) {
        // Single-threaded interleaving with a tiny ring: every push is
        // followed by a pop, so wrap-around happens constantly.
        let cap = 256;
        prop_assume!(payload_lens.iter().all(|&l| l + 16 <= cap));
        let shm = ShmRegion::new(ring_bytes(cap)).unwrap();
        let ring = unsafe { SpscRing::attach(shm.as_ptr(), cap) };
        for (i, &len) in payload_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|b| (b ^ i) as u8).collect();
            ring.push(i as u32, &payload);
            let (tag, got) = ring.pop();
            prop_assert_eq!(tag, i as u32);
            prop_assert_eq!(got, payload);
        }
    }
}
