//! Lock-free single-producer/single-consumer byte rings over raw shared
//! memory — the native control plane.
//!
//! Each directed rank pair owns one ring. Frames are `[len: u32][tag:
//! u32][payload]`, 8-byte aligned. The producer blocks (spin + yield)
//! when the ring is full; the consumer when it is empty. Head/tail are
//! `AtomicU64` with acquire/release ordering, the textbook SPSC design
//! (Rust Atomics and Locks, ch. 5).

use std::sync::atomic::{AtomicU64, Ordering};

/// Frame header size: u32 payload length + u32 tag.
const HDR: usize = 8;

/// Offsets of the control words within a ring's memory.
const HEAD_OFF: usize = 0;
const TAIL_OFF: usize = 8;
/// First payload byte.
pub const DATA_OFF: usize = 64; // keep producer/consumer words on separate cache lines

/// Bytes of shared memory a ring with `capacity` payload bytes needs.
pub const fn ring_bytes(capacity: usize) -> usize {
    DATA_OFF + capacity
}

/// One endpoint's view of an SPSC ring at a fixed shared-memory address.
///
/// Safety contract: exactly one producer process/thread calls `push`,
/// exactly one consumer calls `pop`, and the underlying memory outlives
/// the ring and is at least [`ring_bytes`] long.
pub struct SpscRing {
    base: *mut u8,
    capacity: usize,
}

unsafe impl Send for SpscRing {}

impl SpscRing {
    /// Wrap ring memory at `base` with `capacity` payload bytes.
    /// `capacity` must be a power of two.
    ///
    /// # Safety
    /// `base` must point to at least [`ring_bytes`]`(capacity)` bytes of
    /// zero-initialized memory shared between producer and consumer.
    pub unsafe fn attach(base: *mut u8, capacity: usize) -> SpscRing {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        SpscRing { base, capacity }
    }

    fn head(&self) -> &AtomicU64 {
        // SAFETY: within the region per the attach contract; aligned.
        unsafe { &*(self.base.add(HEAD_OFF) as *const AtomicU64) }
    }

    fn tail(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &*(self.base.add(TAIL_OFF) as *const AtomicU64) }
    }

    fn slot(&self, pos: u64) -> *mut u8 {
        // SAFETY: pos is reduced modulo capacity.
        unsafe {
            self.base
                .add(DATA_OFF + (pos as usize & (self.capacity - 1)))
        }
    }

    /// Copy `bytes` into the ring starting at logical position `pos`,
    /// wrapping as needed.
    fn write_wrapped(&self, pos: u64, bytes: &[u8]) {
        let first = bytes
            .len()
            .min(self.capacity - (pos as usize & (self.capacity - 1)));
        // SAFETY: both pieces are in-bounds of the data area.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.slot(pos), first);
            if first < bytes.len() {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr().add(first),
                    self.slot(pos + first as u64),
                    bytes.len() - first,
                );
            }
        }
    }

    fn read_wrapped(&self, pos: u64, out: &mut [u8]) {
        let first = out
            .len()
            .min(self.capacity - (pos as usize & (self.capacity - 1)));
        // SAFETY: in-bounds as above.
        unsafe {
            std::ptr::copy_nonoverlapping(self.slot(pos), out.as_mut_ptr(), first);
            if first < out.len() {
                std::ptr::copy_nonoverlapping(
                    self.slot(pos + first as u64),
                    out.as_mut_ptr().add(first),
                    out.len() - first,
                );
            }
        }
    }

    /// Push one frame, spinning while the ring lacks space. The frame
    /// (header + padded payload) must fit the ring at all.
    pub fn push(&self, tag: u32, payload: &[u8]) {
        let frame = HDR + pad8(payload.len());
        assert!(
            frame <= self.capacity,
            "frame of {frame} bytes exceeds ring capacity {}",
            self.capacity
        );
        loop {
            let head = self.head().load(Ordering::Acquire);
            let tail = self.tail().load(Ordering::Relaxed);
            let used = (tail - head) as usize;
            if self.capacity - used >= frame {
                let mut hdr = [0u8; HDR];
                hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
                hdr[4..].copy_from_slice(&tag.to_le_bytes());
                self.write_wrapped(tail, &hdr);
                self.write_wrapped(tail + HDR as u64, payload);
                self.tail().store(tail + frame as u64, Ordering::Release);
                return;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Pop the next frame if one is ready.
    pub fn try_pop(&self) -> Option<(u32, Vec<u8>)> {
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let mut hdr = [0u8; HDR];
        self.read_wrapped(head, &mut hdr);
        let len = u32::from_le_bytes(hdr[..4].try_into().expect("slice length fixed")) as usize;
        let tag = u32::from_le_bytes(hdr[4..].try_into().expect("slice length fixed"));
        let mut payload = vec![0u8; len];
        self.read_wrapped(head + HDR as u64, &mut payload);
        self.head()
            .store(head + (HDR + pad8(len)) as u64, Ordering::Release);
        Some((tag, payload))
    }

    /// Pop, spinning until a frame arrives.
    pub fn pop(&self) -> (u32, Vec<u8>) {
        loop {
            if let Some(frame) = self.try_pop() {
                return frame;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::shm::ShmRegion;

    fn ring_pair(cap: usize) -> (ShmRegion, SpscRing, SpscRing) {
        let shm = ShmRegion::new(ring_bytes(cap)).unwrap();
        // SAFETY: fresh zeroed region of the right size.
        let a = unsafe { SpscRing::attach(shm.as_ptr(), cap) };
        let b = unsafe { SpscRing::attach(shm.as_ptr(), cap) };
        (shm, a, b)
    }

    #[test]
    fn frames_roundtrip_in_order() {
        let (_shm, tx, rx) = ring_pair(1024);
        tx.push(7, b"hello");
        tx.push(9, b"");
        tx.push(1, &[0xAB; 100]);
        assert_eq!(rx.pop(), (7, b"hello".to_vec()));
        assert_eq!(rx.pop(), (9, Vec::new()));
        assert_eq!(rx.pop(), (1, vec![0xAB; 100]));
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn wraps_around_many_times() {
        let (_shm, tx, rx) = ring_pair(256);
        for round in 0..1000u32 {
            let payload: Vec<u8> = (0..(round % 90) as u8).collect();
            tx.push(round, &payload);
            let (tag, got) = rx.pop();
            assert_eq!(tag, round);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn producer_blocks_until_consumer_drains() {
        let (_shm, tx, rx) = ring_pair(256);
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let rx2 = std::sync::Arc::clone(&rx);
        let consumer = std::thread::spawn(move || {
            let mut total = 0usize;
            while total < 50 {
                if let Some((_, p)) = rx2.lock().unwrap().try_pop() {
                    assert_eq!(p.len(), 64);
                    total += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            total
        });
        // 50 frames of 72 bytes vastly exceed a 256-byte ring: pushes
        // must block and resume as the consumer drains.
        for i in 0..50u32 {
            tx.push(i, &[i as u8; 64]);
        }
        assert_eq!(consumer.join().unwrap(), 50);
    }

    #[test]
    #[should_panic(expected = "exceeds ring capacity")]
    fn oversized_frame_is_rejected() {
        let (_shm, tx, _rx) = ring_pair(64);
        tx.push(0, &[0u8; 128]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        let shm = ShmRegion::new(ring_bytes(100)).unwrap();
        let _ = unsafe { SpscRing::attach(shm.as_ptr(), 100) };
    }
}
