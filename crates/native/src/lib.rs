#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Real transports: forked processes with genuine
//! `process_vm_readv`/`process_vm_writev` syscalls, and an in-process
//! thread transport for portable functional testing.
//!
//! The simulator (`kacc-machine`) answers *quantitative* questions; this
//! crate proves the collective algorithms drive the *actual* Linux
//! kernel-assisted copy path end-to-end:
//!
//! * [`shm`] — anonymous shared mappings inherited across `fork`;
//! * [`ring`] — lock-free SPSC byte rings living inside those mappings
//!   (the control plane: token exchange, notifications, RTS/CTS);
//! * [`team`] — fork/join process teams with a shared pid table, a
//!   sense-reversing barrier and failure collection;
//! * [`nativecomm`] — [`kacc_comm::Comm`] over all of the above, with
//!   CMA ops issued through the `nix` wrappers of the real syscalls;
//! * [`threadcomm`] — a thread-backed [`kacc_comm::Comm`] with identical
//!   semantics and no OS dependencies (used for portable tests and as a
//!   reference implementation).
//!
//! Cross-process attach requires the kernel to permit same-UID ptrace
//! (`/proc/sys/kernel/yama/ptrace_scope` ≤ 1 covers the common cases for
//! direct children); [`cma_available`] probes this at runtime so callers
//! can skip gracefully.

pub mod nativecomm;
pub mod probe;
pub mod ring;
pub mod shm;
pub mod team;
pub mod threadcomm;

pub use nativecomm::NativeComm;
pub use probe::{calibrate_native, measure_native_gamma, NativeCalibration};
pub use team::{run_forked, TeamError};
pub use threadcomm::{run_threads, run_threads_faulty, ThreadComm};

use std::sync::OnceLock;

/// Does cross-process CMA work here? Probes once by forking a child and
/// reading a page from it.
pub fn cma_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        run_forked(2, |comm| {
            use kacc_comm::{Comm, CommExt, Tag};
            if comm.rank() == 0 {
                let b = comm.alloc_with(&[0xA5u8; 4096]);
                let tok = comm.expose(b)?;
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes())?;
                comm.wait_notify(1, Tag::user(2))?;
                Ok(())
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1))?;
                let tok = kacc_comm::RemoteToken::from_bytes(&raw)
                    .ok_or(kacc_comm::CommError::Protocol("bad probe token".into()))?;
                let dst = comm.alloc(4096);
                comm.cma_read(tok, 0, dst, 0, 4096)?;
                let data = comm.read_all(dst)?;
                if data == [0xA5u8; 4096] {
                    comm.notify(0, Tag::user(2))?;
                    Ok(())
                } else {
                    Err(kacc_comm::CommError::Protocol("probe data mismatch".into()))
                }
            }
        })
        .is_ok()
    })
}
