//! [`Comm`] over forked processes with real kernel-assisted copies.

use crate::ring::{ring_bytes, SpscRing};
use crate::shm::ShmRegion;
use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use kacc_fault::{FaultDecision, FaultHook, FaultOp, FaultSite};
use nix::sys::uio::{process_vm_readv, process_vm_writev, RemoteIoVec};
use nix::unistd::Pid;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IoSlice, IoSliceMut};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Payload capacity of each directed ring (power of two).
pub const RING_CAP: usize = 256 * 1024;
/// Bulk fragments pushed through the rings by the two-copy path.
const BULK_CHUNK: usize = 32 * 1024;
/// Bulk frames set this tag bit so they never collide with control
/// messages of the same user tag.
const BULK_BIT: u32 = 0x8000_0000;
/// Per-rank error-message slot size.
const ERR_SLOT: usize = 256;
/// Shared u64 result slots available to team closures.
pub const RESULT_SLOTS: usize = 4096;

/// Offsets of the shared control structures for a `p`-rank team.
#[derive(Debug, Clone)]
pub struct SharedLayout {
    p: usize,
    barrier_count: usize,
    barrier_gen: usize,
    pids: usize,
    errors: usize,
    results: usize,
    rings: usize,
}

impl SharedLayout {
    /// Compute the layout for `p` ranks.
    pub fn new(p: usize) -> SharedLayout {
        let mut at = 0usize;
        let mut take = |n: usize| {
            let here = at;
            at += n.div_ceil(64) * 64; // cache-line align every section
            here
        };
        let barrier_count = take(8);
        let barrier_gen = take(8);
        let pids = take(8 * p);
        let errors = take(ERR_SLOT * p);
        let results = take(8 * RESULT_SLOTS);
        let rings = take(ring_bytes(RING_CAP) * p * p);
        let _total = at;
        SharedLayout {
            p,
            barrier_count,
            barrier_gen,
            pids,
            errors,
            results,
            rings,
        }
    }

    fn total(&self) -> usize {
        self.rings + ring_bytes(RING_CAP) * self.p * self.p
    }

    fn ring_off(&self, to: usize, from: usize) -> usize {
        self.rings + (to * self.p + from) * ring_bytes(RING_CAP)
    }

    /// Shared result slot `i` (survives the children; the team runner
    /// collects them after the join).
    pub fn result_slot<'a>(&self, shm: &'a ShmRegion, i: usize) -> &'a AtomicU64 {
        assert!(i < RESULT_SLOTS, "result slot {i} out of range");
        // SAFETY: aligned, in-bounds, shared atomics.
        unsafe { &*(shm.at(self.results + i * 8, 8) as *const AtomicU64) }
    }

    /// Record an error message for `rank` (truncated to the slot).
    pub fn write_error(&self, shm: &ShmRegion, rank: usize, msg: &str) {
        let bytes = msg.as_bytes();
        let n = bytes.len().min(ERR_SLOT - 1);
        // SAFETY: slot is in-bounds; only `rank` writes its slot.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                shm.at(self.errors + rank * ERR_SLOT, n),
                n,
            );
        }
    }

    /// Read back `rank`'s error message.
    pub fn read_error(&self, shm: &ShmRegion, rank: usize) -> String {
        let mut buf = vec![0u8; ERR_SLOT];
        // SAFETY: in-bounds read of the slot.
        unsafe {
            std::ptr::copy_nonoverlapping(
                shm.at(self.errors + rank * ERR_SLOT, ERR_SLOT),
                buf.as_mut_ptr(),
                ERR_SLOT,
            );
        }
        let end = buf.iter().position(|&b| b == 0).unwrap_or(0);
        String::from_utf8_lossy(&buf[..end]).into_owned()
    }
}

/// Total shared bytes needed for a `p`-rank team.
pub fn layout_bytes(p: usize) -> usize {
    SharedLayout::new(p).total()
}

/// One forked process's endpoint. Buffers live in *private* memory —
/// peers reach them only through `process_vm_readv`/`writev`, exactly
/// like an MPI rank's heap.
pub struct NativeComm {
    shm: Arc<ShmRegion>,
    layout: SharedLayout,
    rank: usize,
    p: usize,
    /// Ring (me ← from), one per peer.
    rx: Vec<SpscRing>,
    /// Ring (to ← me), one per peer.
    tx: Vec<SpscRing>,
    /// Messages pulled off the rings but not yet matched.
    pending: HashMap<(usize, u32), VecDeque<Vec<u8>>>,
    bufs: HashMap<u64, Box<[u8]>>,
    exposed: HashSet<u64>,
    next_buf: u64,
    start: Instant,
    topo: Topology,
    /// Fault injector; off by default (one branch per operation). The
    /// `Truncate` decision caps the next syscall's remote iovec so the
    /// short-read resume loop is exercised against real syscalls.
    fault: FaultHook,
}

impl NativeComm {
    /// Attach rank `rank` of `p` to the shared control region, register
    /// our pid, and synchronize with the whole team.
    pub fn attach(shm: Arc<ShmRegion>, layout: SharedLayout, rank: usize, p: usize) -> NativeComm {
        assert_eq!(layout.p, p);
        // SAFETY: ring areas are disjoint, zeroed, and correctly sized;
        // each directed ring has exactly one producer and one consumer.
        let rx = (0..p)
            .map(|from| unsafe {
                SpscRing::attach(shm.at(layout.ring_off(rank, from), 0), RING_CAP)
            })
            .collect();
        let tx = (0..p)
            .map(|to| unsafe { SpscRing::attach(shm.at(layout.ring_off(to, rank), 0), RING_CAP) })
            .collect();
        let comm = NativeComm {
            rank,
            p,
            rx,
            tx,
            pending: HashMap::new(),
            bufs: HashMap::new(),
            exposed: HashSet::new(),
            next_buf: 1,
            start: Instant::now(),
            topo: Topology {
                sockets: 1,
                cores_per_socket: p.max(1),
                threads_per_core: 1,
                page_size: page_size(),
            },
            fault: FaultHook::off(),
            shm,
            layout,
        };
        comm.pid_slot(rank)
            .store(std::process::id() as i64, Ordering::SeqCst);
        // Wait for the whole team's pids before anyone communicates.
        for r in 0..p {
            while comm.pid_slot(r).load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        }
        comm.barrier_wait();
        comm
    }

    fn pid_slot(&self, rank: usize) -> &AtomicI64 {
        // SAFETY: aligned, in-bounds, shared atomics.
        unsafe { &*(self.shm.at(self.layout.pids + rank * 8, 8) as *const AtomicI64) }
    }

    fn barrier_count(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &*(self.shm.at(self.layout.barrier_count, 8) as *const AtomicU64) }
    }

    fn barrier_gen(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &*(self.shm.at(self.layout.barrier_gen, 8) as *const AtomicU64) }
    }

    /// Sense-reversing spin barrier over the shared counters.
    pub fn barrier_wait(&self) {
        let generation = self.barrier_gen().load(Ordering::Acquire);
        if self.barrier_count().fetch_add(1, Ordering::AcqRel) + 1 == self.p as u64 {
            self.barrier_count().store(0, Ordering::Release);
            self.barrier_gen().fetch_add(1, Ordering::AcqRel);
        } else {
            while self.barrier_gen().load(Ordering::Acquire) == generation {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Shared u64 result slot `i` (< [`RESULT_SLOTS`]), for reporting
    /// measurements back to the parent across the fork boundary.
    pub fn result_slot(&self, i: usize) -> &AtomicU64 {
        self.layout.result_slot(&self.shm, i)
    }

    /// Peer pid for kernel-assisted calls.
    pub fn pid_of(&self, rank: usize) -> Pid {
        Pid::from_raw(self.pid_slot(rank).load(Ordering::SeqCst) as i32)
    }

    fn buf(&self, id: BufId) -> Result<&[u8]> {
        self.bufs
            .get(&id.0)
            .map(|b| b.as_ref())
            .ok_or(CommError::InvalidBuffer(id.0))
    }

    fn check(&self, buf: BufId, off: usize, len: usize) -> Result<()> {
        let cap = self.buf(buf)?.len();
        if off.checked_add(len).is_none_or(|end| end > cap) {
            return Err(CommError::OutOfRange {
                buf: buf.0,
                off,
                len,
                cap,
            });
        }
        Ok(())
    }

    /// Drain `from`'s ring into the pending map until a `(from, key)`
    /// message exists, then return it.
    fn recv_keyed(&mut self, from: usize, key: u32) -> Vec<u8> {
        self.recv_keyed_deadline(from, key, None)
            .expect("unbounded receive always yields a message")
    }

    /// [`Self::recv_keyed`] with an optional give-up deadline; `None`
    /// deadline never returns `None`.
    fn recv_keyed_deadline(
        &mut self,
        from: usize,
        key: u32,
        deadline: Option<Instant>,
    ) -> Option<Vec<u8>> {
        loop {
            if let Some(q) = self.pending.get_mut(&(from, key)) {
                if let Some(msg) = q.pop_front() {
                    return Some(msg);
                }
            }
            match self.rx[from].try_pop() {
                Some((tag, payload)) => {
                    self.pending
                        .entry((from, tag))
                        .or_default()
                        .push_back(payload);
                }
                None => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return None;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Install a fault injector on this endpoint (chaos testing).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = hook;
    }

    /// Consult the fault hook for one site; injected delays sleep in
    /// place (wall clock).
    fn fault_gate(&self, peer: Option<usize>, op: FaultOp, len: usize) -> FaultDecision {
        if !self.fault.on() {
            return FaultDecision::Allow;
        }
        let d = self.fault.decide(&FaultSite {
            rank: self.rank,
            peer,
            op,
            len,
        });
        let d = if op.is_cma() { d } else { d.no_partial() };
        if let FaultDecision::Delay { ns } = d {
            std::thread::sleep(Duration::from_nanos(ns));
            return FaultDecision::Allow;
        }
        d
    }
}

fn page_size() -> usize {
    // SAFETY: simple sysconf query.
    let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if sz > 0 {
        sz as usize
    } else {
        4096
    }
}

fn errno_of(e: nix::errno::Errno) -> CommError {
    match e {
        nix::errno::Errno::EPERM => CommError::PermissionDenied,
        other => CommError::Os(other as i32),
    }
}

impl Comm for NativeComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.p
    }

    fn topology(&self) -> Topology {
        self.topo
    }

    fn alloc(&mut self, len: usize) -> BufId {
        let id = self.next_buf;
        self.next_buf += 1;
        self.bufs.insert(id, vec![0u8; len].into_boxed_slice());
        BufId(id)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.exposed.remove(&buf.0);
        self.bufs
            .remove(&buf.0)
            .map(|_| ())
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        Ok(self.buf(buf)?.len())
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.check(buf, off, data.len())?;
        self.bufs.get_mut(&buf.0).expect("buffer checked above")[off..off + data.len()]
            .copy_from_slice(data);
        Ok(())
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.check(buf, off, out.len())?;
        out.copy_from_slice(&self.buf(buf)?[off..off + out.len()]);
        Ok(())
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.check(src, src_off, len)?;
        self.check(dst, dst_off, len)?;
        if src == dst {
            let b = self.bufs.get_mut(&src.0).expect("buffer checked above");
            b.copy_within(src_off..src_off + len, dst_off);
        } else {
            let data = self.buf(src)?[src_off..src_off + len].to_vec();
            self.bufs.get_mut(&dst.0).expect("buffer checked above")[dst_off..dst_off + len]
                .copy_from_slice(&data);
        }
        Ok(())
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        if let FaultDecision::Fail(e) = self.fault_gate(None, FaultOp::Expose, 0) {
            return Err(e);
        }
        let addr = self.buf(buf)?.as_ptr() as u64;
        self.exposed.insert(buf.0);
        Ok(RemoteToken {
            rank: self.rank as u64,
            token: addr,
        })
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        let peer = token.rank as usize;
        if peer >= self.p {
            return Err(CommError::BadRank(peer));
        }
        self.check(dst, dst_off, len)?;
        // A `Truncate` decision caps the bytes this call may move; the
        // shortfall surfaces as `Truncated` so callers exercise their
        // resume path against the real syscall.
        let (eff, trunc) = match self.fault_gate(Some(peer), FaultOp::CmaRead, len) {
            FaultDecision::Fail(e) => return Err(e),
            FaultDecision::Truncate { got } => (got.min(len), Some(len)),
            _ => (len, None),
        };
        let pid = self.pid_of(peer);
        let local =
            &mut self.bufs.get_mut(&dst.0).expect("buffer checked above")[dst_off..dst_off + eff];
        let mut moved = 0usize;
        while moved < eff {
            let n = match process_vm_readv(
                pid,
                &mut [IoSliceMut::new(&mut local[moved..])],
                &[RemoteIoVec {
                    base: token.token as usize + remote_off + moved,
                    len: eff - moved,
                }],
            ) {
                Ok(n) => n,
                // Interrupted before any bytes moved: retry transparently.
                Err(nix::errno::Errno::EINTR) => continue,
                Err(e) => return Err(errno_of(e)),
            };
            if n == 0 {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: moved,
                });
            }
            moved += n;
        }
        match trunc {
            Some(wanted) => Err(CommError::Truncated { wanted, got: eff }),
            None => Ok(()),
        }
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        let peer = token.rank as usize;
        if peer >= self.p {
            return Err(CommError::BadRank(peer));
        }
        self.check(src, src_off, len)?;
        let (eff, trunc) = match self.fault_gate(Some(peer), FaultOp::CmaWrite, len) {
            FaultDecision::Fail(e) => return Err(e),
            FaultDecision::Truncate { got } => (got.min(len), Some(len)),
            _ => (len, None),
        };
        let pid = self.pid_of(peer);
        let local = &self.buf(src)?[src_off..src_off + eff];
        let mut moved = 0usize;
        while moved < eff {
            let n = match process_vm_writev(
                pid,
                &[IoSlice::new(&local[moved..])],
                &[RemoteIoVec {
                    base: token.token as usize + remote_off + moved,
                    len: eff - moved,
                }],
            ) {
                Ok(n) => n,
                // Interrupted before any bytes moved: retry transparently.
                Err(nix::errno::Errno::EINTR) => continue,
                Err(e) => return Err(errno_of(e)),
            };
            if n == 0 {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: moved,
                });
            }
            moved += n;
        }
        match trunc {
            Some(wanted) => Err(CommError::Truncated { wanted, got: eff }),
            None => Ok(()),
        }
    }

    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        if to >= self.p {
            return Err(CommError::BadRank(to));
        }
        if tag.0 & BULK_BIT != 0 {
            return Err(CommError::Protocol("tag collides with bulk channel".into()));
        }
        // A dropped control message surfaces as a typed send failure,
        // never as silent loss (which would deadlock the receiver).
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::CtrlSend, data.len()) {
            return Err(e);
        }
        self.tx[to].push(tag.0, data);
        Ok(())
    }

    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        if from >= self.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        Ok(self.recv_keyed(from, tag.0))
    }

    fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        if from >= self.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        Ok(self.recv_keyed_deadline(from, tag.0, Some(deadline)))
    }

    /// Two-copy bulk send. Deviation from the abstract contract: when a
    /// transfer exceeds the ring capacity ([`RING_CAP`]) and the
    /// receiver is not draining, the sender blocks on ring backpressure.
    /// No protocol in this workspace sends bidirectional bulk shm
    /// traffic on the native transport, so this cannot deadlock here,
    /// but new exchange patterns over `NativeComm` should prefer CMA
    /// (which never blocks on a peer's progress).
    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if to >= self.p {
            return Err(CommError::BadRank(to));
        }
        self.check(src, off, len)?;
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::ShmSend, len) {
            return Err(e);
        }
        // Two-copy path: fragment through the shared ring (first copy
        // here, second at the receiver).
        let key = tag.0 | BULK_BIT;
        let mut at = 0usize;
        let data = self.buf(src)?;
        while at < len || (len == 0 && at == 0) {
            let n = BULK_CHUNK.min(len - at);
            self.tx[to].push(key, &data[off + at..off + at + n]);
            at += n.max(1);
            if len == 0 {
                break;
            }
        }
        Ok(())
    }

    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if from >= self.p {
            return Err(CommError::BadRank(from));
        }
        self.check(dst, off, len)?;
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        let key = tag.0 | BULK_BIT;
        let mut at = 0usize;
        loop {
            let chunk = self.recv_keyed(from, key);
            if at + chunk.len() > len {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: at + chunk.len(),
                });
            }
            self.bufs.get_mut(&dst.0).expect("buffer checked above")
                [off + at..off + at + chunk.len()]
                .copy_from_slice(&chunk);
            at += chunk.len();
            if at >= len {
                return Ok(());
            }
            if chunk.is_empty() {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: at,
                });
            }
        }
    }

    fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        if from >= self.p {
            return Err(CommError::BadRank(from));
        }
        self.check(dst, off, len)?;
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        let key = tag.0 | BULK_BIT;
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        // Stage into scratch so a timeout before the first fragment
        // leaves both `dst` and the ring-claimable message untouched. A
        // stall *mid*-message means the sender died between fragments:
        // that is a permanent `Truncated`, not a retryable timeout.
        let mut staged = Vec::with_capacity(len);
        loop {
            let Some(chunk) = self.recv_keyed_deadline(from, key, Some(deadline)) else {
                if staged.is_empty() && len > 0 {
                    return Ok(false);
                }
                return Err(CommError::Truncated {
                    wanted: len,
                    got: staged.len(),
                });
            };
            if staged.len() + chunk.len() > len {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: staged.len() + chunk.len(),
                });
            }
            let was_empty = chunk.is_empty();
            staged.extend_from_slice(&chunk);
            if staged.len() >= len {
                self.bufs.get_mut(&dst.0).expect("buffer checked above")[off..off + len]
                    .copy_from_slice(&staged);
                return Ok(true);
            }
            if was_empty {
                return Err(CommError::Truncated {
                    wanted: len,
                    got: staged.len(),
                });
            }
        }
    }

    fn time_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}
