//! Fork/join process teams sharing a control region.

use crate::nativecomm::{layout_bytes, NativeComm, SharedLayout};
use crate::shm::ShmRegion;
use kacc_comm::Result;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Failure of a forked team run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeamError {
    /// One or more ranks failed; `(rank, message)` pairs.
    RankFailures(Vec<(usize, String)>),
    /// The team could not be set up (mmap/fork failure).
    Setup(String),
}

impl std::fmt::Display for TeamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeamError::RankFailures(fails) => {
                write!(f, "rank failures:")?;
                for (r, msg) in fails {
                    write!(f, " [rank {r}: {msg}]")?;
                }
                Ok(())
            }
            TeamError::Setup(msg) => write!(f, "team setup failed: {msg}"),
        }
    }
}

impl std::error::Error for TeamError {}

/// Fork `p` processes, run `f` as rank 0..p in each, and join.
///
/// `f` returns a [`kacc_comm::Result`]; a rank that errors (or panics)
/// reports its message back through shared memory. The parent is not a
/// rank — it only forks and reaps, so it is safe to call from
/// single-threaded binaries. (Calling from heavily multi-threaded test
/// harnesses relies on the children only touching the allocator after
/// `fork`, which glibc tolerates for direct children in practice; the
/// test suite confines forking to one test binary.)
pub fn run_forked<F>(p: usize, f: F) -> std::result::Result<(), TeamError>
where
    F: Fn(&mut NativeComm) -> Result<()>,
{
    run_forked_collect(p, 0, f).map(|_| ())
}

/// [`run_forked`] that additionally returns the first `slots` shared
/// result slots (see `NativeComm::result_slot`) after the join — the
/// measurement channel across the fork boundary.
pub fn run_forked_collect<F>(
    p: usize,
    slots: usize,
    f: F,
) -> std::result::Result<Vec<u64>, TeamError>
where
    F: Fn(&mut NativeComm) -> Result<()>,
{
    assert!(p >= 1);
    let shm = Arc::new(
        ShmRegion::new(layout_bytes(p)).map_err(|e| TeamError::Setup(format!("shm: {e}")))?,
    );
    let layout = SharedLayout::new(p);

    let mut pids = Vec::with_capacity(p);
    for rank in 0..p {
        // SAFETY: fork; the child only runs our controlled code path and
        // leaves via _exit.
        match unsafe { libc::fork() } {
            0 => {
                let code = child_main(rank, p, &shm, &layout, &f);
                // SAFETY: terminate without unwinding into the parent's
                // state or running shared destructors twice.
                unsafe { libc::_exit(code) };
            }
            pid if pid > 0 => pids.push(pid),
            _ => {
                // Fork failed: reap whoever exists and bail.
                for pid in pids {
                    unsafe {
                        libc::kill(pid, libc::SIGKILL);
                        libc::waitpid(pid, std::ptr::null_mut(), 0);
                    }
                }
                return Err(TeamError::Setup("fork failed".into()));
            }
        }
    }

    let mut failures = Vec::new();
    for (rank, pid) in pids.into_iter().enumerate() {
        let mut status = 0;
        // SAFETY: reaping our own child.
        unsafe { libc::waitpid(pid, &mut status, 0) };
        let exited_ok = libc::WIFEXITED(status) && libc::WEXITSTATUS(status) == 0;
        if !exited_ok {
            let msg = layout.read_error(&shm, rank);
            failures.push((
                rank,
                if msg.is_empty() {
                    format!("exit status {status:#x}")
                } else {
                    msg
                },
            ));
        }
    }
    if failures.is_empty() {
        Ok((0..slots)
            .map(|i| {
                layout
                    .result_slot(&shm, i)
                    .load(std::sync::atomic::Ordering::SeqCst)
            })
            .collect())
    } else {
        Err(TeamError::RankFailures(failures))
    }
}

fn child_main<F>(rank: usize, p: usize, shm: &Arc<ShmRegion>, layout: &SharedLayout, f: &F) -> i32
where
    F: Fn(&mut NativeComm) -> Result<()>,
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut comm = NativeComm::attach(Arc::clone(shm), layout.clone(), rank, p);
        f(&mut comm)
    }));
    match result {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            layout.write_error(shm, rank, &e.to_string());
            1
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic".into());
            layout.write_error(shm, rank, &msg);
            2
        }
    }
}
