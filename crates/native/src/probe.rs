//! Calibrate the *real* machine's CMA parameters, the closest runnable
//! analogue of the paper's Table III/IV methodology.
//!
//! Modern kernels short-circuit `process_vm_readv` when either iovec is
//! empty, so the paper's liovcnt/riovcnt step-isolation trick no longer
//! pins pages without copying. Instead we recover the parameters from
//! full transfers:
//!
//! * α from minimal (1-byte) transfers,
//! * the combined per-page slope `l + s·β` from a linear fit of latency
//!   over page count on *cold* (first-touch) pages,
//! * β from the marginal cost of re-reading *warm* pages (locks cheap,
//!   copy dominant),
//! * γ(c) from `c` forked readers hammering the same source process.
//!
//! Wall-clock numbers on shared machines are noisy; this module reports
//! medians over repeated trials and is surfaced by the
//! `calibrate_native` example, not used for the figure regeneration
//! (which runs on the calibrated simulator).

use crate::team::{run_forked_collect, TeamError};
use kacc_comm::{Comm, CommError, CommExt, RemoteToken, Tag};
use std::sync::atomic::Ordering;

/// Parameters recovered from the running machine.
#[derive(Debug, Clone)]
pub struct NativeCalibration {
    /// Startup cost per call (syscall + permission check), ns.
    pub alpha_ns: f64,
    /// Per-byte copy cost on warm pages, ns/byte.
    pub beta_ns_per_byte: f64,
    /// Combined first-touch per-page cost `l + s·β`, ns/page.
    pub page_slope_ns: f64,
    /// Lock+pin share of the page slope (`slope − s·β`), ns/page.
    pub l_ns: f64,
    /// Page size, bytes.
    pub page_size: usize,
}

impl NativeCalibration {
    /// Bandwidth in GB/s implied by β.
    pub fn bandwidth_gbps(&self) -> f64 {
        1.0 / self.beta_ns_per_byte
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// One timed cross-process read of `pages` pages; the child allocates a
/// fresh buffer per trial so pages are cold unless `warm`.
fn timed_read(
    pages: usize,
    page_size: usize,
    warm: bool,
    trials: usize,
) -> Result<Vec<f64>, TeamError> {
    let raw = run_forked_collect(2, trials, move |comm| {
        let bytes = (pages * page_size).max(1);
        if comm.rank() == 0 {
            for t in 0..trials {
                let b = comm.alloc_with(&vec![0xA5u8; bytes]);
                let tok = comm.expose(b)?;
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes())?;
                comm.wait_notify(1, Tag::user(2))?;
                if t + 1 < trials {
                    comm.free(b)?;
                }
            }
            Ok(())
        } else {
            let dst = comm.alloc(bytes);
            for t in 0..trials {
                let raw = comm.ctrl_recv(0, Tag::user(1))?;
                let tok =
                    RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad token".into()))?;
                if warm {
                    // Touch once so the timed read hits pinned-warm pages.
                    comm.cma_read(tok, 0, dst, 0, bytes)?;
                }
                let t0 = comm.time_ns();
                comm.cma_read(tok, 0, dst, 0, bytes)?;
                let dt = comm.time_ns() - t0;
                comm.result_slot(t).store(dt.max(1), Ordering::SeqCst);
                comm.notify(0, Tag::user(2))?;
            }
            Ok(())
        }
    })?;
    Ok(raw.into_iter().map(|s| s as f64).collect())
}

/// Run the calibration (≈ a second of wall time with the defaults).
pub fn calibrate_native(trials: usize) -> Result<NativeCalibration, TeamError> {
    let page_size = {
        // SAFETY: plain sysconf.
        let sz = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
        if sz > 0 {
            sz as usize
        } else {
            4096
        }
    };
    let trials = trials.max(3);

    // α: minimal transfers (1 byte → 1 page + copy of 1 byte ≈ α + l).
    let alpha = median(timed_read(0, page_size, true, trials)?);

    // β: warm large transfers — marginal cost per byte.
    let warm_small = median(timed_read(64, page_size, true, trials)?);
    let warm_large = median(timed_read(512, page_size, true, trials)?);
    let beta = ((warm_large - warm_small) / ((512 - 64) * page_size) as f64).max(1e-4);

    // Cold slope: first-touch reads include lock+pin per page.
    let cold_small = median(timed_read(64, page_size, false, trials)?);
    let cold_large = median(timed_read(512, page_size, false, trials)?);
    let slope = ((cold_large - cold_small) / (512 - 64) as f64).max(0.0);

    let l = (slope - beta * page_size as f64).max(0.0);
    Ok(NativeCalibration {
        alpha_ns: alpha,
        beta_ns_per_byte: beta,
        page_slope_ns: slope,
        l_ns: l,
        page_size,
    })
}

/// Measure the real machine's contention inflation: median per-reader
/// latency of `readers` concurrent same-source reads over the latency of
/// a single reader. On a box with fewer cores than readers this
/// under-reports true contention (readers time-slice instead of
/// spinning on the lock) — it exists to exercise the code path and give
/// a lower bound.
pub fn measure_native_gamma(readers: usize, pages: usize, trials: usize) -> Result<f64, TeamError> {
    let page_size = 4096usize;
    let solo = median(one_to_all(1, pages, page_size, trials)?);
    let packed = median(one_to_all(readers, pages, page_size, trials)?);
    Ok(packed / solo.max(1.0))
}

fn one_to_all(
    readers: usize,
    pages: usize,
    page_size: usize,
    trials: usize,
) -> Result<Vec<f64>, TeamError> {
    let raw = run_forked_collect(readers + 1, trials * readers, move |comm| {
        let bytes = pages * page_size;
        if comm.rank() == 0 {
            for _ in 0..trials {
                let b = comm.alloc(bytes * readers);
                let tok = comm.expose(b)?;
                for r in 1..=readers {
                    comm.ctrl_send(r, Tag::user(1), &tok.to_bytes())?;
                }
                for r in 1..=readers {
                    comm.wait_notify(r, Tag::user(2))?;
                }
                comm.free(b)?;
            }
            Ok(())
        } else {
            let me = comm.rank();
            let dst = comm.alloc(bytes);
            for t in 0..trials {
                let raw = comm.ctrl_recv(0, Tag::user(1))?;
                let tok =
                    RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad token".into()))?;
                let t0 = comm.time_ns();
                comm.cma_read(tok, (me - 1) * bytes, dst, 0, bytes)?;
                let dt = comm.time_ns() - t0;
                comm.result_slot(t * readers + (me - 1))
                    .store(dt.max(1), Ordering::SeqCst);
                comm.notify(0, Tag::user(2))?;
            }
            Ok(())
        }
    })?;
    Ok(raw.into_iter().map(|s| s as f64).collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 3.0);
    }
}
