//! In-process thread transport: the same [`Comm`] semantics as the
//! forked transport, with threads instead of processes and memcpy
//! instead of syscalls. Portable reference implementation used by
//! integration tests and cross-transport differential checks.

use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use kacc_fault::{FaultDecision, FaultHook, FaultOp, FaultSite};
use parking_lot_shim::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

// Small local alias module so this crate's only sync dependency is std.
mod parking_lot_shim {
    pub use std::sync::{Condvar, Mutex};
}

/// (owner rank, buffer id) → shared contents.
type BufMap = HashMap<(usize, u64), Arc<Mutex<Vec<u8>>>>;
/// (to, from, tag) → FIFO of undelivered messages.
type MailMap = HashMap<(usize, usize, u32), VecDeque<Vec<u8>>>;

struct Hub {
    p: usize,
    bufs: Mutex<BufMap>,
    exposed: Mutex<HashSet<(usize, u64)>>,
    /// A single condvar fans out mail wake-ups (simple, correct, fine at
    /// test scale).
    mail: Mutex<MailMap>,
    mail_cv: Condvar,
    start: Instant,
    /// Fault injector shared by all ranks; off unless installed by
    /// [`run_threads_faulty`].
    fault: FaultHook,
}

/// Thread-backed endpoint.
pub struct ThreadComm {
    hub: Arc<Hub>,
    rank: usize,
    next_buf: u64,
}

impl ThreadComm {
    fn check(&self, buf: BufId, off: usize, len: usize) -> Result<usize> {
        let cap = self.buf_len(buf)?;
        if off.checked_add(len).is_none_or(|end| end > cap) {
            return Err(CommError::OutOfRange {
                buf: buf.0,
                off,
                len,
                cap,
            });
        }
        Ok(cap)
    }

    fn buf_arc(&self, owner: usize, id: u64) -> Result<Arc<Mutex<Vec<u8>>>> {
        self.hub
            .bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(owner, id))
            .cloned()
            .ok_or(CommError::InvalidBuffer(id))
    }

    /// Consult the fault hook for one site; injected delays sleep in
    /// place (wall clock — this transport's notion of time).
    fn fault_gate(&self, peer: Option<usize>, op: FaultOp, len: usize) -> FaultDecision {
        if !self.hub.fault.on() {
            return FaultDecision::Allow;
        }
        let d = self.hub.fault.decide(&FaultSite {
            rank: self.rank,
            peer,
            op,
            len,
        });
        let d = if op.is_cma() { d } else { d.no_partial() };
        if let FaultDecision::Delay { ns } = d {
            std::thread::sleep(Duration::from_nanos(ns));
            return FaultDecision::Allow;
        }
        d
    }

    /// Two-copy degradation path shared by `shm_fallback_read`/`write`:
    /// same addressing and exposure rules as the CMA ops, staged through
    /// an intermediate vector (the "shared staging" copy).
    fn fallback_transfer(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        len: usize,
        write: bool,
    ) -> Result<()> {
        let peer = token.rank as usize;
        if peer >= self.hub.p {
            return Err(CommError::BadRank(peer));
        }
        let op = if write {
            FaultOp::FallbackWrite
        } else {
            FaultOp::FallbackRead
        };
        if let FaultDecision::Fail(e) = self.fault_gate(Some(peer), op, len) {
            return Err(e);
        }
        if !self
            .hub
            .exposed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(&(peer, token.token))
        {
            return Err(CommError::PermissionDenied);
        }
        self.check(local, local_off, len)?;
        let remote = self.buf_arc(peer, token.token)?;
        {
            let guard = remote.lock().unwrap_or_else(PoisonError::into_inner);
            if remote_off + len > guard.len() {
                return Err(CommError::OutOfRange {
                    buf: token.token,
                    off: remote_off,
                    len,
                    cap: guard.len(),
                });
            }
        }
        if write {
            let staging = {
                let arc = self.buf_arc(self.rank, local.0)?;
                let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
                guard[local_off..local_off + len].to_vec()
            };
            remote.lock().unwrap_or_else(PoisonError::into_inner)[remote_off..remote_off + len]
                .copy_from_slice(&staging);
        } else {
            let staging = {
                let guard = remote.lock().unwrap_or_else(PoisonError::into_inner);
                guard[remote_off..remote_off + len].to_vec()
            };
            let arc = self.buf_arc(self.rank, local.0)?;
            arc.lock().unwrap_or_else(PoisonError::into_inner)[local_off..local_off + len]
                .copy_from_slice(&staging);
        }
        Ok(())
    }
}

/// Run `f` on `p` threads sharing one hub; returns per-rank results.
pub fn run_threads<R, F>(p: usize, f: F) -> Vec<R>
where
    F: Fn(&mut ThreadComm) -> R + Send + Sync,
    R: Send,
{
    run_threads_faulty(p, FaultHook::off(), f)
}

/// [`run_threads`] with a fault injector installed: every transport
/// operation consults `hook` before executing.
pub fn run_threads_faulty<R, F>(p: usize, hook: FaultHook, f: F) -> Vec<R>
where
    F: Fn(&mut ThreadComm) -> R + Send + Sync,
    R: Send,
{
    assert!(p >= 1);
    let hub = Arc::new(Hub {
        p,
        bufs: Mutex::new(HashMap::new()),
        exposed: Mutex::new(HashSet::new()),
        mail: Mutex::new(HashMap::new()),
        mail_cv: Condvar::new(),
        start: Instant::now(),
        fault: hook,
    });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let hub = Arc::clone(&hub);
                let f = &f;
                scope.spawn(move || {
                    let mut comm = ThreadComm {
                        hub,
                        rank,
                        next_buf: 1,
                    };
                    f(&mut comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.hub.p
    }

    fn topology(&self) -> Topology {
        Topology::flat(self.hub.p)
    }

    fn alloc(&mut self, len: usize) -> BufId {
        let id = self.next_buf;
        self.next_buf += 1;
        self.hub
            .bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((self.rank, id), Arc::new(Mutex::new(vec![0u8; len])));
        BufId(id)
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        self.hub
            .exposed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&(self.rank, buf.0));
        self.hub
            .bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&(self.rank, buf.0))
            .map(|_| ())
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        Ok(self
            .buf_arc(self.rank, buf.0)?
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len())
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.check(buf, off, data.len())?;
        let arc = self.buf_arc(self.rank, buf.0)?;
        let mut guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
        guard[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.check(buf, off, out.len())?;
        let arc = self.buf_arc(self.rank, buf.0)?;
        let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
        out.copy_from_slice(&guard[off..off + out.len()]);
        Ok(())
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.check(src, src_off, len)?;
        self.check(dst, dst_off, len)?;
        // Stage through a temporary so src == dst works and lock order
        // is trivially safe.
        let data = {
            let arc = self.buf_arc(self.rank, src.0)?;
            let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
            guard[src_off..src_off + len].to_vec()
        };
        let arc = self.buf_arc(self.rank, dst.0)?;
        arc.lock().unwrap_or_else(PoisonError::into_inner)[dst_off..dst_off + len]
            .copy_from_slice(&data);
        Ok(())
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        if let FaultDecision::Fail(e) = self.fault_gate(None, FaultOp::Expose, 0) {
            return Err(e);
        }
        if !self
            .hub
            .bufs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(&(self.rank, buf.0))
        {
            return Err(CommError::InvalidBuffer(buf.0));
        }
        self.hub
            .exposed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((self.rank, buf.0));
        Ok(RemoteToken {
            rank: self.rank as u64,
            token: buf.0,
        })
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        let peer = token.rank as usize;
        if peer >= self.hub.p {
            return Err(CommError::BadRank(peer));
        }
        // A Truncate decision genuinely moves the first `got` bytes and
        // then reports the short count, mirroring process_vm_readv.
        let (len, trunc) = match self.fault_gate(Some(peer), FaultOp::CmaRead, len) {
            FaultDecision::Fail(e) => return Err(e),
            FaultDecision::Truncate { got } => (got.min(len), Some(len)),
            _ => (len, None),
        };
        if !self
            .hub
            .exposed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(&(peer, token.token))
        {
            return Err(CommError::PermissionDenied);
        }
        self.check(dst, dst_off, len)?;
        // Single-copy semantics; staged to keep lock ordering acyclic.
        let data = {
            let arc = self.buf_arc(peer, token.token)?;
            let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
            if remote_off + len > guard.len() {
                return Err(CommError::OutOfRange {
                    buf: token.token,
                    off: remote_off,
                    len,
                    cap: guard.len(),
                });
            }
            guard[remote_off..remote_off + len].to_vec()
        };
        let arc = self.buf_arc(self.rank, dst.0)?;
        arc.lock().unwrap_or_else(PoisonError::into_inner)[dst_off..dst_off + len]
            .copy_from_slice(&data);
        match trunc {
            Some(wanted) => Err(CommError::Truncated { wanted, got: len }),
            None => Ok(()),
        }
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        let peer = token.rank as usize;
        if peer >= self.hub.p {
            return Err(CommError::BadRank(peer));
        }
        let (len, trunc) = match self.fault_gate(Some(peer), FaultOp::CmaWrite, len) {
            FaultDecision::Fail(e) => return Err(e),
            FaultDecision::Truncate { got } => (got.min(len), Some(len)),
            _ => (len, None),
        };
        if !self
            .hub
            .exposed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(&(peer, token.token))
        {
            return Err(CommError::PermissionDenied);
        }
        self.check(src, src_off, len)?;
        let data = {
            let arc = self.buf_arc(self.rank, src.0)?;
            let guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
            guard[src_off..src_off + len].to_vec()
        };
        let arc = self.buf_arc(peer, token.token)?;
        let mut guard = arc.lock().unwrap_or_else(PoisonError::into_inner);
        if remote_off + len > guard.len() {
            return Err(CommError::OutOfRange {
                buf: token.token,
                off: remote_off,
                len,
                cap: guard.len(),
            });
        }
        guard[remote_off..remote_off + len].copy_from_slice(&data);
        drop(guard);
        match trunc {
            Some(wanted) => Err(CommError::Truncated { wanted, got: len }),
            None => Ok(()),
        }
    }

    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        if to >= self.hub.p {
            return Err(CommError::BadRank(to));
        }
        // Drops surface as typed send failures, never silent losses.
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::CtrlSend, data.len()) {
            return Err(e);
        }
        let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
        mail.entry((to, self.rank, tag.0))
            .or_default()
            .push_back(data.to_vec());
        self.hub.mail_cv.notify_all();
        Ok(())
    }

    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        if from >= self.hub.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        let key = (self.rank, from, tag.0);
        let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = mail.get_mut(&key).and_then(|q| q.pop_front()) {
                return Ok(msg);
            }
            mail = self
                .hub
                .mail_cv
                .wait(mail)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        if from >= self.hub.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        let key = (self.rank, from, tag.0);
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = mail.get_mut(&key).and_then(|q| q.pop_front()) {
                return Ok(Some(msg));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _timed_out) = self
                .hub
                .mail_cv
                .wait_timeout(mail, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            mail = guard;
        }
    }

    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if to >= self.hub.p {
            return Err(CommError::BadRank(to));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::ShmSend, len) {
            return Err(e);
        }
        self.check(src, off, len)?;
        let mut payload = vec![0u8; len];
        self.read_local(src, off, &mut payload)?;
        // Distinct channel from ctrl traffic; posted directly so the
        // bulk path is one fault site, not a nested ctrl_send one.
        let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
        mail.entry((to, self.rank, tag.0 | 0x8000_0000))
            .or_default()
            .push_back(payload);
        self.hub.mail_cv.notify_all();
        Ok(())
    }

    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if from >= self.hub.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        let key = (self.rank, from, tag.0 | 0x8000_0000);
        let payload = {
            let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = mail.get_mut(&key).and_then(|q| q.pop_front()) {
                    break msg;
                }
                mail = self
                    .hub
                    .mail_cv
                    .wait(mail)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        self.write_local(dst, off, &payload)
    }

    fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        if from >= self.hub.p {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        let key = (self.rank, from, tag.0 | 0x8000_0000);
        let deadline = Instant::now() + Duration::from_nanos(timeout_ns);
        let payload = {
            let mut mail = self.hub.mail.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = mail.get_mut(&key).and_then(|q| q.pop_front()) {
                    break msg;
                }
                let now = Instant::now();
                if now >= deadline {
                    return Ok(false);
                }
                let (guard, _timed_out) = self
                    .hub
                    .mail_cv
                    .wait_timeout(mail, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                mail = guard;
            }
        };
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        self.write_local(dst, off, &payload)?;
        Ok(true)
    }

    fn shm_fallback_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.fallback_transfer(token, remote_off, dst, dst_off, len, false)
    }

    fn shm_fallback_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.fallback_transfer(token, remote_off, src, src_off, len, true)
    }

    fn time_ns(&self) -> u64 {
        self.hub.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_comm::CommExt;

    #[test]
    fn threads_exchange_via_cma_semantics() {
        let results = run_threads(4, |comm| {
            let me = comm.rank();
            let p = comm.size();
            let src = comm.alloc_with(&[me as u8; 1000]);
            let tok = comm.expose(src).unwrap();
            let toks = kacc_comm::smcoll::sm_allgather(comm, &tok.to_bytes()).unwrap();
            let dst = comm.alloc(1000);
            let peer = (me + 1) % p;
            let t = RemoteToken::from_bytes(&toks[peer]).unwrap();
            comm.cma_read(t, 0, dst, 0, 1000).unwrap();
            kacc_comm::smcoll::sm_barrier(comm).unwrap();
            comm.read_all(dst).unwrap()
        });
        for (me, got) in results.iter().enumerate() {
            assert_eq!(got[0] as usize, (me + 1) % 4);
        }
    }

    #[test]
    fn unexposed_buffer_is_protected() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                let b = comm.alloc(64);
                // Leak the id without exposing.
                comm.ctrl_send(1, Tag::user(1), &b.0.to_le_bytes()).unwrap();
                comm.wait_notify(1, Tag::user(2)).unwrap();
                true
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let id = u64::from_le_bytes(raw.try_into().unwrap());
                let dst = comm.alloc(64);
                let err = comm.cma_read(RemoteToken { rank: 0, token: id }, 0, dst, 0, 64);
                comm.notify(0, Tag::user(2)).unwrap();
                err == Err(CommError::PermissionDenied)
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn bulk_data_path_roundtrips() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
                let b = comm.alloc_with(&data);
                comm.shm_send_data(1, Tag::user(3), b, 0, data.len())
                    .unwrap();
                Vec::new()
            } else {
                let b = comm.alloc(100_000);
                comm.shm_recv_data(0, Tag::user(3), b, 0, 100_000).unwrap();
                comm.read_all(b).unwrap()
            }
        });
        let expect: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        assert_eq!(results[1], expect);
    }
}
