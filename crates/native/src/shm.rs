//! Anonymous shared mappings inherited across `fork`.

use kacc_comm::{CommError, Result};
use std::ptr::NonNull;

/// A `MAP_SHARED | MAP_ANONYMOUS` region. Created before `fork`, the
/// same physical pages are visible to parent and children at the same
/// virtual address, which makes it the natural home for control-plane
/// state (pid tables, rings, barriers).
pub struct ShmRegion {
    ptr: NonNull<u8>,
    len: usize,
}

// The region is plain shared bytes; all access goes through atomics or
// is externally synchronized by the ring/barrier protocols.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

impl ShmRegion {
    /// Map `len` bytes of zeroed shared memory.
    pub fn new(len: usize) -> Result<ShmRegion> {
        let len = len.max(1);
        // SAFETY: standard anonymous mapping; we check the result.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(CommError::Os(
                std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
            ));
        }
        Ok(ShmRegion {
            ptr: NonNull::new(ptr as *mut u8).expect("mmap success implies non-null"),
            len,
        })
    }

    /// Length of the mapping.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Pointer to offset `off`, bounds-checked, with room for `need`
    /// bytes.
    pub fn at(&self, off: usize, need: usize) -> *mut u8 {
        assert!(
            off.checked_add(need).is_some_and(|end| end <= self.len),
            "shm access [{off}, {off}+{need}) outside region of {} bytes",
            self.len
        );
        // SAFETY: bounds just checked.
        unsafe { self.ptr.as_ptr().add(off) }
    }
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from mmap above.
        unsafe {
            libc::munmap(self.ptr.as_ptr() as *mut libc::c_void, self.len);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_zeroed_and_writable() {
        let shm = ShmRegion::new(8192).unwrap();
        assert_eq!(shm.len(), 8192);
        assert!(!shm.is_empty());
        // SAFETY: in-bounds, exclusive access in this test.
        unsafe {
            assert_eq!(*shm.at(0, 1), 0);
            assert_eq!(*shm.at(8191, 1), 0);
            *shm.at(100, 1) = 42;
            assert_eq!(*shm.at(100, 1), 42);
        }
    }

    #[test]
    fn survives_fork_and_shares_pages() {
        let shm = ShmRegion::new(4096).unwrap();
        let flag = shm.at(0, 8) as *mut std::sync::atomic::AtomicU64;
        // SAFETY: AtomicU64 is valid on zeroed aligned memory.
        let flag = unsafe { &*flag };
        match unsafe { libc::fork() } {
            0 => {
                // Child: set and exit without running destructors.
                flag.store(7, std::sync::atomic::Ordering::SeqCst);
                unsafe { libc::_exit(0) };
            }
            pid if pid > 0 => {
                let mut status = 0;
                unsafe { libc::waitpid(pid, &mut status, 0) };
                assert_eq!(flag.load(std::sync::atomic::Ordering::SeqCst), 7);
            }
            _ => panic!("fork failed"),
        }
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn out_of_bounds_access_panics() {
        let shm = ShmRegion::new(64).unwrap();
        let _ = shm.at(60, 8);
    }
}
