//! Model-driven algorithm selection.
//!
//! The paper plugs its designs into MVAPICH2's collective tuning
//! framework, which "selects the appropriate CMA algorithm for a given
//! collective based on the architecture and message size" (§VII). This
//! tuner does the same selection analytically: it evaluates the §II cost
//! model for every candidate algorithm and picks the argmin, so the
//! choice adapts to α/β/l/γ and the socket layout without hand-written
//! tables.

use crate::schedule::{Payload, RecvInto, Schedule, Step};
use crate::{AllgatherAlgo, AlltoallAlgo, BcastAlgo, GatherAlgo, ReduceAlgo, ScatterAlgo};
use kacc_model::params::ceil_log2;
use kacc_model::{predict, ArchProfile, CostStep, ModelParams};

/// Selects collective algorithms by minimizing predicted cost.
#[derive(Debug, Clone)]
pub struct Tuner {
    params: ModelParams,
    procs_per_socket_hint: usize,
}

impl Tuner {
    /// Build a tuner from an architecture profile (uses its nominal
    /// model parameters).
    pub fn new(arch: &ArchProfile) -> Tuner {
        Tuner {
            params: arch.nominal_model(),
            procs_per_socket_hint: arch.cores_per_socket,
        }
    }

    /// Build a tuner from explicitly extracted/fitted parameters.
    pub fn with_params(params: ModelParams, procs_per_socket: usize) -> Tuner {
        Tuner {
            params,
            procs_per_socket_hint: procs_per_socket.max(1),
        }
    }

    /// The model parameters in use.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Candidate throttle factors for `p` ranks: powers of two up to
    /// p−1, plus the socket width (the Power8 winner in Fig 7c is the
    /// per-socket process count, which dodges inter-socket locking).
    pub fn throttle_candidates(&self, p: usize) -> Vec<usize> {
        let mut ks: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
            .into_iter()
            .filter(|&k| k < p.max(2))
            .collect();
        let socket = self.procs_per_socket_hint;
        if socket >= 2 && socket < p && !ks.contains(&socket) {
            ks.push(socket);
        }
        ks.sort_unstable();
        ks
    }

    /// Best Scatter algorithm for (p, η).
    pub fn scatter(&self, p: usize, eta: usize) -> ScatterAlgo {
        let mut best = (
            predict::scatter_parallel_read(&self.params, p, eta),
            ScatterAlgo::ParallelRead,
        );
        let seq = predict::scatter_sequential_write(&self.params, p, eta, false);
        if seq < best.0 {
            best = (seq, ScatterAlgo::SequentialWrite);
        }
        for k in self.throttle_candidates(p) {
            let t = predict::scatter_throttled_read(&self.params, p, eta, k);
            if t < best.0 {
                best = (t, ScatterAlgo::ThrottledRead { k });
            }
        }
        best.1
    }

    /// Best Gather algorithm for (p, η) (mirror of scatter).
    pub fn gather(&self, p: usize, eta: usize) -> GatherAlgo {
        match self.scatter(p, eta) {
            ScatterAlgo::ParallelRead => GatherAlgo::ParallelWrite,
            ScatterAlgo::SequentialWrite => GatherAlgo::SequentialRead,
            ScatterAlgo::ThrottledRead { k } => GatherAlgo::ThrottledWrite { k },
        }
    }

    /// Best Alltoall algorithm for (p, η).
    pub fn alltoall(&self, p: usize, eta: usize) -> AlltoallAlgo {
        // Bruck wins only when per-step startup dominates: log p rounds
        // moving p/2 blocks each with an extra copy, vs p−1 single-block
        // steps.
        let pairwise = predict::alltoall_pairwise(&self.params, p, eta);
        let bruck_rounds = ceil_log2(p) as f64;
        // Every rank runs its round concurrently, so Bruck's bulk reads
        // and staging copies all share the memory system.
        let bruck = self.params.t_sm_allgather(p, 16)
            + bruck_rounds * self.params.t_cma_shared(eta * p / 2, 1, p)
            + bruck_rounds * self.params.t_memcpy_shared(eta * p / 2, p)
            + 2.0 * self.params.t_memcpy_shared(eta * p, p);
        if bruck < pairwise {
            AlltoallAlgo::Bruck
        } else {
            AlltoallAlgo::Pairwise
        }
    }

    /// Best Allgather algorithm for (p, η). On multi-socket machines the
    /// ring representative is Ring-Neighbor-1, whose forwarding keeps
    /// almost every transfer intra-socket (§V-A, Fig 10b); on a single
    /// socket the synchronization-free Ring-Source read wins.
    pub fn allgather(&self, p: usize, eta: usize) -> AllgatherAlgo {
        let ring_algo = if p > self.procs_per_socket_hint {
            AllgatherAlgo::RingNeighbor { j: 1 }
        } else {
            AllgatherAlgo::RingSourceRead
        };
        let mut best = (predict::allgather_ring(&self.params, p, eta), ring_algo);
        if p.is_power_of_two() {
            let rd = predict::allgather_recursive_doubling(&self.params, p, eta);
            if rd < best.0 {
                best = (rd, AllgatherAlgo::RecursiveDoubling);
            }
        }
        let bruck = predict::allgather_bruck(&self.params, p, eta);
        if bruck < best.0 {
            best = (bruck, AllgatherAlgo::Bruck);
        }
        best.1
    }

    /// Best Broadcast algorithm for (p, η).
    pub fn bcast(&self, p: usize, eta: usize) -> BcastAlgo {
        let mut best = (
            predict::bcast_direct_read(&self.params, p, eta),
            BcastAlgo::DirectRead,
        );
        let dw = predict::bcast_direct_write(&self.params, p, eta);
        if dw < best.0 {
            best = (dw, BcastAlgo::DirectWrite);
        }
        for k in self.throttle_candidates(p) {
            let radix = k + 1; // k concurrent readers per source
            let t = predict::bcast_knomial(&self.params, p, eta, radix);
            if t < best.0 {
                best = (t, BcastAlgo::KNomial { radix });
            }
        }
        let sag = predict::bcast_scatter_allgather(&self.params, p, eta);
        if sag < best.0 {
            best = (sag, BcastAlgo::ScatterAllgather);
        }
        best.1
    }

    /// Best Reduce algorithm for (p, η) — the §IX extension. The
    /// combining tree parallelizes both the reads and the fold
    /// arithmetic; the tuner picks its radix.
    pub fn reduce(&self, p: usize, eta: usize) -> ReduceAlgo {
        let mut best = (
            predict::reduce_sequential(&self.params, p, eta),
            ReduceAlgo::SequentialRead,
        );
        for radix in [2usize, 4, 8] {
            if radix > p.max(2) {
                continue;
            }
            let t = predict::reduce_knomial_tree(&self.params, p, eta, radix);
            if t < best.0 {
                best = (t, ReduceAlgo::KNomialTree { radix });
            }
        }
        best.1
    }

    /// Model cost (ns) of a compiled [`Schedule`], by walking its IR.
    ///
    /// `contention` is the number of peers concurrently hammering the
    /// same source buffer's page-table lock during the schedule's CMA
    /// phase — the `c` of the §II γ_c factor. It is a property of the
    /// *global* communication pattern, which a single rank's schedule
    /// cannot see, so the caller supplies it exactly as the closed forms
    /// in `kacc_model::predict` do (e.g. `p−1` for parallel reads of one
    /// root, `k` for a throttled chain, `1` for contention-free rings).
    ///
    /// The walk prices what this rank spends inside each primitive;
    /// buffered sends are free, blocking receives cost a small-message
    /// hop, and data movement uses the α/β/l/γ transfer model. Unlike
    /// the closed forms it needs no per-algorithm derivation — any
    /// schedule the compiler can express can be priced.
    pub fn cost_schedule(&self, sched: &Schedule, contention: usize) -> f64 {
        let steps = sched.steps.iter().map(|s| lower_step(s, contention));
        kacc_model::schedule_cost(&self.params, steps)
    }

    /// Should Bcast fall back to a two-copy shared-memory tree instead
    /// of CMA? Small messages dodge the syscall + page-pin overheads by
    /// staying in shared memory; large messages want the single-copy
    /// path (§VII-F, Fig 18). This analytic heuristic compares the best
    /// CMA prediction against an unpipelined binomial shm tree; the
    /// quantitative crossover for a concrete machine comes from the
    /// simulator-backed Fig 18 experiment, not from here.
    pub fn bcast_prefers_shm(&self, p: usize, eta: usize) -> bool {
        let best_cma = [
            predict::bcast_direct_read(&self.params, p, eta),
            predict::bcast_direct_write(&self.params, p, eta),
            predict::bcast_knomial(&self.params, p, eta, 5),
            predict::bcast_scatter_allgather(&self.params, p, eta),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        // Binomial shm tree: each level forwards through a shared bounce
        // buffer (copy-in + copy-out); about half the ranks copy
        // concurrently in the widest level, sharing memory bandwidth.
        let shm = ceil_log2(p) as f64
            * (self.params.sm_msg_ns + 2.0 * self.params.t_memcpy_shared(eta, p.div_ceil(2)));
        shm < best_cma
    }
}

/// Lower one IR step into the model's cost vocabulary.
fn lower_step(step: &Step, contention: usize) -> CostStep {
    match step {
        Step::Expose { .. } => CostStep::Expose,
        Step::CmaRead { len, .. } => CostStep::CmaRead {
            bytes: *len,
            contention,
        },
        Step::CmaWrite { len, .. } => CostStep::CmaWrite {
            bytes: *len,
            contention,
        },
        Step::CopyLocal { len, .. } => CostStep::Memcpy { bytes: *len },
        Step::CtrlSend { payload, .. } => CostStep::CtrlSend {
            bytes: payload_wire_len(payload),
        },
        Step::CtrlRecv { into, .. } => CostStep::CtrlRecv {
            bytes: recv_wire_len(into),
        },
        Step::Notify { .. } => CostStep::Notify,
        Step::WaitNotify { .. } => CostStep::WaitNotify,
        Step::ShmSend { len, .. } => CostStep::ShmSend { bytes: *len },
        Step::ShmRecv { len, .. } => CostStep::ShmRecv { bytes: *len },
        Step::Reduce { len, .. } => CostStep::Reduce { bytes: *len },
    }
}

/// Wire bytes a compiled payload will occupy (tokens are 16 bytes;
/// pack entries add an 8-byte header each).
fn payload_wire_len(p: &Payload) -> usize {
    match p {
        Payload::Bytes(b) => b.len(),
        Payload::Token(_) => kacc_comm::RemoteToken::WIRE_LEN,
        Payload::Pack(entries) => entries
            .iter()
            .map(|(_, reg)| 8 + reg.map_or(0, |_| kacc_comm::RemoteToken::WIRE_LEN))
            .sum(),
    }
}

/// Wire bytes a compiled receive expects.
fn recv_wire_len(into: &RecvInto) -> usize {
    match into {
        RecvInto::Discard => 0,
        RecvInto::Verify(b) => b.len(),
        RecvInto::Token(_) => kacc_comm::RemoteToken::WIRE_LEN,
        RecvInto::Pack(entries) => entries
            .iter()
            .map(|(_, reg)| 8 + reg.map_or(0, |_| kacc_comm::RemoteToken::WIRE_LEN))
            .sum(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn knl_scatter_prefers_throttled_for_large_messages() {
        let t = Tuner::new(&ArchProfile::knl());
        // Fig 7(a): throttle factors 4/8 best for medium-large messages.
        match t.scatter(64, 1 << 20) {
            ScatterAlgo::ThrottledRead { k } => {
                assert!((2..=16).contains(&k), "k = {k}");
            }
            other => panic!("expected throttled read, got {other:?}"),
        }
    }

    #[test]
    fn power8_scatter_prefers_wide_throttle() {
        // Fig 7(c): high-bandwidth Power8 favours larger concurrency
        // (the per-socket width dodges inter-socket locking).
        let t = Tuner::new(&ArchProfile::power8());
        match t.scatter(160, 1 << 20) {
            ScatterAlgo::ThrottledRead { k } => {
                assert!(k >= 8, "Power8 wants wide throttle, got {k}");
            }
            other => panic!("expected throttled read, got {other:?}"),
        }
    }

    #[test]
    fn gather_mirrors_scatter() {
        let t = Tuner::new(&ArchProfile::knl());
        let s = t.scatter(64, 1 << 18);
        let g = t.gather(64, 1 << 18);
        match (s, g) {
            (ScatterAlgo::ThrottledRead { k: a }, GatherAlgo::ThrottledWrite { k: b }) => {
                assert_eq!(a, b)
            }
            (ScatterAlgo::ParallelRead, GatherAlgo::ParallelWrite) => {}
            (ScatterAlgo::SequentialWrite, GatherAlgo::SequentialRead) => {}
            (s, g) => panic!("mismatched mirror: {s:?} vs {g:?}"),
        }
    }

    #[test]
    fn alltoall_pairwise_for_large_bruck_for_tiny() {
        let t = Tuner::new(&ArchProfile::knl());
        assert_eq!(t.alltoall(64, 1 << 20), AlltoallAlgo::Pairwise);
        // Bruck can win only for very small blocks, if at all; accept
        // either but require pairwise for anything ≥ 16 KiB (Fig 9).
        assert_eq!(t.alltoall(64, 1 << 14), AlltoallAlgo::Pairwise);
    }

    #[test]
    fn bcast_crossover_small_knomial_large_scatter_allgather() {
        // Fig 11(a): k-nomial wins small/medium, scatter-allgather wins
        // very large.
        let t = Tuner::new(&ArchProfile::knl());
        assert!(matches!(t.bcast(64, 16 << 10), BcastAlgo::KNomial { .. }));
        assert_eq!(t.bcast(64, 4 << 20), BcastAlgo::ScatterAllgather);
    }

    #[test]
    fn broadwell_bcast_shm_crossover_is_monotone() {
        // Fig 18(a) qualitative shape: shm wins tiny messages, CMA wins
        // large ones, and the preference flips exactly once.
        let t = Tuner::new(&ArchProfile::broadwell());
        assert!(t.bcast_prefers_shm(28, 512));
        assert!(!t.bcast_prefers_shm(28, 8 << 20));
        let mut flipped = false;
        let mut prev = true;
        for sh in 9..24 {
            let now = t.bcast_prefers_shm(28, 1usize << sh);
            if prev && !now {
                flipped = true;
            }
            assert!(!now || prev, "preference flipped back to shm at 2^{sh}");
            prev = now;
        }
        assert!(flipped, "no crossover found");
    }

    #[test]
    fn allgather_selection_matches_model_regime() {
        // Under the paper's bandwidth-unaware model, small messages want
        // log p startups (Bruck / recursive doubling).
        let arch = ArchProfile::knl();
        let mut params = arch.nominal_model();
        params.node_bw_ns_per_byte = 0.0;
        let paper = Tuner::with_params(params, arch.cores_per_socket);
        let small = paper.allgather(64, 1 << 10);
        assert!(
            matches!(
                small,
                AllgatherAlgo::Bruck | AllgatherAlgo::RecursiveDoubling
            ),
            "paper model: small messages want log p startups, got {small:?}"
        );
        // With the aggregate-bandwidth extension (matching the
        // simulator), large messages avoid Bruck's extra copies.
        let t = Tuner::new(&arch);
        let large = t.allgather(64, 1 << 20);
        assert!(
            matches!(
                large,
                AllgatherAlgo::RingSourceRead | AllgatherAlgo::RecursiveDoubling
            ),
            "large messages avoid Bruck's copies, got {large:?}"
        );
    }

    #[test]
    fn reduce_prefers_combining_tree_at_scale() {
        let t = Tuner::new(&ArchProfile::knl());
        assert!(
            matches!(t.reduce(64, 1 << 20), ReduceAlgo::KNomialTree { .. }),
            "large reductions want parallel combining"
        );
        // Two ranks: the tree degenerates; either choice is fine but the
        // prediction must not panic.
        let _ = t.reduce(2, 1 << 10);
    }

    #[test]
    fn cost_schedule_eta_difference_matches_transfer_model() {
        // Two compiled non-root parallel-read scatter plans that differ
        // only in η must differ in cost by exactly the CMA transfer
        // term: every other step (token bcast, completion gather) is
        // identical, so the IR walk and the §II model must agree on the
        // delta.
        let t = Tuner::new(&ArchProfile::knl());
        let p = 16;
        let rank = 5;
        let (eta_a, eta_b) = (1usize << 20, 1usize << 14);
        let layout =
            |eta: usize| -> Vec<(usize, usize)> { (0..p).map(|r| (r * eta, eta)).collect() };
        let plan_a = crate::schedule::compile_scatter(
            ScatterAlgo::ParallelRead,
            p,
            rank,
            &layout(eta_a),
            0,
            true,
        );
        let plan_b = crate::schedule::compile_scatter(
            ScatterAlgo::ParallelRead,
            p,
            rank,
            &layout(eta_b),
            0,
            true,
        );
        let c = p - 1;
        let delta = t.cost_schedule(&plan_a, c) - t.cost_schedule(&plan_b, c);
        let model_delta = t.params().t_cma(eta_a, c) - t.params().t_cma(eta_b, c);
        assert!(
            (delta - model_delta).abs() < 1e-6,
            "IR delta {delta} != model delta {model_delta}"
        );
    }

    #[test]
    fn cost_schedule_ordering_agrees_with_closed_forms() {
        // For large messages the per-rank IR walk must rank parallel
        // read vs sequential write the same way the closed-form
        // predictions do (both are dominated by the same CMA terms).
        let t = Tuner::new(&ArchProfile::knl());
        let p = 64;
        let eta = 1usize << 20;
        let layout: Vec<(usize, usize)> = (0..p).map(|r| (r * eta, eta)).collect();
        // Parallel read: cost borne by a contended non-root reader.
        let par =
            crate::schedule::compile_scatter(ScatterAlgo::ParallelRead, p, 1, &layout, 0, true);
        // Sequential write: cost borne by the uncontended root engine.
        let seq =
            crate::schedule::compile_scatter(ScatterAlgo::SequentialWrite, p, 0, &layout, 0, true);
        let ir_prefers_seq = t.cost_schedule(&seq, 1) < t.cost_schedule(&par, p - 1);
        let model_prefers_seq = predict::scatter_sequential_write(t.params(), p, eta, false)
            < predict::scatter_parallel_read(t.params(), p, eta);
        assert_eq!(ir_prefers_seq, model_prefers_seq);
    }

    #[test]
    fn throttle_candidates_include_socket_width() {
        let t = Tuner::new(&ArchProfile::broadwell());
        assert!(t.throttle_candidates(28).contains(&14));
        let t = Tuner::new(&ArchProfile::power8());
        assert!(t.throttle_candidates(160).contains(&10));
    }
}
