#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Contention-aware kernel-assisted collective algorithms — the paper's
//! core contribution (§III–V).
//!
//! All algorithms are *native* CMA collectives: processes exchange buffer
//! tokens once over the small-message shared-memory plane and then move
//! bulk data with single-copy kernel-assisted reads/writes, avoiding the
//! per-message RTS/CTS control traffic a point-to-point design pays
//! (§III). Contention on the source process's page-table lock is managed
//! explicitly:
//!
//! * **Scatter** (§IV-A): [`scatter`](fn@scatter) with parallel reads, sequential
//!   writes, or *throttled reads* — at most `k` concurrent readers,
//!   chained by point-to-point unblock messages rather than barriers;
//! * **Gather** (§IV-B): [`gather`](fn@gather) with the mirrored write-based
//!   algorithms;
//! * **Alltoall** (§IV-C): [`alltoall`](fn@alltoall) with the contention-free pairwise
//!   exchange and Bruck's algorithm;
//! * **Allgather** (§V-A): [`allgather`](fn@allgather) with ring-neighbor-j,
//!   ring-source read/write, recursive doubling, and Bruck;
//! * **Broadcast** (§V-B): [`bcast`](fn@bcast) with direct read/write, k-nomial
//!   trees (bounded reader concurrency), and Van de Geijn
//!   scatter-allgather;
//! * **Tuning** ([`tuner::Tuner`]): model-driven algorithm selection per
//!   (architecture, process count, message size), the moral equivalent of
//!   the MVAPICH2 tuning framework the paper plugs into;
//! * **Hierarchical** ([`hierarchical`]): two-level designs whose
//!   intra-node phase uses the contention-aware algorithms (§VII-G).
//!
//! Algorithms are generic over [`kacc_comm::Comm`], so the identical code
//! runs on the deterministic machine simulator, the in-process thread
//! transport, and the real `process_vm_readv` transport.

pub mod allgather;
pub mod alltoall;
pub mod bcast;
pub mod exec;
pub mod gather;
pub mod hierarchical;
pub mod membership;
pub mod polled;
pub mod reduce;
pub mod scatter;
pub mod schedule;
pub mod tuner;
pub mod verify;

pub use allgather::{allgather, allgather_with_report, AllgatherAlgo};
pub use alltoall::{alltoall, alltoall_with_report, AlltoallAlgo};
pub use bcast::{bcast, bcast_with_report, BcastAlgo};
pub use gather::{gather, gatherv, gatherv_with_report, GatherAlgo};
pub use reduce::{
    allreduce, reduce, reduce_scatter_block, reduce_with_report, AllreduceAlgo, Dtype, ReduceAlgo,
    ReduceOp,
};

pub(crate) use allgather::allgather_ranges;
pub use exec::{
    execute, execute_traced, execute_with_policy, Bindings, MembershipPolicy, RecoveryPolicy,
    RecoveryReport, ScheduleReport, StepStats,
};
pub use membership::{
    run_survivable, run_survivable_polled, MembershipReport, SurvivableOp, SurvivableOutcome,
};
pub use polled::{
    allgather_polled, alltoall_polled, bcast_polled, execute_polled, execute_polled_traced,
    execute_polled_with_policy, gatherv_polled, reduce_polled, scatter_polled, scatterv_polled,
};
pub use scatter::{scatter, scatterv, scatterv_with_report, ScatterAlgo};
pub use schedule::{compile_agree, remap_for_members, PlanCache, PlanKey, Schedule, Step};
pub use tuner::Tuner;

/// Tag classes used by the collective protocols (disjoint from
/// `kacc_comm::smcoll::class`). Re-exported from the central
/// `kacc_comm::tagclass` registry, which owns the uniqueness audit.
pub(crate) mod class {
    pub const SCATTER: u32 = kacc_comm::tagclass::SCATTER;
    pub const GATHER: u32 = kacc_comm::tagclass::GATHER;
    pub const ALLTOALL: u32 = kacc_comm::tagclass::ALLTOALL;
    pub const ALLGATHER: u32 = kacc_comm::tagclass::ALLGATHER;
    pub const BCAST: u32 = kacc_comm::tagclass::BCAST;
    pub const HIER: u32 = kacc_comm::tagclass::HIER;
    pub const REDUCE: u32 = kacc_comm::tagclass::REDUCE;
    pub const MEMBERSHIP: u32 = kacc_comm::tagclass::MEMBERSHIP;
}

/// Map a rank to its virtual rank with `root` at 0.
pub(crate) fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

/// Inverse of [`vrank`].
pub(crate) fn unvrank(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn vrank_roundtrip() {
        for p in 1..12 {
            for root in 0..p {
                for r in 0..p {
                    assert_eq!(unvrank(vrank(r, root, p), root, p), r);
                    assert_eq!(vrank(root, root, p), 0);
                }
            }
        }
    }
}
