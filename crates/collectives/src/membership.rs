//! Survivable collectives: deterministic failure detection, agreement,
//! and shrink-and-re-execute recovery (ULFM-inspired membership layer).
//!
//! [`run_survivable`] wraps any of the six bulk collectives in a
//! membership loop:
//!
//! 1. **Detect** — the data plan executes with the liveness watchdog
//!    armed ([`MembershipPolicy`]), so a silent peer death surfaces as
//!    the typed [`CommError::PeerDead`] instead of a hang.
//! 2. **Agree** — all members of the current epoch run a fixed
//!    two-round agreement collective ([`crate::schedule::compile_agree`])
//!    that unions everyone's suspected-dead masks; the rounds execute
//!    under a *tolerant* watchdog with generous deadlines, so the
//!    agreement itself completes over the survivors no matter who died.
//!    Two refinements keep it honest: a member that responds within a
//!    round is *refuted* from the mask (a rank that abandoned its data
//!    plan behind a dead peer looks dead to its own waiters, but it is
//!    not — this stops timeout cascades from exiling live ranks), and a
//!    failed data plan raises a [`REDO`] flag above the rank bits so the
//!    whole membership re-executes together even when the suspicion
//!    that caused the failure was refuted.
//! 3. **Shrink and re-execute** — survivors advance the membership
//!    epoch, recompile the collective for the survivor subgroup
//!    (remapped onto parent ranks and re-tagged into the epoch's
//!    namespace by [`crate::schedule::remap_for_members`]), invalidate
//!    stale-epoch plans from the [`PlanCache`], back off briefly, and
//!    re-execute. Survivor `i` of the sorted member list contributes
//!    and receives block `i`, so parent-sized buffers always suffice.
//!
//! Everything is deterministic under simulation: the same seed produces
//! the same suspicions, the same agreed masks, the same shrink sequence,
//! and bitwise-identical reports on both engines. A fault-free run
//! executes exactly one data plan plus one (clean) agreement and reports
//! an empty [`RecoveryReport`](crate::RecoveryReport).
//!
//! The membership protocol never blocks forever: every wait is bounded
//! by the watchdog, disagreement only ever causes further shrinks, and
//! the loop is capped by [`MembershipPolicy::max_shrinks`] and the
//! quorum rule (survivors must outnumber half the parent communicator).

use std::sync::{Arc, OnceLock};

use kacc_comm::{BufId, Comm, CommError, Result};
use kacc_machine::PolledComm;
use kacc_trace::{Tracer, Track};

use crate::exec::{
    execute_with_policy, proto, Bindings, MembershipPolicy, RecoveryPolicy, ScheduleReport,
};
use crate::polled::execute_polled_with_policy;
use crate::schedule::{
    compile_agree, compile_allgather, compile_alltoall, compile_bcast, compile_gather,
    compile_reduce, compile_scatter, remap_for_members, PlanCache, PlanKey, Schedule,
};
use crate::{
    class, AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype, GatherAlgo, ReduceAlgo, ReduceOp,
    ScatterAlgo,
};

/// One survivable collective operation: the algorithm plus the shape
/// parameters that stay fixed across shrinks (counts are per-member, so
/// a shrunken execution simply uses fewer blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurvivableOp {
    /// Scatter `count` bytes from `root` to every survivor.
    Scatter {
        /// Algorithm variant.
        algo: ScatterAlgo,
        /// Bytes per member.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Gather `count` bytes from every survivor at `root`.
    Gather {
        /// Algorithm variant.
        algo: GatherAlgo,
        /// Bytes per member.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Broadcast `count` bytes from `root` to every survivor.
    Bcast {
        /// Algorithm variant.
        algo: BcastAlgo,
        /// Message bytes.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Allgather `count` bytes per survivor.
    Allgather {
        /// Algorithm variant.
        algo: AllgatherAlgo,
        /// Bytes per member.
        count: usize,
    },
    /// Alltoall `count` bytes per survivor pair.
    Alltoall {
        /// Algorithm variant.
        algo: AlltoallAlgo,
        /// Bytes per member pair.
        count: usize,
    },
    /// Reduce every survivor's `count`-byte contribution at `root`.
    Reduce {
        /// Algorithm variant.
        algo: ReduceAlgo,
        /// Contribution bytes.
        count: usize,
        /// Element type.
        dtype: Dtype,
        /// Combining operator.
        op: ReduceOp,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
}

impl SurvivableOp {
    /// The root rank in parent numbering, for rooted shapes.
    pub fn root(&self) -> Option<usize> {
        match *self {
            SurvivableOp::Scatter { root, .. }
            | SurvivableOp::Gather { root, .. }
            | SurvivableOp::Bcast { root, .. }
            | SurvivableOp::Reduce { root, .. } => Some(root),
            SurvivableOp::Allgather { .. } | SurvivableOp::Alltoall { .. } => None,
        }
    }

    /// The per-member byte count.
    pub fn count(&self) -> usize {
        match *self {
            SurvivableOp::Scatter { count, .. }
            | SurvivableOp::Gather { count, .. }
            | SurvivableOp::Bcast { count, .. }
            | SurvivableOp::Allgather { count, .. }
            | SurvivableOp::Alltoall { count, .. }
            | SurvivableOp::Reduce { count, .. } => count,
        }
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            SurvivableOp::Scatter { .. } => "scatter",
            SurvivableOp::Gather { .. } => "gather",
            SurvivableOp::Bcast { .. } => "bcast",
            SurvivableOp::Allgather { .. } => "allgather",
            SurvivableOp::Alltoall { .. } => "alltoall",
            SurvivableOp::Reduce { .. } => "reduce",
        }
    }
}

/// What the membership loop did during one survivable call. All-zero on
/// a fault-free run (one clean execution, one clean agreement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// Final membership epoch (= number of shrinks taken).
    pub epochs: u32,
    /// Agreement collectives executed.
    pub agreements: u32,
    /// Data-plan re-executions after a shrink.
    pub reexecs: u32,
    /// Bitmask of parent ranks agreed dead (bit `rank`).
    pub dead_mask: u64,
}

impl MembershipReport {
    /// True when no failure was detected anywhere: no shrink, no
    /// re-execution, nobody dead.
    pub fn is_clean(&self) -> bool {
        // One agreement always runs (the epilogue rendezvous), so it
        // does not count against cleanliness.
        self.epochs == 0 && self.reexecs == 0 && self.dead_mask == 0
    }
}

/// Result of a survivable collective on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurvivableOutcome {
    /// Report of the final (successful) data-plan execution.
    pub report: ScheduleReport,
    /// What the membership loop did to get there.
    pub membership: MembershipReport,
    /// The sorted surviving parent ranks the result is defined over.
    pub members: Vec<usize>,
}

/// Pre-resolved `kacc-metrics` handles for the membership driver.
struct MemberHandles {
    agreements: kacc_metrics::Counter,
    shrinks: kacc_metrics::Counter,
    reexecs: kacc_metrics::Counter,
}

fn member_handles() -> &'static MemberHandles {
    static HANDLES: OnceLock<MemberHandles> = OnceLock::new();
    HANDLES.get_or_init(|| MemberHandles {
        agreements: kacc_metrics::counter("coll.membership.agreements"),
        shrinks: kacc_metrics::counter("coll.membership.shrinks"),
        reexecs: kacc_metrics::counter("coll.membership.reexecs"),
    })
}

/// Flag bit carried in the agreement mask (alongside the per-rank dead
/// bits): some member's data-plan execution failed, so every member
/// must re-execute even if the membership itself did not change. Rank
/// bits occupy 0..=62, which is why survivable collectives cap the
/// communicator at 63 ranks.
const REDO: u64 = 1 << 63;

/// The rank-bits portion of an agreement mask.
const RANKS: u64 = REDO - 1;

/// The sorted list of parent ranks not marked dead.
fn survivor_list(dead: u64, p: usize) -> Vec<usize> {
    (0..p).filter(|&r| dead & (1 << r) == 0).collect()
}

/// Up-front validation shared by both engines: communicator bounds,
/// per-op buffer requirements, and algorithm parameters the compile
/// functions assume were already checked.
fn validate(
    op: &SurvivableOp,
    p: usize,
    me: usize,
    send: Option<BufId>,
    recv: Option<BufId>,
) -> Result<()> {
    if p < 2 {
        return Err(proto(
            "survivable collectives require at least 2 ranks".into(),
        ));
    }
    if p > 63 {
        return Err(proto(format!(
            "survivable collectives support at most 63 ranks, got {p}"
        )));
    }
    if op.count() == 0 {
        return Err(proto(
            "survivable collectives require a nonzero count".into(),
        ));
    }
    if let Some(root) = op.root() {
        if root >= p {
            return Err(CommError::BadRank(root));
        }
    }
    let need = |cond: bool, msg: &str| {
        if cond {
            Ok(())
        } else {
            Err(proto(msg.into()))
        }
    };
    match *op {
        SurvivableOp::Scatter { algo, root, .. } => {
            if let ScatterAlgo::ThrottledRead { k } = algo {
                need(k >= 1, "throttle factor must be ≥ 1")?;
            }
            if me == root {
                need(send.is_some(), "root scatter needs sendbuf")?;
            } else {
                need(recv.is_some(), "non-root scatter needs recvbuf")?;
            }
        }
        SurvivableOp::Gather { algo, root, .. } => {
            if let GatherAlgo::ThrottledWrite { k } = algo {
                need(k >= 1, "throttle factor must be ≥ 1")?;
            }
            if me == root {
                need(recv.is_some(), "root gather needs recvbuf")?;
            } else {
                need(send.is_some(), "non-root gather needs sendbuf")?;
            }
        }
        SurvivableOp::Bcast { algo, .. } => {
            if let BcastAlgo::KNomial { radix } = algo {
                need(radix >= 2, "k-nomial radix must be ≥ 2")?;
            }
            need(send.is_some(), "bcast binds its data buffer as send")?;
        }
        SurvivableOp::Allgather { .. } => {
            need(recv.is_some(), "allgather needs recvbuf")?;
        }
        SurvivableOp::Alltoall { .. } => {
            need(
                send.is_some() && recv.is_some(),
                "survivable alltoall needs distinct send and recv buffers",
            )?;
        }
        SurvivableOp::Reduce {
            algo,
            root,
            count,
            dtype,
            ..
        } => {
            if let ReduceAlgo::KNomialTree { radix } = algo {
                need(radix >= 2, "tree radix must be ≥ 2")?;
            }
            if !count.is_multiple_of(dtype.width()) {
                return Err(proto(format!(
                    "count {count} is not a multiple of the {dtype:?} width"
                )));
            }
            need(send.is_some(), "reduce needs sendbuf")?;
            if me == root {
                need(recv.is_some(), "root reduce needs recvbuf")?;
            }
        }
    }
    Ok(())
}

/// Fetch (or compile) the plan for the current membership epoch.
///
/// Epoch 0 runs over the full communicator and uses exactly the same
/// [`PlanKey`] shapes as the plain entry points, so fault-free
/// survivable calls share cached plans with them. Later epochs compile
/// for the survivor subgroup (`p' = |members|`, `rank' = my position`,
/// `root' = root's position`) and remap onto parent ranks under a
/// [`PlanKey::Member`] key whose embedded epoch makes stale-membership
/// plans unreachable after the next shrink.
fn member_plan(
    op: &SurvivableOp,
    p: usize,
    me: usize,
    members: &[usize],
    epoch: u32,
    has_send: bool,
    has_recv: bool,
) -> Result<Arc<Schedule>> {
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&m| m == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let root_idx = match op.root() {
        Some(r) => members
            .iter()
            .position(|&m| m == r)
            .ok_or(CommError::PeerDead(r))?,
        None => 0,
    };
    let inner = match *op {
        SurvivableOp::Scatter { algo, count, .. } => PlanKey::Scatter {
            algo,
            p: l,
            rank: my_idx,
            counts: vec![count; l],
            displs: None,
            root: root_idx,
            has_recvbuf: has_recv,
        },
        SurvivableOp::Gather { algo, count, .. } => PlanKey::Gather {
            algo,
            p: l,
            rank: my_idx,
            counts: vec![count; l],
            displs: None,
            root: root_idx,
            has_sendbuf: has_send,
        },
        SurvivableOp::Bcast { algo, count, .. } => PlanKey::Bcast {
            algo,
            p: l,
            rank: my_idx,
            count,
            root: root_idx,
        },
        SurvivableOp::Allgather { algo, count } => {
            let algo = match algo {
                AllgatherAlgo::RingNeighbor { j } => {
                    if crate::allgather::gcd(j % l, l) != 1 {
                        return Err(proto(format!(
                            "ring-neighbor stride {j} shares a factor with the {l} survivors"
                        )));
                    }
                    AllgatherAlgo::RingNeighbor { j: j % l }
                }
                other => other,
            };
            PlanKey::Allgather {
                algo,
                p: l,
                rank: my_idx,
                count,
                has_sendbuf: has_send,
            }
        }
        SurvivableOp::Alltoall { algo, count } => PlanKey::Alltoall {
            algo,
            p: l,
            rank: my_idx,
            count,
        },
        SurvivableOp::Reduce {
            algo,
            count,
            dtype,
            op,
            ..
        } => PlanKey::Reduce {
            algo,
            p: l,
            rank: my_idx,
            count,
            dtype,
            op,
            root: root_idx,
        },
    };
    let inner_for_compile = inner.clone();
    let compile = move || match inner_for_compile {
        PlanKey::Scatter {
            algo,
            p,
            rank,
            ref counts,
            root,
            has_recvbuf,
            ..
        } => {
            let layout: Vec<(usize, usize)> = counts
                .iter()
                .scan(0, |off, &c| {
                    let entry = (*off, c);
                    *off += c;
                    Some(entry)
                })
                .collect();
            compile_scatter(algo, p, rank, &layout, root, has_recvbuf)
        }
        PlanKey::Gather {
            algo,
            p,
            rank,
            ref counts,
            root,
            has_sendbuf,
            ..
        } => {
            let layout: Vec<(usize, usize)> = counts
                .iter()
                .scan(0, |off, &c| {
                    let entry = (*off, c);
                    *off += c;
                    Some(entry)
                })
                .collect();
            compile_gather(algo, p, rank, &layout, root, has_sendbuf)
        }
        PlanKey::Bcast {
            algo,
            p,
            rank,
            count,
            root,
        } => compile_bcast(algo, p, rank, count, root),
        PlanKey::Allgather {
            algo,
            p,
            rank,
            count,
            has_sendbuf,
        } => compile_allgather(algo, p, rank, count, has_sendbuf),
        PlanKey::Alltoall {
            algo,
            p,
            rank,
            count,
        } => compile_alltoall(algo, p, rank, count),
        PlanKey::Reduce {
            algo,
            p,
            rank,
            count,
            dtype,
            op,
            root,
        } => compile_reduce(algo, p, rank, count, dtype, op, root),
        PlanKey::Member { .. } => unreachable!("inner keys are never Member"),
    };

    Ok(if epoch == 0 {
        PlanCache::global().get_or_compile(inner, compile)
    } else {
        let members_vec = members.to_vec();
        PlanCache::global().get_or_compile(
            PlanKey::Member {
                epoch,
                members: members.to_vec(),
                inner: Box::new(inner),
            },
            move || remap_for_members(&compile(), &members_vec, epoch, p),
        )
    })
}

/// The bindings every epoch's execution uses (fixed across shrinks).
fn bindings_for(op: &SurvivableOp, send: Option<BufId>, recv: Option<BufId>) -> Bindings {
    match op {
        // Bcast binds its single data buffer as the send slot.
        SurvivableOp::Bcast { .. } => Bindings { send, recv: None },
        _ => Bindings { send, recv },
    }
}

/// The effective membership parameters: the caller's, with the watchdog
/// forced on and zeroed fields replaced by the survivable defaults.
fn effective_membership(policy: &RecoveryPolicy) -> MembershipPolicy {
    let defaults = MembershipPolicy::survivable();
    let mut m = if policy.membership.watch {
        policy.membership
    } else {
        defaults
    };
    if m.liveness_timeout_ns == 0 {
        m.liveness_timeout_ns = defaults.liveness_timeout_ns;
    }
    if m.max_shrinks == 0 {
        m.max_shrinks = defaults.max_shrinks;
    }
    m.watch = true;
    m
}

/// The tolerant policy one agreement round runs under: no retries, no
/// fallback, every wait bounded by `timeout`, and failing steps skipped
/// after recording the suspicion.
fn agree_policy(m: &MembershipPolicy, timeout: u64) -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 0,
        backoff_ns: 0,
        cma_fallback: false,
        step_timeout_ns: Some(timeout),
        membership: MembershipPolicy {
            watch: true,
            tolerant: true,
            ..*m
        },
    }
}

/// Per-round agreement timeout: round 0 must cover a member still
/// finishing (or timing out of) its data plan — a dead-peer wait there
/// costs `(1 + max_retries)` liveness timeouts per step, and a timeout
/// chain can run the length of the plan — while round 1 additionally
/// covers a member still draining its round-0 receives (up to `l`
/// waits of the round-0 deadline each).
fn agree_timeout(m: &MembershipPolicy, retries: u32, p: usize, l: usize, round: u32) -> u64 {
    let base = m.liveness_timeout_ns * u64::from(retries + 1) * (2 * p as u64 + 4);
    if round == 0 {
        base
    } else {
        base * (l as u64 + 1)
    }
}

/// Fold one agreement round's results into the suspected mask.
///
/// Members whose mask never arrived within the round's deadline are
/// suspected; members who responded have their masks unioned in and are
/// then *refuted* — a responsive member is alive by construction, so
/// any suspicion of it (including one we carried in) is dropped. This
/// is what stops timeout cascades from exiling live ranks: a rank that
/// abandoned its data plan because a *dead* peer timed out looks dead
/// to its own waiters, but it shows up here and is cleared. The
/// genuinely dead never deposit, so true suspicions always survive.
/// The [`REDO`] flag is above the rank bits and is never refuted.
fn fold_round(cur: u64, members: &[usize], me: usize, suspect_mask: u64, recv_bytes: &[u8]) -> u64 {
    let mut union = cur;
    let mut responders = 1u64 << me;
    for (i, &m) in members.iter().enumerate() {
        if m == me {
            continue;
        }
        if suspect_mask & (1u64 << (m & 63)) != 0 {
            union |= 1u64 << m;
        } else {
            let mut word = [0u8; 8];
            word.copy_from_slice(&recv_bytes[8 * i..8 * i + 8]);
            union |= u64::from_le_bytes(word);
            responders |= 1u64 << m;
        }
    }
    union & !responders
}

/// Two-round suspected-dead agreement over `members` (threads engine).
/// Returns the union of every responsive member's suspicions plus the
/// members that failed to respond. Never blocks forever: every receive
/// is bounded and failures are tolerated.
fn agree<C: Comm + ?Sized>(
    comm: &mut C,
    members: &[usize],
    epoch: u32,
    suspected: u64,
    m: &MembershipPolicy,
    retries: u32,
    tracer: &Tracer,
) -> Result<u64> {
    let p = comm.size();
    let me = comm.rank();
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&x| x == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let send = comm.alloc(8);
    let recv = comm.alloc(8 * l);
    let mut cur = suspected;
    let mut out: Result<u64> = Ok(0);
    for round in 0..2u32 {
        let step = (|| {
            comm.write_local(send, 0, &cur.to_le_bytes())?;
            comm.write_local(recv, 0, &vec![0u8; 8 * l])?;
            comm.write_local(recv, 8 * my_idx, &cur.to_le_bytes())?;
            let plan = compile_agree(p, me, members, epoch, round);
            let pol = agree_policy(m, agree_timeout(m, retries, p, l, round));
            let report = execute_with_policy(
                comm,
                &plan,
                &Bindings {
                    send: Some(send),
                    recv: Some(recv),
                },
                tracer,
                &pol,
            )?;
            let mut bytes = vec![0u8; 8 * l];
            comm.read_local(recv, 0, &mut bytes)?;
            Ok(fold_round(
                cur,
                members,
                me,
                report.recovery.suspect_mask,
                &bytes,
            ))
        })();
        match step {
            Ok(next) => {
                cur = next;
                out = Ok(cur);
            }
            Err(e) => {
                out = Err(e);
                break;
            }
        }
    }
    let _ = comm.free(send);
    let _ = comm.free(recv);
    out
}

/// Two-round suspected-dead agreement over `members` — the polled twin
/// of [`agree`].
async fn agree_polled(
    comm: &mut PolledComm,
    members: &[usize],
    epoch: u32,
    suspected: u64,
    m: &MembershipPolicy,
    retries: u32,
    tracer: &Tracer,
) -> Result<u64> {
    let p = comm.size();
    let me = comm.rank();
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&x| x == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let send = comm.alloc(8);
    let recv = comm.alloc(8 * l);
    let mut cur = suspected;
    let mut out: Result<u64> = Ok(0);
    for round in 0..2u32 {
        let step: Result<u64> = {
            let setup = comm
                .write_local(send, 0, &cur.to_le_bytes())
                .and_then(|()| comm.write_local(recv, 0, &vec![0u8; 8 * l]))
                .and_then(|()| comm.write_local(recv, 8 * my_idx, &cur.to_le_bytes()));
            match setup {
                Err(e) => Err(e),
                Ok(()) => {
                    let plan = compile_agree(p, me, members, epoch, round);
                    let pol = agree_policy(m, agree_timeout(m, retries, p, l, round));
                    match execute_polled_with_policy(
                        comm,
                        &plan,
                        &Bindings {
                            send: Some(send),
                            recv: Some(recv),
                        },
                        tracer,
                        &pol,
                    )
                    .await
                    {
                        Err(e) => Err(e),
                        Ok(report) => {
                            let mut bytes = vec![0u8; 8 * l];
                            match comm.read_local(recv, 0, &mut bytes) {
                                Err(e) => Err(e),
                                Ok(()) => Ok(fold_round(
                                    cur,
                                    members,
                                    me,
                                    report.recovery.suspect_mask,
                                    &bytes,
                                )),
                            }
                        }
                    }
                }
            }
        };
        match step {
            Ok(next) => {
                cur = next;
                out = Ok(cur);
            }
            Err(e) => {
                out = Err(e);
                break;
            }
        }
    }
    let _ = comm.free(send);
    let _ = comm.free(recv);
    out
}

/// Run `op` survivably on the threads/blocking engine: detect peer
/// death, agree on the survivors, shrink, and re-execute until the
/// collective completes over a stable membership or a typed error
/// (exile, dead root, quorum loss, shrink budget) surfaces. Never
/// hangs: every wait the loop takes is deadline-bounded.
pub fn run_survivable<C: Comm + ?Sized>(
    comm: &mut C,
    op: &SurvivableOp,
    send: Option<BufId>,
    recv: Option<BufId>,
    policy: &RecoveryPolicy,
) -> Result<SurvivableOutcome> {
    let p = comm.size();
    let me = comm.rank();
    validate(op, p, me, send, recv)?;
    let m = effective_membership(policy);
    let bind = bindings_for(op, send, recv);
    let tracer = comm.tracer();
    let mut dead = 0u64;
    let mut epoch = 0u32;
    let mut mrep = MembershipReport::default();
    loop {
        if dead & (1 << me) != 0 {
            // Exile: the membership agreed *we* are dead (false
            // suspicion). Diverging silently would wedge the others.
            return Err(CommError::PeerDead(me));
        }
        if let Some(r) = op.root() {
            if dead & (1 << r) != 0 {
                return Err(CommError::PeerDead(r));
            }
        }
        let members = survivor_list(dead, p);
        if members.len() * 2 <= p {
            return Err(proto(format!(
                "membership lost quorum: {}/{p} survivors",
                members.len()
            )));
        }
        let plan = member_plan(op, p, me, &members, epoch, send.is_some(), recv.is_some())?;
        let mut pol = *policy;
        pol.membership = MembershipPolicy {
            watch: true,
            tolerant: false,
            ..m
        };
        let exec = execute_with_policy(comm, &plan, &bind, &tracer, &pol);
        let suspected = match &exec {
            Ok(_) => 0u64,
            Err(CommError::PeerDead(q)) => (1u64 << (q & 63)) | REDO,
            Err(e) => return Err(e.clone()),
        };
        // Rendezvous: union everyone's suspicions so all survivors see
        // the same dead set — even ranks whose own execution was clean.
        // A failed execution raises REDO so the whole membership
        // re-executes together even if the suspicion itself is refuted.
        let t0 = comm.time_ns();
        let agreed = agree(
            comm,
            &members,
            epoch,
            dead | suspected,
            &m,
            pol.max_retries,
            &tracer,
        )?;
        mrep.agreements += 1;
        member_handles().agreements.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:agree",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            agreed,
            Some(class::MEMBERSHIP),
        );
        let newly = (agreed & RANKS) & !dead;
        if newly == 0 && agreed & REDO == 0 {
            let report = exec
                .unwrap_or_else(|_| unreachable!("a failed execution always raises the redo flag"));
            mrep.dead_mask = dead;
            return Ok(SurvivableOutcome {
                report,
                membership: mrep,
                members,
            });
        }
        // Shrink: adopt the agreed dead set, advance the epoch (even
        // when only REDO fired — re-execution needs fresh tags), drop
        // stale-membership plans, back off, and go around again.
        dead = agreed & RANKS;
        epoch += 1;
        mrep.epochs = epoch;
        mrep.dead_mask = dead;
        if epoch > m.max_shrinks.min(15) {
            return Err(proto(format!(
                "membership exceeded {} shrinks",
                m.max_shrinks.min(15)
            )));
        }
        member_handles().shrinks.add(1);
        let t0 = comm.time_ns();
        comm.sleep_ns(m.restart_backoff_ns);
        PlanCache::global().invalidate_members_before(epoch);
        tracer.span(
            Track::Rank(me),
            "membership:shrink",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            dead,
            Some(class::MEMBERSHIP),
        );
        mrep.reexecs += 1;
        member_handles().reexecs.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:reexec",
            comm.time_ns(),
            0.0,
            u64::from(epoch),
            Some(class::MEMBERSHIP),
        );
    }
}

/// Run `op` survivably on the polled engine — the twin of
/// [`run_survivable`], transliterated one operation at a time so a
/// polled survivable call is bitwise-identical (same virtual times,
/// same reports, same shrink sequence) to the threads call.
pub async fn run_survivable_polled(
    comm: &mut PolledComm,
    op: &SurvivableOp,
    send: Option<BufId>,
    recv: Option<BufId>,
    policy: &RecoveryPolicy,
) -> Result<SurvivableOutcome> {
    let p = comm.size();
    let me = comm.rank();
    validate(op, p, me, send, recv)?;
    let m = effective_membership(policy);
    let bind = bindings_for(op, send, recv);
    let tracer = comm.tracer();
    let mut dead = 0u64;
    let mut epoch = 0u32;
    let mut mrep = MembershipReport::default();
    loop {
        if dead & (1 << me) != 0 {
            return Err(CommError::PeerDead(me));
        }
        if let Some(r) = op.root() {
            if dead & (1 << r) != 0 {
                return Err(CommError::PeerDead(r));
            }
        }
        let members = survivor_list(dead, p);
        if members.len() * 2 <= p {
            return Err(proto(format!(
                "membership lost quorum: {}/{p} survivors",
                members.len()
            )));
        }
        let plan = member_plan(op, p, me, &members, epoch, send.is_some(), recv.is_some())?;
        let mut pol = *policy;
        pol.membership = MembershipPolicy {
            watch: true,
            tolerant: false,
            ..m
        };
        let exec = execute_polled_with_policy(comm, &plan, &bind, &tracer, &pol).await;
        let suspected = match &exec {
            Ok(_) => 0u64,
            Err(CommError::PeerDead(q)) => (1u64 << (q & 63)) | REDO,
            Err(e) => return Err(e.clone()),
        };
        let t0 = comm.time_ns();
        let agreed = agree_polled(
            comm,
            &members,
            epoch,
            dead | suspected,
            &m,
            pol.max_retries,
            &tracer,
        )
        .await?;
        mrep.agreements += 1;
        member_handles().agreements.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:agree",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            agreed,
            Some(class::MEMBERSHIP),
        );
        let newly = (agreed & RANKS) & !dead;
        if newly == 0 && agreed & REDO == 0 {
            let report = exec
                .unwrap_or_else(|_| unreachable!("a failed execution always raises the redo flag"));
            mrep.dead_mask = dead;
            return Ok(SurvivableOutcome {
                report,
                membership: mrep,
                members,
            });
        }
        dead = agreed & RANKS;
        epoch += 1;
        mrep.epochs = epoch;
        mrep.dead_mask = dead;
        if epoch > m.max_shrinks.min(15) {
            return Err(proto(format!(
                "membership exceeded {} shrinks",
                m.max_shrinks.min(15)
            )));
        }
        member_handles().shrinks.add(1);
        let t0 = comm.time_ns();
        comm.sleep_ns(m.restart_backoff_ns).await;
        PlanCache::global().invalidate_members_before(epoch);
        tracer.span(
            Track::Rank(me),
            "membership:shrink",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            dead,
            Some(class::MEMBERSHIP),
        );
        mrep.reexecs += 1;
        member_handles().reexecs.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:reexec",
            comm.time_ns(),
            0.0,
            u64::from(epoch),
            Some(class::MEMBERSHIP),
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn survivor_list_skips_dead_bits() {
        assert_eq!(survivor_list(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(survivor_list(0b0101, 4), vec![1, 3]);
    }

    #[test]
    fn fold_round_unions_suspects_and_refutes_responders() {
        let members = [0usize, 2, 5, 7];
        // Rank 5 never responded; rank 0 responded accusing {7}; rank 7
        // responded clean. We are rank 2 with no prior suspicion. Rank 7
        // answered this very round, so rank 0's accusation is refuted;
        // the unresponsive rank 5 stays suspected.
        let mut recv = vec![0u8; 32];
        recv[0..8].copy_from_slice(&(1u64 << 7).to_le_bytes());
        let got = fold_round(0, &members, 2, 1 << 5, &recv);
        assert_eq!(got, 1 << 5);
    }

    #[test]
    fn fold_round_preserves_redo_and_own_observations_of_the_dead() {
        let members = [0usize, 1, 2, 3];
        // We are rank 1, carrying REDO (our data plan failed) and a
        // suspicion of rank 3, who also fails to respond this round.
        let recv = vec![0u8; 32];
        let got = fold_round(REDO | (1 << 3), &members, 1, 1 << 3, &recv);
        assert_eq!(got, REDO | (1 << 3));
        // A responsive accused rank is cleared, but REDO never is.
        let mut recv = vec![0u8; 32];
        recv[24..32].copy_from_slice(&REDO.to_le_bytes());
        let got = fold_round(REDO | (1 << 3), &members, 1, 0, &recv);
        assert_eq!(got, REDO);
    }

    #[test]
    fn effective_membership_fills_zeroed_fields() {
        let m = effective_membership(&RecoveryPolicy::default());
        assert!(m.watch);
        assert_eq!(
            m.liveness_timeout_ns,
            MembershipPolicy::survivable().liveness_timeout_ns
        );
        let custom = RecoveryPolicy {
            membership: MembershipPolicy {
                watch: true,
                liveness_timeout_ns: 77,
                max_shrinks: 2,
                restart_backoff_ns: 5,
                tolerant: false,
            },
            ..RecoveryPolicy::default()
        };
        assert_eq!(effective_membership(&custom).liveness_timeout_ns, 77);
        assert_eq!(effective_membership(&custom).max_shrinks, 2);
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        let op = SurvivableOp::Bcast {
            algo: BcastAlgo::DirectRead,
            count: 8,
            root: 0,
        };
        assert!(validate(&op, 1, 0, Some(BufId(1)), None).is_err());
        assert!(validate(&op, 65, 0, Some(BufId(1)), None).is_err());
        assert!(validate(&op, 4, 0, None, None).is_err());
        assert!(validate(&op, 4, 0, Some(BufId(1)), None).is_ok());
        let zero = SurvivableOp::Bcast {
            algo: BcastAlgo::DirectRead,
            count: 0,
            root: 0,
        };
        assert!(validate(&zero, 4, 0, Some(BufId(1)), None).is_err());
    }
}
