//! Survivable collectives: deterministic failure detection, agreement,
//! and shrink-and-re-execute recovery (ULFM-inspired membership layer).
//!
//! [`run_survivable`] wraps any of the six bulk collectives in a
//! membership loop:
//!
//! 1. **Detect (adaptive)** — the data plan executes with the liveness
//!    watchdog armed ([`MembershipPolicy`]), so a silent peer death
//!    surfaces as the typed [`CommError::PeerDead`] instead of a hang.
//!    The deadline is no longer a fixed constant: it is derived per
//!    epoch from the analytic plan-cost estimate
//!    ([`Tuner::cost_schedule`] over the endpoint's topology) and the
//!    step-latency p99 observed by earlier attempts of the same call,
//!    clamped to a window whose floor is the policy constant.
//! 2. **Agree** — all members of the current epoch run a two-round
//!    agreement collective ([`crate::schedule::compile_agree`]) that
//!    unions everyone's suspected-dead [`MemberMask`]s — multi-word
//!    wire payloads, so the membership is unbounded (p = 128, 256, …
//!    all work; the old single-`u64` scheme capped at 63 ranks). The
//!    rounds execute under a *tolerant* watchdog with adaptive
//!    deadlines, so the agreement itself completes over the survivors
//!    no matter who died; non-responders are detected *by content* (a
//!    well-formed mask has a nonzero magic header, so an all-zero slot
//!    means "never wrote"). Two refinements keep it honest: a member
//!    that responds within a round is *refuted* from the mask (a rank
//!    that abandoned its data plan behind a dead peer looks dead to its
//!    own waiters, but it is not — this stops timeout cascades from
//!    exiling live ranks), and a failed data plan raises the
//!    [`FLAG_REDO`] header flag so the whole membership re-executes
//!    together even when the suspicion that caused the failure was
//!    refuted. A peer dying *inside* an agreement folds into the
//!    suspect set and restarts the agreement under fresh tags
//!    (kill-anywhere recovery), bounded by [`MAX_AGREE_ATTEMPTS`].
//! 3. **Resume or shrink-and-re-execute** — when the agreed mask names
//!    no new dead rank but carries [`FLAG_REDO`] (somebody's plan tore
//!    on a refuted suspicion), survivors *resume*: ranks that completed
//!    keep their result and skip the transport entirely (mailbox
//!    deposits persist and CMA is one-sided, so their outbound work is
//!    already visible), while torn ranks re-enter their plan at the
//!    per-rank watermark ([`ScheduleReport::completed_steps`]) under
//!    the same epoch and tags. When the membership *did* change,
//!    survivors advance the epoch, recompile the collective for the
//!    survivor subgroup (remapped onto parent ranks and re-tagged into
//!    the epoch's namespace by
//!    [`crate::schedule::remap_for_members`]), invalidate stale-epoch
//!    plans from the [`PlanCache`], back off briefly, and re-execute.
//!    Survivor `i` of the sorted member list contributes and receives
//!    block `i`, so parent-sized buffers always suffice.
//!
//! Everything is deterministic under simulation: the same seed produces
//! the same suspicions, the same agreed masks, the same shrink sequence,
//! and bitwise-identical reports on both engines. A fault-free run
//! executes exactly one data plan plus one (clean) agreement and reports
//! an empty [`RecoveryReport`](crate::RecoveryReport).
//!
//! The membership protocol never blocks forever: every wait is bounded
//! by the watchdog, disagreement only ever causes further shrinks, and
//! the loop is capped by [`MembershipPolicy::max_shrinks`] and the
//! quorum rule (survivors must outnumber half the parent communicator).

use std::sync::{Arc, OnceLock};

use kacc_comm::mask::{FLAG_NORESUME, FLAG_REDO};
use kacc_comm::{BufId, Comm, CommError, MemberMask, Result, Topology};
use kacc_machine::PolledComm;
use kacc_model::ArchProfile;
use kacc_trace::{Tracer, Track};

use crate::exec::{
    execute_resumable, execute_with_policy, proto, Bindings, MembershipPolicy, RecoveryPolicy,
    ResumeState, ScheduleReport,
};
use crate::polled::{abandon_polled, execute_polled_with_policy, execute_resumable_polled};
use crate::schedule::{
    compile_agree, compile_agree_split, compile_allgather, compile_alltoall, compile_bcast,
    compile_gather, compile_reduce, compile_scatter, remap_for_members, PlanCache, PlanKey,
    Schedule,
};
use crate::tuner::Tuner;
use crate::{
    class, AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype, GatherAlgo, ReduceAlgo, ReduceOp,
    ScatterAlgo,
};

/// One survivable collective operation: the algorithm plus the shape
/// parameters that stay fixed across shrinks (counts are per-member, so
/// a shrunken execution simply uses fewer blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurvivableOp {
    /// Scatter `count` bytes from `root` to every survivor.
    Scatter {
        /// Algorithm variant.
        algo: ScatterAlgo,
        /// Bytes per member.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Gather `count` bytes from every survivor at `root`.
    Gather {
        /// Algorithm variant.
        algo: GatherAlgo,
        /// Bytes per member.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Broadcast `count` bytes from `root` to every survivor.
    Bcast {
        /// Algorithm variant.
        algo: BcastAlgo,
        /// Message bytes.
        count: usize,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
    /// Allgather `count` bytes per survivor.
    Allgather {
        /// Algorithm variant.
        algo: AllgatherAlgo,
        /// Bytes per member.
        count: usize,
    },
    /// Alltoall `count` bytes per survivor pair.
    Alltoall {
        /// Algorithm variant.
        algo: AlltoallAlgo,
        /// Bytes per member pair.
        count: usize,
    },
    /// Reduce every survivor's `count`-byte contribution at `root`.
    Reduce {
        /// Algorithm variant.
        algo: ReduceAlgo,
        /// Contribution bytes.
        count: usize,
        /// Element type.
        dtype: Dtype,
        /// Combining operator.
        op: ReduceOp,
        /// Root rank (parent numbering; must survive).
        root: usize,
    },
}

impl SurvivableOp {
    /// The root rank in parent numbering, for rooted shapes.
    pub fn root(&self) -> Option<usize> {
        match *self {
            SurvivableOp::Scatter { root, .. }
            | SurvivableOp::Gather { root, .. }
            | SurvivableOp::Bcast { root, .. }
            | SurvivableOp::Reduce { root, .. } => Some(root),
            SurvivableOp::Allgather { .. } | SurvivableOp::Alltoall { .. } => None,
        }
    }

    /// The per-member byte count.
    pub fn count(&self) -> usize {
        match *self {
            SurvivableOp::Scatter { count, .. }
            | SurvivableOp::Gather { count, .. }
            | SurvivableOp::Bcast { count, .. }
            | SurvivableOp::Allgather { count, .. }
            | SurvivableOp::Alltoall { count, .. }
            | SurvivableOp::Reduce { count, .. } => count,
        }
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            SurvivableOp::Scatter { .. } => "scatter",
            SurvivableOp::Gather { .. } => "gather",
            SurvivableOp::Bcast { .. } => "bcast",
            SurvivableOp::Allgather { .. } => "allgather",
            SurvivableOp::Alltoall { .. } => "alltoall",
            SurvivableOp::Reduce { .. } => "reduce",
        }
    }
}

/// What the membership loop did during one survivable call. All-zero on
/// a fault-free run (one clean execution, one clean agreement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// Final membership epoch (= number of shrinks taken).
    pub epochs: u32,
    /// Agreement collectives executed.
    pub agreements: u32,
    /// Data-plan re-executions after a shrink.
    pub reexecs: u32,
    /// Partial-progress resumes taken instead of full re-executions.
    pub resumes: u32,
    /// Low 64 bits of the agreed dead set (bit `rank`; diagnostic —
    /// ranks ≥ 64 are reported via [`SurvivableOutcome::members`]).
    pub dead_mask: u64,
    /// Virtual time spent in torn data-plan executions before the
    /// failure surfaced (the *detect* phase of each recovery).
    pub detect_ns: u64,
    /// Virtual time spent in agreement collectives (including the final
    /// clean rendezvous).
    pub agree_ns: u64,
    /// Virtual time spent re-executing (or resuming) the data plan
    /// after the first attempt.
    pub reexec_ns: u64,
}

impl MembershipReport {
    /// True when no failure was detected anywhere: no shrink, no
    /// re-execution, no resume, nobody dead.
    pub fn is_clean(&self) -> bool {
        // One agreement always runs (the epilogue rendezvous), so it
        // does not count against cleanliness.
        self.epochs == 0 && self.reexecs == 0 && self.resumes == 0 && self.dead_mask == 0
    }
}

/// Result of a survivable collective on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurvivableOutcome {
    /// Report of the final (successful) data-plan execution.
    pub report: ScheduleReport,
    /// What the membership loop did to get there.
    pub membership: MembershipReport,
    /// The sorted surviving parent ranks the result is defined over.
    pub members: Vec<usize>,
}

/// Pre-resolved `kacc-metrics` handles for the membership driver.
struct MemberHandles {
    agreements: kacc_metrics::Counter,
    shrinks: kacc_metrics::Counter,
    reexecs: kacc_metrics::Counter,
    resumes: kacc_metrics::Counter,
    detect_ns: kacc_metrics::Hist,
    agree_ns: kacc_metrics::Hist,
    reexec_ns: kacc_metrics::Hist,
}

fn member_handles() -> &'static MemberHandles {
    static HANDLES: OnceLock<MemberHandles> = OnceLock::new();
    HANDLES.get_or_init(|| MemberHandles {
        agreements: kacc_metrics::counter("coll.membership.agreements"),
        shrinks: kacc_metrics::counter("coll.membership.shrinks"),
        reexecs: kacc_metrics::counter("coll.membership.reexecs"),
        resumes: kacc_metrics::counter("coll.membership.resumes"),
        detect_ns: kacc_metrics::hist("coll.membership.detect_ns"),
        agree_ns: kacc_metrics::hist("coll.membership.agree_ns"),
        reexec_ns: kacc_metrics::hist("coll.membership.reexec_ns"),
    })
}

/// Agreement restarts tolerated per membership iteration before the
/// call gives up with a typed error. A peer dying *inside* an agreement
/// round folds into the suspect set and restarts the agreement under
/// fresh tags; four attempts bound the tag namespace while covering
/// every kill the chaos corpus can schedule into one iteration.
const MAX_AGREE_ATTEMPTS: u32 = 4;

/// The sorted list of parent ranks not marked dead.
fn survivor_list(dead: &MemberMask, p: usize) -> Vec<usize> {
    (0..p).filter(|&r| !dead.get(r)).collect()
}

/// Map the endpoint's [`Topology`] onto the closest known
/// [`ArchProfile`] so the membership layer can price plans with
/// [`Tuner::cost_schedule`]. An exact preset match (KNL, Broadwell,
/// POWER8) uses that preset's calibrated constants; anything else takes
/// the Broadwell constants with the topology's shape substituted in.
/// Purely a function of the topology, so deterministic per simulation.
fn arch_for(topo: &Topology) -> ArchProfile {
    for preset in [
        ArchProfile::knl(),
        ArchProfile::broadwell(),
        ArchProfile::power8(),
    ] {
        if preset.sockets == topo.sockets
            && preset.cores_per_socket == topo.cores_per_socket
            && preset.page_size == topo.page_size
        {
            return preset;
        }
    }
    let mut arch = ArchProfile::broadwell();
    arch.sockets = topo.sockets;
    arch.cores_per_socket = topo.cores_per_socket;
    arch.threads_per_core = topo.threads_per_core;
    arch.page_size = topo.page_size;
    arch
}

/// The adaptive liveness deadline for one data-plan execution: four
/// times the larger of the analytic whole-plan cost estimate and twice
/// the observed per-step p99 from earlier attempts of this same call,
/// clamped to `[policy floor, 64 × policy floor]`. The policy constant
/// ([`MembershipPolicy::survivable`]'s 200 µs) is no longer the
/// deadline itself — it is the floor of a window that scales with the
/// plan, so big communicators and big payloads stop tripping false
/// suspicions while small plans keep PR 8's exact detection latency.
fn adaptive_liveness(m: &MembershipPolicy, plan_cost_ns: u64, obs_p99_ns: u64) -> u64 {
    let predicted = plan_cost_ns.max(obs_p99_ns.saturating_mul(2));
    predicted.saturating_mul(4).clamp(
        m.liveness_timeout_ns,
        m.liveness_timeout_ns.saturating_mul(64),
    )
}

/// Up-front validation shared by both engines: communicator bounds,
/// per-op buffer requirements, and algorithm parameters the compile
/// functions assume were already checked.
fn validate(
    op: &SurvivableOp,
    p: usize,
    me: usize,
    send: Option<BufId>,
    recv: Option<BufId>,
) -> Result<()> {
    if p < 2 {
        return Err(proto(
            "survivable collectives require at least 2 ranks".into(),
        ));
    }
    if op.count() == 0 {
        return Err(proto(
            "survivable collectives require a nonzero count".into(),
        ));
    }
    if let Some(root) = op.root() {
        if root >= p {
            return Err(CommError::BadRank(root));
        }
    }
    let need = |cond: bool, msg: &str| {
        if cond {
            Ok(())
        } else {
            Err(proto(msg.into()))
        }
    };
    match *op {
        SurvivableOp::Scatter { algo, root, .. } => {
            if let ScatterAlgo::ThrottledRead { k } = algo {
                need(k >= 1, "throttle factor must be ≥ 1")?;
            }
            if me == root {
                need(send.is_some(), "root scatter needs sendbuf")?;
            } else {
                need(recv.is_some(), "non-root scatter needs recvbuf")?;
            }
        }
        SurvivableOp::Gather { algo, root, .. } => {
            if let GatherAlgo::ThrottledWrite { k } = algo {
                need(k >= 1, "throttle factor must be ≥ 1")?;
            }
            if me == root {
                need(recv.is_some(), "root gather needs recvbuf")?;
            } else {
                need(send.is_some(), "non-root gather needs sendbuf")?;
            }
        }
        SurvivableOp::Bcast { algo, .. } => {
            if let BcastAlgo::KNomial { radix } = algo {
                need(radix >= 2, "k-nomial radix must be ≥ 2")?;
            }
            need(send.is_some(), "bcast binds its data buffer as send")?;
        }
        SurvivableOp::Allgather { .. } => {
            need(recv.is_some(), "allgather needs recvbuf")?;
        }
        SurvivableOp::Alltoall { .. } => {
            need(
                send.is_some() && recv.is_some(),
                "survivable alltoall needs distinct send and recv buffers",
            )?;
        }
        SurvivableOp::Reduce {
            algo,
            root,
            count,
            dtype,
            ..
        } => {
            if let ReduceAlgo::KNomialTree { radix } = algo {
                need(radix >= 2, "tree radix must be ≥ 2")?;
            }
            if !count.is_multiple_of(dtype.width()) {
                return Err(proto(format!(
                    "count {count} is not a multiple of the {dtype:?} width"
                )));
            }
            need(send.is_some(), "reduce needs sendbuf")?;
            if me == root {
                need(recv.is_some(), "root reduce needs recvbuf")?;
            }
        }
    }
    Ok(())
}

/// Fetch (or compile) the plan for the current membership epoch.
///
/// Epoch 0 runs over the full communicator and uses exactly the same
/// [`PlanKey`] shapes as the plain entry points, so fault-free
/// survivable calls share cached plans with them. Later epochs compile
/// for the survivor subgroup (`p' = |members|`, `rank' = my position`,
/// `root' = root's position`) and remap onto parent ranks under a
/// [`PlanKey::Member`] key whose embedded epoch makes stale-membership
/// plans unreachable after the next shrink.
fn member_plan(
    op: &SurvivableOp,
    p: usize,
    me: usize,
    members: &[usize],
    epoch: u32,
    has_send: bool,
    has_recv: bool,
) -> Result<Arc<Schedule>> {
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&m| m == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let root_idx = match op.root() {
        Some(r) => members
            .iter()
            .position(|&m| m == r)
            .ok_or(CommError::PeerDead(r))?,
        None => 0,
    };
    let inner = match *op {
        SurvivableOp::Scatter { algo, count, .. } => PlanKey::Scatter {
            algo,
            p: l,
            rank: my_idx,
            counts: vec![count; l],
            displs: None,
            root: root_idx,
            has_recvbuf: has_recv,
        },
        SurvivableOp::Gather { algo, count, .. } => PlanKey::Gather {
            algo,
            p: l,
            rank: my_idx,
            counts: vec![count; l],
            displs: None,
            root: root_idx,
            has_sendbuf: has_send,
        },
        SurvivableOp::Bcast { algo, count, .. } => PlanKey::Bcast {
            algo,
            p: l,
            rank: my_idx,
            count,
            root: root_idx,
        },
        SurvivableOp::Allgather { algo, count } => {
            let algo = match algo {
                AllgatherAlgo::RingNeighbor { j } => {
                    if crate::allgather::gcd(j % l, l) != 1 {
                        return Err(proto(format!(
                            "ring-neighbor stride {j} shares a factor with the {l} survivors"
                        )));
                    }
                    AllgatherAlgo::RingNeighbor { j: j % l }
                }
                other => other,
            };
            PlanKey::Allgather {
                algo,
                p: l,
                rank: my_idx,
                count,
                has_sendbuf: has_send,
            }
        }
        SurvivableOp::Alltoall { algo, count } => PlanKey::Alltoall {
            algo,
            p: l,
            rank: my_idx,
            count,
        },
        SurvivableOp::Reduce {
            algo,
            count,
            dtype,
            op,
            ..
        } => PlanKey::Reduce {
            algo,
            p: l,
            rank: my_idx,
            count,
            dtype,
            op,
            root: root_idx,
        },
    };
    let inner_for_compile = inner.clone();
    let compile = move || match inner_for_compile {
        PlanKey::Scatter {
            algo,
            p,
            rank,
            ref counts,
            root,
            has_recvbuf,
            ..
        } => {
            let layout: Vec<(usize, usize)> = counts
                .iter()
                .scan(0, |off, &c| {
                    let entry = (*off, c);
                    *off += c;
                    Some(entry)
                })
                .collect();
            compile_scatter(algo, p, rank, &layout, root, has_recvbuf)
        }
        PlanKey::Gather {
            algo,
            p,
            rank,
            ref counts,
            root,
            has_sendbuf,
            ..
        } => {
            let layout: Vec<(usize, usize)> = counts
                .iter()
                .scan(0, |off, &c| {
                    let entry = (*off, c);
                    *off += c;
                    Some(entry)
                })
                .collect();
            compile_gather(algo, p, rank, &layout, root, has_sendbuf)
        }
        PlanKey::Bcast {
            algo,
            p,
            rank,
            count,
            root,
        } => compile_bcast(algo, p, rank, count, root),
        PlanKey::Allgather {
            algo,
            p,
            rank,
            count,
            has_sendbuf,
        } => compile_allgather(algo, p, rank, count, has_sendbuf),
        PlanKey::Alltoall {
            algo,
            p,
            rank,
            count,
        } => compile_alltoall(algo, p, rank, count),
        PlanKey::Reduce {
            algo,
            p,
            rank,
            count,
            dtype,
            op,
            root,
        } => compile_reduce(algo, p, rank, count, dtype, op, root),
        PlanKey::Member { .. } => unreachable!("inner keys are never Member"),
    };

    Ok(if epoch == 0 {
        PlanCache::global().get_or_compile(inner, compile)
    } else {
        let members_vec = members.to_vec();
        PlanCache::global().get_or_compile(
            PlanKey::Member {
                epoch,
                members: members.to_vec(),
                inner: Box::new(inner),
            },
            move || remap_for_members(&compile(), &members_vec, epoch, p),
        )
    })
}

/// The bindings every epoch's execution uses (fixed across shrinks).
fn bindings_for(op: &SurvivableOp, send: Option<BufId>, recv: Option<BufId>) -> Bindings {
    match op {
        // Bcast binds its single data buffer as the send slot.
        SurvivableOp::Bcast { .. } => Bindings { send, recv: None },
        _ => Bindings { send, recv },
    }
}

/// The effective membership parameters: the caller's, with the watchdog
/// forced on and zeroed fields replaced by the survivable defaults.
fn effective_membership(policy: &RecoveryPolicy) -> MembershipPolicy {
    let defaults = MembershipPolicy::survivable();
    let mut m = if policy.membership.watch {
        policy.membership
    } else {
        defaults
    };
    if m.liveness_timeout_ns == 0 {
        m.liveness_timeout_ns = defaults.liveness_timeout_ns;
    }
    if m.max_shrinks == 0 {
        m.max_shrinks = defaults.max_shrinks;
    }
    m.watch = true;
    m
}

/// The tolerant policy one agreement round runs under: no retries, no
/// fallback, every wait bounded by `timeout`, and failing steps skipped
/// after recording the suspicion.
fn agree_policy(m: &MembershipPolicy, timeout: u64) -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 0,
        backoff_ns: 0,
        cma_fallback: false,
        step_timeout_ns: Some(timeout),
        membership: MembershipPolicy {
            watch: true,
            tolerant: true,
            ..*m
        },
    }
}

/// Fold one agreement round's results into the suspected mask.
///
/// Non-responders are detected *by content*: every well-formed
/// [`MemberMask`] wire image carries a nonzero magic header, and each
/// receive slot is zeroed before the round, so a slot that still fails
/// to decode after the round's deadline means that member never wrote —
/// no side-channel suspect bookkeeping (which used to wrap ranks at
/// `& 63`) is involved, and the scheme works at any communicator size.
///
/// Members who responded have their masks unioned in and are then
/// *refuted* — a responsive member is alive by construction, so any
/// suspicion of it (including one we carried in) is dropped. This is
/// what stops timeout cascades from exiling live ranks: a rank that
/// abandoned its data plan because a *dead* peer timed out looks dead
/// to its own waiters, but it shows up here and is cleared. The
/// genuinely dead never deposit, so true suspicions always survive.
/// Header flags ([`FLAG_REDO`], [`FLAG_NORESUME`]) ride above the rank
/// bits and are never refuted — [`MemberMask::subtract`] leaves them
/// alone.
fn fold_round(
    cur: &MemberMask,
    members: &[usize],
    me: usize,
    recv_bytes: &[u8],
    width: usize,
    p: usize,
) -> MemberMask {
    let mut union = cur.clone();
    let mut responders = MemberMask::new(p);
    responders.set(me);
    for (i, &peer) in members.iter().enumerate() {
        if peer == me {
            continue;
        }
        match MemberMask::from_bytes(p, &recv_bytes[width * i..width * (i + 1)]) {
            Some(mask) => {
                union.union(&mask);
                responders.set(peer);
            }
            None => union.set(peer),
        }
    }
    union.subtract(&responders);
    union
}

/// Fold the final *ballot* round: a pure union of every mask that
/// arrived, with **no** new suspicion and **no** refutation.
///
/// This asymmetry is what makes the agreement partition-proof against a
/// member dying *mid-round-1 sweep*. Round-1 delivery of a dying rank
/// is inherently partial — some members get its deposit, some do not —
/// so any per-recipient bookkeeping (suspecting its silence, or
/// refuting suspicions because it responded) would hand different
/// members different answers: the group would split-brain and the
/// partitions would exile each other. A union of ballots cannot split
/// that way:
///
/// - a rank alive at the *start* of round 1 finished its round-0 sweep,
///   so everything it uniquely knew is already in every live member's
///   round-0 fold, and its partial round-1 deposits add nothing new;
/// - a rank that died *before* round 1 is suspected in someone's
///   round-0 fold (a partial round-0 sweep reaches some members, whose
///   ballots spread the bit; an empty one reaches none, and everyone
///   suspects it by content), so its bit rides the ballots regardless
///   of who hears from it in round 1.
///
/// Hence the agreed mask equals the union of live members' ballots —
/// identical everywhere as long as live round-1 deposits all land
/// (which the measured round-1 deadline is sized for).
fn fold_ballots(
    cur: &MemberMask,
    members: &[usize],
    me: usize,
    recv_bytes: &[u8],
    width: usize,
    p: usize,
) -> MemberMask {
    let mut union = cur.clone();
    for (i, &peer) in members.iter().enumerate() {
        if peer == me {
            continue;
        }
        if let Some(mask) = MemberMask::from_bytes(p, &recv_bytes[width * i..width * (i + 1)]) {
            union.union(&mask);
        }
    }
    union
}

/// Three-round suspected-dead agreement over `members` (threads
/// engine): two gossip-and-refute rounds ([`fold_round`]) followed by a
/// pure ballot round ([`fold_ballots`]). Returns the union of every
/// member's final ballot. Never blocks forever: every receive is
/// bounded and failures are tolerated.
///
/// Why three rounds: round 0 collects suspicions across detection skew;
/// round 1 lets a member that entered late (and was therefore suspected
/// by content in someone's round 0) refute that suspicion with its own
/// deposit before anything is final; round 2 freezes the answer as a
/// union of ballots, which no mid-death partial delivery can split (see
/// [`fold_ballots`]). Dropping either middle-round refutation or the
/// final pure round reintroduces a real failure: the former exiles
/// slow-but-live ranks, the latter lets a rank dying mid-final-sweep
/// partition the group into halves that exile each other.
///
/// Waits are *adaptive*, which is where gen 2 recovers its ~4×
/// per-failure cost over the fixed formula this replaced. The binding
/// quantity is the per-slot wait `a0 = (retries + 3) × liveness`:
/// timers at every stalled rank run concurrently (an aborting rank
/// never *resets* its waiters' timers, it merely stops feeding them),
/// so a live member reaches the agreement at most one
/// `(1 + retries) × liveness` retry chain past the plan's natural end —
/// entry skew does not multiply with `p` the way the old `(2p + 4)`
/// worst case assumed, and `liveness` is already cost-scaled to the
/// wider of the data plan and the agreement sweep. Only *dead* slots
/// ever pay `a0`; live deposits resolve at their arrival time, so the
/// per-failure price is `O(rounds × dead × a0)` instead of the old
/// `× (l + 1)` deadline blow-up that charged every failure over a
/// hundred milliseconds at p = 16.
///
/// `base_round` namespaces this attempt's tags (three rounds per
/// attempt), letting a restarted agreement never collide with deposits
/// from the attempt a peer death tore down.
///
/// `w0_floor` widens round 0's live window beyond `a0`: a peer dying
/// *mid-agreement* after a partial fan-out leaves the un-served ranks
/// burning the full grown window of that round, so they exit the
/// agreement up to one final-window late — and enter the *next*
/// epoch's agreement with the same skew. The caller threads the exit
/// deadline returned by one agreement (capped at `16·a0` to stop
/// cross-epoch compounding) into the next one's floor, so round 0
/// still hears those stragglers instead of exiling them into quorum
/// loss. The floor only burns time when a slot is genuinely silent
/// that long, so the steady-state failure cost is unchanged.
#[allow(clippy::too_many_arguments)]
fn agree<C: Comm + ?Sized>(
    comm: &mut C,
    members: &[usize],
    epoch: u32,
    base_round: u32,
    suspected: &MemberMask,
    m: &MembershipPolicy,
    retries: u32,
    liveness: u64,
    w0_floor: u64,
    tracer: &Tracer,
) -> Result<(MemberMask, u64)> {
    let p = comm.size();
    let me = comm.rank();
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&x| x == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let width = MemberMask::wire_len(p);
    let send = comm.alloc(width);
    let recv = comm.alloc(width * l);
    let mut cur = suspected.clone();
    let mut out: Result<MemberMask> = Ok(cur.clone());
    // `a0` bounds how late a *live* member can be at round 0: up to
    // `(1 + retries)` liveness-timeout chains in its data plan plus
    // slack, with `liveness` itself already cost-scaled to the wider
    // of the data plan and the agreement's own all-to-all sweep. Each
    // round runs in two parts: live slots wait the wide adaptive
    // window, while already-suspected slots are polled afterwards
    // under a flat cap — a queued refutation is still taken
    // instantly, so the cap only bounds how long a genuinely dead slot
    // can burn. The cap is `2·a0` in the gossip and refute rounds,
    // where a live straggler's deposit can still clear it, and `a0`
    // in the ballot round, where refutation is impossible and a dead
    // slot is pure burn. The wide window for the next round is the measured
    // round time plus the current window plus `2·a0`: a peer dying
    // *mid-round* splits the group into ranks that decoded it and
    // ranks that burned the full window, so next-round skew can reach
    // one whole window — and since only not-yet-suspected slots ever
    // pay it, growing the window is free once the suspect is known.
    let a0 = liveness.saturating_mul(u64::from(retries) + 3);
    let mut deadline = a0.max(w0_floor);
    for r in 0..3u32 {
        let t_round = comm.time_ns();
        let step = (|| {
            let wire = cur.to_bytes();
            comm.write_local(send, 0, &wire)?;
            comm.write_local(recv, 0, &vec![0u8; width * l])?;
            comm.write_local(recv, width * my_idx, &wire)?;
            let (live_plan, susp_plan) =
                compile_agree_split(p, me, members, epoch, base_round + r, width, &cur);
            let bind = Bindings {
                send: Some(send),
                recv: Some(recv),
            };
            execute_with_policy(comm, &live_plan, &bind, tracer, &agree_policy(m, deadline))?;
            if !susp_plan.steps.is_empty() {
                let cap = if r < 2 { a0.saturating_mul(2) } else { a0 };
                execute_with_policy(comm, &susp_plan, &bind, tracer, &agree_policy(m, cap))?;
            }
            let mut bytes = vec![0u8; width * l];
            comm.read_local(recv, 0, &mut bytes)?;
            Ok(if r < 2 {
                fold_round(&cur, members, me, &bytes, width, p)
            } else {
                fold_ballots(&cur, members, me, &bytes, width, p)
            })
        })();
        match step {
            Ok(next) => {
                deadline = comm
                    .time_ns()
                    .saturating_sub(t_round)
                    .saturating_add(deadline)
                    .saturating_add(a0.saturating_mul(2));
                cur = next;
                out = Ok(cur.clone());
            }
            Err(e) => {
                out = Err(e);
                break;
            }
        }
    }
    let _ = comm.free(send);
    let _ = comm.free(recv);
    out.map(|mask| (mask, deadline.min(a0.saturating_mul(16))))
}

/// Three-round suspected-dead agreement over `members` — the polled
/// twin of [`agree`], transliterated operation for operation (same
/// adaptive deadlines, same tag namespace, same folds).
#[allow(clippy::too_many_arguments)]
async fn agree_polled(
    comm: &mut PolledComm,
    members: &[usize],
    epoch: u32,
    base_round: u32,
    suspected: &MemberMask,
    m: &MembershipPolicy,
    retries: u32,
    liveness: u64,
    w0_floor: u64,
    tracer: &Tracer,
) -> Result<(MemberMask, u64)> {
    let p = comm.size();
    let me = comm.rank();
    let l = members.len();
    let my_idx = members
        .iter()
        .position(|&x| x == me)
        .ok_or_else(|| proto("caller is not a surviving member".into()))?;
    let width = MemberMask::wire_len(p);
    let send = comm.alloc(width);
    let recv = comm.alloc(width * l);
    let mut cur = suspected.clone();
    let mut out: Result<MemberMask> = Ok(cur.clone());
    // Same two-part rounds (wide window for live slots, round-shaped
    // flat cap for suspected slots), window growth, and skew-hint floor
    // as the threads twin (see [`agree`] for the sizing argument).
    let a0 = liveness.saturating_mul(u64::from(retries) + 3);
    let mut deadline = a0.max(w0_floor);
    for r in 0..3u32 {
        let t_round = comm.time_ns();
        let step: Result<MemberMask> = {
            let wire = cur.to_bytes();
            let setup = comm
                .write_local(send, 0, &wire)
                .and_then(|()| comm.write_local(recv, 0, &vec![0u8; width * l]))
                .and_then(|()| comm.write_local(recv, width * my_idx, &wire));
            match setup {
                Err(e) => Err(e),
                Ok(()) => {
                    let (live_plan, susp_plan) =
                        compile_agree_split(p, me, members, epoch, base_round + r, width, &cur);
                    let bind = Bindings {
                        send: Some(send),
                        recv: Some(recv),
                    };
                    let run = async {
                        execute_polled_with_policy(
                            comm,
                            &live_plan,
                            &bind,
                            tracer,
                            &agree_policy(m, deadline),
                        )
                        .await?;
                        if !susp_plan.steps.is_empty() {
                            let cap = if r < 2 { a0.saturating_mul(2) } else { a0 };
                            execute_polled_with_policy(
                                comm,
                                &susp_plan,
                                &bind,
                                tracer,
                                &agree_policy(m, cap),
                            )
                            .await?;
                        }
                        Ok(())
                    };
                    match run.await {
                        Err(e) => Err(e),
                        Ok(()) => {
                            let mut bytes = vec![0u8; width * l];
                            match comm.read_local(recv, 0, &mut bytes) {
                                Err(e) => Err(e),
                                Ok(()) => Ok(if r < 2 {
                                    fold_round(&cur, members, me, &bytes, width, p)
                                } else {
                                    fold_ballots(&cur, members, me, &bytes, width, p)
                                }),
                            }
                        }
                    }
                }
            }
        };
        match step {
            Ok(next) => {
                deadline = comm
                    .time_ns()
                    .saturating_sub(t_round)
                    .saturating_add(deadline)
                    .saturating_add(a0.saturating_mul(2));
                cur = next;
                out = Ok(cur.clone());
            }
            Err(e) => {
                out = Err(e);
                break;
            }
        }
    }
    let _ = comm.free(send);
    let _ = comm.free(recv);
    out.map(|mask| (mask, deadline.min(a0.saturating_mul(16))))
}

/// Run `op` survivably on the threads/blocking engine: detect peer
/// death, agree on the survivors, then either *resume* the torn plan
/// from each rank's watermark (membership unchanged) or shrink and
/// re-execute, until the collective completes over a stable membership
/// or a typed error (exile, dead root, quorum loss, shrink budget)
/// surfaces. Never hangs: every wait the loop takes is
/// deadline-bounded, and a peer dying *inside* the agreement folds into
/// the suspect set and restarts the agreement under fresh tags.
pub fn run_survivable<C: Comm + ?Sized>(
    comm: &mut C,
    op: &SurvivableOp,
    send: Option<BufId>,
    recv: Option<BufId>,
    policy: &RecoveryPolicy,
) -> Result<SurvivableOutcome> {
    let p = comm.size();
    let me = comm.rank();
    validate(op, p, me, send, recv)?;
    let m = effective_membership(policy);
    let bind = bindings_for(op, send, recv);
    let tracer = comm.tracer();
    let tuner = Tuner::new(&arch_for(&comm.topology()));
    let resume_cap = m.max_shrinks.min(15);
    let mut dead = MemberMask::new(p);
    let mut epoch = 0u32;
    // `iter` counts loop iterations (for cost attribution); `aiter`
    // counts agreement iterations *within the current epoch* and
    // namespaces agreement tags together with the epoch nibble: it
    // advances on resume (same epoch, new agreement) and resets on
    // shrink (the epoch bump re-namespaces). Bounded by resume_cap
    // (≤ 15), so `aiter*12 + attempt*3 + round` stays inside the tag's
    // 8-bit round field: ≤ 15·12 + 3·3 + 2 = 191.
    let mut iter = 0u32;
    let mut aiter = 0u32;
    let mut resumes = 0u32;
    let mut obs_p99 = 0u64;
    // Exit-skew hint threaded between successive agreements: a rank can
    // leave an agreement up to one final window late when a peer died
    // mid-fan-out, and the next agreement's round 0 must still hear it.
    let mut skew_hint = 0u64;
    let mut resume_state: Option<ResumeState> = None;
    // A rank whose execution already succeeded carries its report here
    // across resume iterations and skips re-execution entirely — its
    // deposits persist and its inbound needs were already met, so only
    // the torn ranks touch the transport again.
    let mut done: Option<ScheduleReport> = None;
    let mut mrep = MembershipReport::default();
    macro_rules! bail {
        ($e:expr) => {{
            if let Some(st) = resume_state.take() {
                st.abandon(comm);
            }
            return Err($e);
        }};
    }
    loop {
        if dead.get(me) {
            // Exile: the membership agreed *we* are dead (false
            // suspicion). Diverging silently would wedge the others.
            bail!(CommError::PeerDead(me));
        }
        if let Some(r) = op.root() {
            if dead.get(r) {
                bail!(CommError::PeerDead(r));
            }
        }
        let members = survivor_list(&dead, p);
        if members.len() * 2 <= p {
            bail!(proto(format!(
                "membership lost quorum: {}/{p} survivors",
                members.len()
            )));
        }
        let l = members.len();
        let plan = match member_plan(op, p, me, &members, epoch, send.is_some(), recv.is_some()) {
            Ok(plan) => plan,
            Err(e) => bail!(e),
        };
        // Adaptive detection: deadline from the analytic plan cost and
        // the step latencies this call has already observed.
        let liveness = adaptive_liveness(&m, tuner.cost_schedule(&plan, l) as u64, obs_p99);
        // The agreement's own all-to-all fan-out grows with l even when
        // the data plan's cost does not, so its deadlines are derived
        // from the agreement plan's modeled cost (identical on every
        // member: the schedule is symmetric).
        let agree_liveness = adaptive_liveness(
            &m,
            tuner.cost_schedule(
                &compile_agree(p, me, &members, epoch, 0, MemberMask::wire_len(p)),
                l,
            ) as u64,
            obs_p99,
        )
        .max(liveness);
        let mut pol = *policy;
        pol.membership = MembershipPolicy {
            watch: true,
            tolerant: false,
            liveness_timeout_ns: liveness,
            ..m
        };
        let t_exec = comm.time_ns();
        let exec: Result<ScheduleReport> = if let Some(report) = done {
            Ok(report)
        } else {
            let (res, report) =
                execute_resumable(comm, &plan, &bind, &tracer, &pol, &mut resume_state);
            obs_p99 = obs_p99.max(report.step_p99_ns);
            res.map(|()| report)
        };
        let exec_ns = comm.time_ns().saturating_sub(t_exec);
        let mut own = dead.clone();
        match &exec {
            Ok(_) => {
                if iter > 0 {
                    mrep.reexec_ns += exec_ns;
                }
            }
            Err(CommError::PeerDead(q)) => {
                mrep.detect_ns += exec_ns;
                if *q < p {
                    own.set(*q);
                }
                own.set_flag(FLAG_REDO);
                if resumes >= resume_cap {
                    own.set_flag(FLAG_NORESUME);
                }
            }
            Err(e) => bail!(e.clone()),
        }
        // Rendezvous: union everyone's suspicions so all survivors see
        // the same dead set — even ranks whose own execution was clean.
        // A failed execution raises FLAG_REDO so the whole membership
        // re-executes together even if the suspicion itself is refuted.
        // A peer dying mid-agreement folds in and restarts the
        // agreement (kill-anywhere recovery), bounded by the attempt
        // budget.
        let t0 = comm.time_ns();
        let mut agreed: Option<MemberMask> = None;
        for attempt in 0..MAX_AGREE_ATTEMPTS {
            let base_round = aiter * 12 + attempt * 3;
            match agree(
                comm,
                &members,
                epoch,
                base_round,
                &own,
                &m,
                policy.max_retries,
                agree_liveness,
                skew_hint,
                &tracer,
            ) {
                Ok((mask, hint)) => {
                    skew_hint = hint;
                    agreed = Some(mask);
                    break;
                }
                Err(CommError::PeerDead(q)) => {
                    if q < p {
                        own.set(q);
                    }
                    own.set_flag(FLAG_REDO);
                }
                Err(e) => bail!(e),
            }
        }
        let Some(agreed) = agreed else {
            bail!(proto(format!(
                "membership agreement failed after {MAX_AGREE_ATTEMPTS} attempts"
            )));
        };
        let agree_ns = comm.time_ns().saturating_sub(t0);
        mrep.agreements += 1;
        mrep.agree_ns += agree_ns;
        member_handles().agreements.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:agree",
            t0,
            agree_ns as f64,
            agreed.low64(),
            Some(class::MEMBERSHIP),
        );
        let mut newly = agreed.clone();
        newly.subtract(&dead);
        if newly.is_empty() && !agreed.has_flag(FLAG_REDO) {
            let report = match exec {
                Ok(report) => report,
                Err(_) => unreachable!("a failed execution always raises the redo flag"),
            };
            mrep.dead_mask = dead.low64();
            let h = member_handles();
            h.detect_ns.record(mrep.detect_ns);
            h.agree_ns.record(mrep.agree_ns);
            h.reexec_ns.record(mrep.reexec_ns);
            return Ok(SurvivableOutcome {
                report,
                membership: mrep,
                members,
            });
        }
        if newly.is_empty() && !agreed.has_flag(FLAG_NORESUME) && resumes < resume_cap {
            // Partial-progress resume: somebody's plan tore but the
            // membership did not change, so every remaining step still
            // touches only survivors. Completed ranks skip re-execution
            // (their deposits persist); torn ranks pick up at their
            // watermark under the same epoch, plan, and data tags.
            resumes += 1;
            mrep.resumes += 1;
            member_handles().resumes.add(1);
            done = exec.ok();
            tracer.span(
                Track::Rank(me),
                "membership:resume",
                comm.time_ns(),
                0.0,
                u64::from(resumes),
                Some(class::MEMBERSHIP),
            );
            iter += 1;
            aiter += 1;
            continue;
        }
        // Shrink: adopt the agreed dead set, advance the epoch (even
        // when only FLAG_REDO fired — full re-execution needs fresh
        // tags), drop stale-membership plans, back off, and go around.
        dead = agreed.clone();
        dead.clear_flag(FLAG_REDO);
        dead.clear_flag(FLAG_NORESUME);
        epoch += 1;
        mrep.epochs = epoch;
        mrep.dead_mask = dead.low64();
        if epoch > m.max_shrinks.min(15) {
            bail!(proto(format!(
                "membership exceeded {} shrinks",
                m.max_shrinks.min(15)
            )));
        }
        member_handles().shrinks.add(1);
        let t0 = comm.time_ns();
        comm.sleep_ns(m.restart_backoff_ns);
        PlanCache::global().invalidate_members_before(epoch);
        tracer.span(
            Track::Rank(me),
            "membership:shrink",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            dead.low64(),
            Some(class::MEMBERSHIP),
        );
        mrep.reexecs += 1;
        member_handles().reexecs.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:reexec",
            comm.time_ns(),
            0.0,
            u64::from(epoch),
            Some(class::MEMBERSHIP),
        );
        // The shrunken plan is a different schedule: the old watermark
        // is meaningless, and completed ranks must re-execute too.
        if let Some(st) = resume_state.take() {
            st.abandon(comm);
        }
        done = None;
        iter += 1;
        aiter = 0;
    }
}

/// Run `op` survivably on the polled engine — the twin of
/// [`run_survivable`], transliterated one operation at a time so a
/// polled survivable call is bitwise-identical (same virtual times,
/// same reports, same shrink sequence) to the threads call.
pub async fn run_survivable_polled(
    comm: &mut PolledComm,
    op: &SurvivableOp,
    send: Option<BufId>,
    recv: Option<BufId>,
    policy: &RecoveryPolicy,
) -> Result<SurvivableOutcome> {
    let p = comm.size();
    let me = comm.rank();
    validate(op, p, me, send, recv)?;
    let m = effective_membership(policy);
    let bind = bindings_for(op, send, recv);
    let tracer = comm.tracer();
    let tuner = Tuner::new(&arch_for(&comm.topology()));
    let resume_cap = m.max_shrinks.min(15);
    let mut dead = MemberMask::new(p);
    let mut epoch = 0u32;
    let mut iter = 0u32;
    let mut aiter = 0u32;
    let mut resumes = 0u32;
    let mut obs_p99 = 0u64;
    // Exit-skew hint threaded between successive agreements: a rank can
    // leave an agreement up to one final window late when a peer died
    // mid-fan-out, and the next agreement's round 0 must still hear it.
    let mut skew_hint = 0u64;
    let mut resume_state: Option<ResumeState> = None;
    let mut done: Option<ScheduleReport> = None;
    let mut mrep = MembershipReport::default();
    macro_rules! bail {
        ($e:expr) => {{
            if let Some(st) = resume_state.take() {
                abandon_polled(comm, st);
            }
            return Err($e);
        }};
    }
    loop {
        if dead.get(me) {
            bail!(CommError::PeerDead(me));
        }
        if let Some(r) = op.root() {
            if dead.get(r) {
                bail!(CommError::PeerDead(r));
            }
        }
        let members = survivor_list(&dead, p);
        if members.len() * 2 <= p {
            bail!(proto(format!(
                "membership lost quorum: {}/{p} survivors",
                members.len()
            )));
        }
        let l = members.len();
        let plan = match member_plan(op, p, me, &members, epoch, send.is_some(), recv.is_some()) {
            Ok(plan) => plan,
            Err(e) => bail!(e),
        };
        let liveness = adaptive_liveness(&m, tuner.cost_schedule(&plan, l) as u64, obs_p99);
        let agree_liveness = adaptive_liveness(
            &m,
            tuner.cost_schedule(
                &compile_agree(p, me, &members, epoch, 0, MemberMask::wire_len(p)),
                l,
            ) as u64,
            obs_p99,
        )
        .max(liveness);
        let mut pol = *policy;
        pol.membership = MembershipPolicy {
            watch: true,
            tolerant: false,
            liveness_timeout_ns: liveness,
            ..m
        };
        let t_exec = comm.time_ns();
        let exec: Result<ScheduleReport> = if let Some(report) = done {
            Ok(report)
        } else {
            let (res, report) =
                execute_resumable_polled(comm, &plan, &bind, &tracer, &pol, &mut resume_state)
                    .await;
            obs_p99 = obs_p99.max(report.step_p99_ns);
            res.map(|()| report)
        };
        let exec_ns = comm.time_ns().saturating_sub(t_exec);
        let mut own = dead.clone();
        match &exec {
            Ok(_) => {
                if iter > 0 {
                    mrep.reexec_ns += exec_ns;
                }
            }
            Err(CommError::PeerDead(q)) => {
                mrep.detect_ns += exec_ns;
                if *q < p {
                    own.set(*q);
                }
                own.set_flag(FLAG_REDO);
                if resumes >= resume_cap {
                    own.set_flag(FLAG_NORESUME);
                }
            }
            Err(e) => bail!(e.clone()),
        }
        let t0 = comm.time_ns();
        let mut agreed: Option<MemberMask> = None;
        for attempt in 0..MAX_AGREE_ATTEMPTS {
            let base_round = aiter * 12 + attempt * 3;
            match agree_polled(
                comm,
                &members,
                epoch,
                base_round,
                &own,
                &m,
                policy.max_retries,
                agree_liveness,
                skew_hint,
                &tracer,
            )
            .await
            {
                Ok((mask, hint)) => {
                    skew_hint = hint;
                    agreed = Some(mask);
                    break;
                }
                Err(CommError::PeerDead(q)) => {
                    if q < p {
                        own.set(q);
                    }
                    own.set_flag(FLAG_REDO);
                }
                Err(e) => bail!(e),
            }
        }
        let Some(agreed) = agreed else {
            bail!(proto(format!(
                "membership agreement failed after {MAX_AGREE_ATTEMPTS} attempts"
            )));
        };
        let agree_ns = comm.time_ns().saturating_sub(t0);
        mrep.agreements += 1;
        mrep.agree_ns += agree_ns;
        member_handles().agreements.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:agree",
            t0,
            agree_ns as f64,
            agreed.low64(),
            Some(class::MEMBERSHIP),
        );
        let mut newly = agreed.clone();
        newly.subtract(&dead);
        if newly.is_empty() && !agreed.has_flag(FLAG_REDO) {
            let report = match exec {
                Ok(report) => report,
                Err(_) => unreachable!("a failed execution always raises the redo flag"),
            };
            mrep.dead_mask = dead.low64();
            let h = member_handles();
            h.detect_ns.record(mrep.detect_ns);
            h.agree_ns.record(mrep.agree_ns);
            h.reexec_ns.record(mrep.reexec_ns);
            return Ok(SurvivableOutcome {
                report,
                membership: mrep,
                members,
            });
        }
        if newly.is_empty() && !agreed.has_flag(FLAG_NORESUME) && resumes < resume_cap {
            resumes += 1;
            mrep.resumes += 1;
            member_handles().resumes.add(1);
            done = exec.ok();
            tracer.span(
                Track::Rank(me),
                "membership:resume",
                comm.time_ns(),
                0.0,
                u64::from(resumes),
                Some(class::MEMBERSHIP),
            );
            iter += 1;
            aiter += 1;
            continue;
        }
        dead = agreed.clone();
        dead.clear_flag(FLAG_REDO);
        dead.clear_flag(FLAG_NORESUME);
        epoch += 1;
        mrep.epochs = epoch;
        mrep.dead_mask = dead.low64();
        if epoch > m.max_shrinks.min(15) {
            bail!(proto(format!(
                "membership exceeded {} shrinks",
                m.max_shrinks.min(15)
            )));
        }
        member_handles().shrinks.add(1);
        let t0 = comm.time_ns();
        comm.sleep_ns(m.restart_backoff_ns).await;
        PlanCache::global().invalidate_members_before(epoch);
        tracer.span(
            Track::Rank(me),
            "membership:shrink",
            t0,
            comm.time_ns().saturating_sub(t0) as f64,
            dead.low64(),
            Some(class::MEMBERSHIP),
        );
        mrep.reexecs += 1;
        member_handles().reexecs.add(1);
        tracer.span(
            Track::Rank(me),
            "membership:reexec",
            comm.time_ns(),
            0.0,
            u64::from(epoch),
            Some(class::MEMBERSHIP),
        );
        if let Some(st) = resume_state.take() {
            abandon_polled(comm, st);
        }
        done = None;
        iter += 1;
        aiter = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn survivor_list_skips_dead_bits() {
        assert_eq!(survivor_list(&MemberMask::new(4), 4), vec![0, 1, 2, 3]);
        let mut dead = MemberMask::new(4);
        dead.set(0);
        dead.set(2);
        assert_eq!(survivor_list(&dead, 4), vec![1, 3]);
    }

    #[test]
    fn fold_round_unions_suspects_and_refutes_responders() {
        let p = 8;
        let width = MemberMask::wire_len(p);
        let members = [0usize, 2, 5, 7];
        // We are rank 2. Rank 5 never wrote (its slot is still zero —
        // content-based detection); rank 0 responded accusing {7}; rank
        // 7 responded clean. Rank 7 answered this very round, so rank
        // 0's accusation is refuted; the silent rank 5 stays suspected.
        let mut recv = vec![0u8; width * members.len()];
        let mut accuse7 = MemberMask::new(p);
        accuse7.set(7);
        recv[..width].copy_from_slice(&accuse7.to_bytes());
        recv[width * 3..width * 4].copy_from_slice(&MemberMask::new(p).to_bytes());
        let got = fold_round(&MemberMask::new(p), &members, 2, &recv, width, p);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![5]);
        assert_eq!(got.flags(), 0);
    }

    #[test]
    fn fold_round_preserves_flags_and_own_observations_of_the_dead() {
        let p = 8;
        let width = MemberMask::wire_len(p);
        let members = [0usize, 1, 2, 3];
        // We are rank 1, carrying FLAG_REDO (our data plan failed) and a
        // suspicion of rank 3, who also fails to respond this round;
        // ranks 0 and 2 respond clean.
        let mut cur = MemberMask::new(p);
        cur.set(3);
        cur.set_flag(FLAG_REDO);
        let clean = MemberMask::new(p).to_bytes();
        let mut recv = vec![0u8; width * members.len()];
        recv[..width].copy_from_slice(&clean);
        recv[width * 2..width * 3].copy_from_slice(&clean);
        let got = fold_round(&cur, &members, 1, &recv, width, p);
        assert!(got.has_flag(FLAG_REDO));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![3]);
        // A responsive accused rank is cleared, but flags never are:
        // rank 3 answers this round (carrying REDO itself).
        let mut redo = MemberMask::new(p);
        redo.set_flag(FLAG_REDO);
        recv[width * 3..width * 4].copy_from_slice(&redo.to_bytes());
        let got = fold_round(&cur, &members, 1, &recv, width, p);
        assert!(got.has_flag(FLAG_REDO));
        assert!(got.is_empty());
    }

    #[test]
    fn fold_round_handles_domains_past_64_ranks() {
        let p = 128;
        let width = MemberMask::wire_len(p);
        let members: Vec<usize> = (0..p).collect();
        // We are rank 0; rank 100 stays silent, everyone else responds.
        let clean = MemberMask::new(p).to_bytes();
        let mut recv = vec![0u8; width * p];
        for (i, &peer) in members.iter().enumerate() {
            if peer != 0 && peer != 100 {
                recv[width * i..width * (i + 1)].copy_from_slice(&clean);
            }
        }
        let got = fold_round(&MemberMask::new(p), &members, 0, &recv, width, p);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![100]);
    }

    #[test]
    fn fold_ballots_unions_without_suspecting_or_refuting() {
        let p = 8;
        let width = MemberMask::wire_len(p);
        let members: Vec<usize> = (0..p).collect();
        // Rank 6 dies mid-round-1 sweep: its ballot reached us but not
        // others, and rank 7's ballot names 6 dead. Rank 3's slot is
        // empty (it never wrote). The final fold must union 7's ballot
        // (6 dead) without refuting 6 for having responded and without
        // suspecting 3 for staying silent — either would give different
        // members different answers.
        let mut carried = MemberMask::new(p);
        carried.set_flag(FLAG_REDO);
        let mut from7 = MemberMask::new(p);
        from7.set(6);
        let mut recv = vec![0u8; width * p];
        recv[width * 6..width * 7].copy_from_slice(&MemberMask::new(p).to_bytes());
        recv[width * 7..width * 8].copy_from_slice(&from7.to_bytes());
        let got = fold_ballots(&carried, &members, 0, &recv, width, p);
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![6]);
        assert!(got.has_flag(FLAG_REDO), "carried flags must survive");
    }

    #[test]
    fn arch_for_matches_presets_and_falls_back_on_shape() {
        let knl = Topology {
            sockets: 1,
            cores_per_socket: 68,
            threads_per_core: 4,
            page_size: 4096,
        };
        assert_eq!(arch_for(&knl).name, ArchProfile::knl().name);
        let other = Topology {
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 1,
            page_size: 4096,
        };
        let arch = arch_for(&other);
        assert_eq!(arch.name, ArchProfile::broadwell().name);
        assert_eq!(arch.sockets, 2);
        assert_eq!(arch.cores_per_socket, 8);
    }

    #[test]
    fn adaptive_liveness_clamps_to_policy_window() {
        let m = MembershipPolicy::survivable();
        let floor = m.liveness_timeout_ns;
        // Tiny plans stay at the policy floor (PR 8's exact behavior).
        assert_eq!(adaptive_liveness(&m, 0, 0), floor);
        assert_eq!(adaptive_liveness(&m, floor / 8, 0), floor);
        // Bigger plans scale the deadline; observations can widen it.
        assert_eq!(adaptive_liveness(&m, floor, 0), 4 * floor);
        assert_eq!(adaptive_liveness(&m, floor, floor), 8 * floor);
        // And the ceiling caps runaway estimates.
        assert_eq!(adaptive_liveness(&m, u64::MAX / 2, 0), 64 * floor);
    }

    #[test]
    fn effective_membership_fills_zeroed_fields() {
        let m = effective_membership(&RecoveryPolicy::default());
        assert!(m.watch);
        assert_eq!(
            m.liveness_timeout_ns,
            MembershipPolicy::survivable().liveness_timeout_ns
        );
        let custom = RecoveryPolicy {
            membership: MembershipPolicy {
                watch: true,
                liveness_timeout_ns: 77,
                max_shrinks: 2,
                restart_backoff_ns: 5,
                tolerant: false,
            },
            ..RecoveryPolicy::default()
        };
        assert_eq!(effective_membership(&custom).liveness_timeout_ns, 77);
        assert_eq!(effective_membership(&custom).max_shrinks, 2);
    }

    #[test]
    fn validate_rejects_degenerate_shapes() {
        let op = SurvivableOp::Bcast {
            algo: BcastAlgo::DirectRead,
            count: 8,
            root: 0,
        };
        assert!(validate(&op, 1, 0, Some(BufId(1)), None).is_err());
        // Gen-2 membership has no rank cap: 65, 128, 256 all validate.
        assert!(validate(&op, 65, 0, Some(BufId(1)), None).is_ok());
        assert!(validate(&op, 256, 0, Some(BufId(1)), None).is_ok());
        assert!(validate(&op, 4, 0, None, None).is_err());
        assert!(validate(&op, 4, 0, Some(BufId(1)), None).is_ok());
        let zero = SurvivableOp::Bcast {
            algo: BcastAlgo::DirectRead,
            count: 0,
            root: 0,
        };
        assert!(validate(&zero, 4, 0, Some(BufId(1)), None).is_err());
    }
}
