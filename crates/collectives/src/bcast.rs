//! One-to-all non-personalized communication: MPI_Bcast (§V-B).
//!
//! The public entry point compiles to a [`crate::schedule::Schedule`]
//! (cached in the global [`PlanCache`]) and replays it through the
//! generic executor; `bcast_legacy` keeps the direct implementation for
//! equivalence tests.

use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_bcast, PlanCache, PlanKey};
use crate::{class, unvrank, vrank};
use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

/// Broadcast algorithm selection (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BcastAlgo {
    /// §V-B1: every non-root reads the root's buffer at once (maximal
    /// contention, one step).
    DirectRead,
    /// §V-B1: the root writes every receive buffer in turn
    /// (contention-free, p−1 steps).
    DirectWrite,
    /// §V-B2: radix-`k` tree — every parent feeds up to k−1 concurrent
    /// readers per round, ⌈log_k p⌉ rounds. The broadcast analogue of
    /// throttled reads.
    KNomial {
        /// Tree radix (≥ 2). Reader concurrency per source is `radix−1`.
        radix: usize,
    },
    /// §V-B3 Van de Geijn: sequential-write scatter of η/p chunks, then a
    /// contention-free ring allgather of the chunks.
    ScatterAllgather,
}

const TAG_DATA: Tag = Tag::internal(class::BCAST, 0);
const TAG_READ_DONE: Tag = Tag::internal(class::BCAST, 1);

/// MPI_Bcast: the root's first `count` bytes of `buf` reach every rank's
/// `buf`. Every rank must pass the same `algo`, `count`, and `root`.
pub fn bcast<C: Comm + ?Sized>(
    comm: &mut C,
    algo: BcastAlgo,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    bcast_with_report(comm, algo, buf, count, root).map(|_| ())
}

/// [`bcast`] returning the executor's per-step accounting. `None` when
/// the call was satisfied without a schedule (single rank or zero count).
pub fn bcast_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: BcastAlgo,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if !validate(comm, buf, count, root)? {
        return Ok(None);
    }
    if let BcastAlgo::KNomial { radix } = algo {
        if radix < 2 {
            return Err(CommError::Protocol("k-nomial radix must be ≥ 2".into()));
        }
    }
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Bcast {
            algo,
            p,
            rank: me,
            count,
            root,
        },
        || compile_bcast(algo, p, me, count, root),
    );
    execute(
        comm,
        &plan,
        &Bindings {
            send: Some(buf),
            recv: None,
        },
    )
    .map(Some)
}

/// Shared validation; `Ok(false)` means the degenerate case was handled.
fn validate<C: Comm + ?Sized>(comm: &mut C, buf: BufId, count: usize, root: usize) -> Result<bool> {
    let p = comm.size();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    let cap = comm.buf_len(buf)?;
    if cap < count {
        return Err(CommError::OutOfRange {
            buf: buf.0,
            off: 0,
            len: count,
            cap,
        });
    }
    Ok(!(p == 1 || count == 0))
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
pub fn bcast_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: BcastAlgo,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    if !validate(comm, buf, count, root)? {
        return Ok(());
    }
    match algo {
        BcastAlgo::DirectRead => direct_read(comm, buf, count, root),
        BcastAlgo::DirectWrite => direct_write(comm, buf, count, root),
        BcastAlgo::KNomial { radix } => {
            if radix < 2 {
                return Err(CommError::Protocol("k-nomial radix must be ≥ 2".into()));
            }
            knomial(comm, buf, count, root, radix)
        }
        BcastAlgo::ScatterAllgather => scatter_allgather(comm, buf, count, root),
    }
}

fn direct_read<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    let me = comm.rank();
    if me == root {
        let token = comm.expose(buf)?;
        smcoll::sm_bcast(comm, root, &token.to_bytes())?;
        smcoll::sm_gather(comm, root, &[])?;
    } else {
        let raw = smcoll::sm_bcast(comm, root, &[])?;
        let token =
            RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad bcast token".into()))?;
        comm.cma_read(token, 0, buf, 0, count)?;
        smcoll::sm_gather(comm, root, &[])?;
    }
    Ok(())
}

fn direct_write<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let tokens =
            smcoll::sm_gather(comm, root, &[])?.expect("sm_gather yields entries at the root");
        for v in 1..p {
            let r = unvrank(v, root, p);
            let token = RemoteToken::from_bytes(&tokens[r])
                .ok_or(CommError::Protocol("bad bcast recv token".into()))?;
            comm.cma_write(token, 0, buf, 0, count)?;
        }
        smcoll::sm_bcast(comm, root, &[])?;
    } else {
        let token = comm.expose(buf)?;
        smcoll::sm_gather(comm, root, &token.to_bytes())?;
        smcoll::sm_bcast(comm, root, &[])?;
    }
    Ok(())
}

/// Radix-`k` tree. Virtual rank v joins in round i = ⌊log_k v⌋, reading
/// from parent v mod k^i together with up to k−2 sibling readers of the
/// same parent; parents serialize their own rounds on their children's
/// read-done notifications, bounding per-source concurrency at k−1.
fn knomial<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    count: usize,
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let v = vrank(me, root, p);

    // Non-roots first receive their parent's token and pull the data.
    if v != 0 {
        // Join round: largest k-power at or below v.
        let mut kpow = 1usize;
        while kpow * k <= v {
            kpow *= k;
        }
        let parent = unvrank(v % kpow, root, p);
        let raw = comm.ctrl_recv(parent, TAG_DATA)?;
        let token = RemoteToken::from_bytes(&raw)
            .ok_or(CommError::Protocol("bad k-nomial token".into()))?;
        comm.cma_read(token, 0, buf, 0, count)?;
        comm.notify(parent, TAG_READ_DONE)?;
    }

    // Then serve descendants: in round i a holder v < k^i feeds children
    // v + m·k^i (m = 1..k−1). Start at the round after joining.
    let token = comm.expose(buf)?;
    let mut kpow = 1usize;
    while kpow <= v {
        kpow *= k;
    }
    // kpow is now the first round stride where v acts as a parent.
    while kpow < p {
        let mut children = Vec::new();
        for m in 1..k {
            let child = v + m * kpow;
            if child < p {
                children.push(unvrank(child, root, p));
            }
        }
        for &c in &children {
            comm.ctrl_send(c, TAG_DATA, &token.to_bytes())?;
        }
        for &c in &children {
            comm.wait_notify(c, TAG_READ_DONE)?;
        }
        kpow *= k;
    }
    Ok(())
}

/// Van de Geijn scatter-allgather over η/p chunks: chunk v lives at
/// offset v·chunk of everyone's buffer and is owned by virtual rank v.
fn scatter_allgather<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let v = vrank(me, root, p);
    let chunk = count.div_ceil(p);
    let chunk_range = |i: usize| {
        let off = i * chunk;
        let len = count.saturating_sub(off).min(chunk);
        (off, len)
    };

    let token = comm.expose(buf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    let tok_of = |tokens: &Vec<Vec<u8>>, r: usize| {
        RemoteToken::from_bytes(&tokens[r]).ok_or(CommError::Protocol("bad sag token".into()))
    };

    // Phase A — sequential-write scatter: the root deposits chunk i into
    // virtual rank i's buffer, then announces completion.
    if v == 0 {
        for i in 1..p {
            let (off, len) = chunk_range(i);
            if len == 0 {
                continue;
            }
            let dst = unvrank(i, root, p);
            comm.cma_write(tok_of(&tokens, dst)?, off, buf, off, len)?;
        }
        smcoll::sm_bcast(comm, root, &[])?;
    } else {
        smcoll::sm_bcast(comm, root, &[])?;
    }

    // Phase B — neighbor-forwarding ring over the chunks (the classic
    // Van de Geijn second phase): step t pulls chunk (v − t) from the
    // left ring neighbor, which committed it in its step t−1. Every rank
    // reads from a distinct source per step (contention-free) and almost
    // every transfer is intra-socket under the by-core mapping. The
    // notify chain keeps neighbors step-aligned; the root holds the
    // whole message already, so it only feeds the chain.
    let left = unvrank((v + p - 1) % p, root, p);
    let right = unvrank((v + 1) % p, root, p);
    let step_tag = Tag::internal(class::BCAST, 2);
    if v == 0 {
        // All of the root's chunks are valid from the start; release its
        // right neighbor for every step at once.
        for _ in 2..p {
            comm.notify(right, step_tag)?;
        }
    } else {
        let left_tok = tok_of(&tokens, left)?;
        for t in 1..p {
            if t > 1 {
                comm.wait_notify(left, step_tag)?;
            }
            let src_v = (v + p - t) % p;
            let (off, len) = chunk_range(src_v);
            if len > 0 {
                comm.cma_read(left_tok, off, buf, off, len)?;
            }
            if t < p - 1 && right != unvrank(0, root, p) {
                comm.notify(right, step_tag)?;
            }
        }
    }
    smcoll::sm_barrier(comm)?;
    Ok(())
}
