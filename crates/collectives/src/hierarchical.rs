//! Two-level (hierarchical) collectives for multi-node jobs (§VII-G).
//!
//! The paper's Fig 17 result: once the intra-node Gather is cheap
//! (contention-aware kernel-assisted designs), a *two-level* Gather —
//! node leaders gather locally, then the root gathers across nodes —
//! beats the single-level large-message algorithms that libraries had
//! been forced into by slow intra-node gathers, and the advantage grows
//! with node count.
//!
//! These functions work over any [`Comm`] whose [`Comm::node_of`]
//! partitions ranks into nodes (the `kacc-netsim` cluster transport).
//! Kernel-assisted single-copy ops are used *within* a node; bulk
//! leader-to-root transfers use the two-copy data path, which the
//! cluster transport maps onto the fabric.

use crate::class;
use crate::exec::is_transient;
use kacc_comm::{BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

const TAG_TOKEN: Tag = Tag::internal(class::HIER, 0);
const TAG_CHAIN: Tag = Tag::internal(class::HIER, 1);
const TAG_DONE: Tag = Tag::internal(class::HIER, 2);
const TAG_BULK: Tag = Tag::internal(class::HIER, 3);

/// Retry budget for the hierarchical data paths, mirroring the schedule
/// executor's defaults ([`crate::RecoveryPolicy`]): EAGAIN-class
/// transients retry with exponential backoff; everything else (ESRCH,
/// protocol violations) propagates typed.
const RETRY_MAX: u32 = 3;
const RETRY_BACKOFF_NS: u64 = 200;

fn with_retry<C, T>(comm: &mut C, mut f: impl FnMut(&mut C) -> Result<T>) -> Result<T>
where
    C: Comm + ?Sized,
{
    let mut attempts = 0u32;
    loop {
        match f(comm) {
            Err(e) if is_transient(&e) && attempts < RETRY_MAX => {
                attempts += 1;
                comm.sleep_ns(RETRY_BACKOFF_NS << (attempts - 1).min(5));
            }
            r => return r,
        }
    }
}

/// Single-copy transfer with short-transfer resume: a truncated CMA
/// move resumes past the bytes that landed (forward progress resets the
/// retry budget), zero-progress truncations and transients retry
/// bounded.
fn cma_resume<C: Comm + ?Sized>(
    comm: &mut C,
    read: bool,
    token: RemoteToken,
    remote_off: usize,
    buf: BufId,
    local_off: usize,
    len: usize,
) -> Result<()> {
    let mut at = 0usize;
    let mut attempts = 0u32;
    while at < len {
        let r = if read {
            comm.cma_read(token, remote_off + at, buf, local_off + at, len - at)
        } else {
            comm.cma_write(token, remote_off + at, buf, local_off + at, len - at)
        };
        match r {
            Ok(()) => return Ok(()),
            Err(CommError::Truncated { got, .. }) if got > 0 => {
                at += got.min(len - at);
                attempts = 0;
            }
            Err(e)
                if (matches!(e, CommError::Truncated { .. }) || is_transient(&e))
                    && attempts < RETRY_MAX =>
            {
                attempts += 1;
                comm.sleep_ns(RETRY_BACKOFF_NS << (attempts - 1).min(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Node layout extracted from a communicator.
#[derive(Debug, Clone)]
pub struct NodeLayout {
    /// Member ranks per node id (sorted), indexed by node.
    pub nodes: Vec<Vec<usize>>,
    /// Node of each rank.
    pub node_of: Vec<usize>,
}

impl NodeLayout {
    /// Compute the layout of `comm` (node ids must be dense from 0).
    pub fn of<C: Comm + ?Sized>(comm: &C) -> NodeLayout {
        let p = comm.size();
        let node_of: Vec<usize> = (0..p).map(|r| comm.node_of(r)).collect();
        let n_nodes = node_of.iter().max().copied().unwrap_or(0) + 1;
        let mut nodes = vec![Vec::new(); n_nodes];
        for (r, &n) in node_of.iter().enumerate() {
            nodes[n].push(r);
        }
        NodeLayout { nodes, node_of }
    }

    /// Leader of node `n`: the root itself on the root's node, else the
    /// lowest member rank.
    pub fn leader(&self, n: usize, root: usize) -> usize {
        if self.node_of[root] == n {
            root
        } else {
            self.nodes[n][0]
        }
    }
}

/// Two-level MPI_Gather: throttled intra-node writes to the node leader
/// (throttle factor `k`), then leaders ship their node's blocks to the
/// root over the bulk data path.
pub fn hier_gather<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if k == 0 {
        return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
    }
    let layout = NodeLayout::of(comm);
    let my_node = layout.node_of[me];
    let leader = layout.leader(my_node, root);
    let members = &layout.nodes[my_node];
    let on_root_node = my_node == layout.node_of[root];

    if count == 0 {
        return Ok(());
    }

    if me == leader {
        let rb = if me == root {
            recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?
        } else {
            // Staging ordered by local member index.
            comm.alloc(members.len() * count)
        };
        // Where member `m` (local index li) lands in this buffer.
        let slot = |li: usize, m: usize| if me == root { m * count } else { li * count };

        // Intra-node phase: send the leader's token to every member and
        // wait for the last wave's completion notifications.
        let token = with_retry(comm, |c| c.expose(rb))?;
        let others: Vec<(usize, usize)> = members
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != me)
            .map(|(li, &m)| (li, m))
            .collect();
        for &(li, m) in &others {
            let mut msg = token.to_bytes().to_vec();
            msg.extend_from_slice(&(slot(li, m) as u64).to_le_bytes());
            with_retry(comm, |c| c.ctrl_send(m, TAG_TOKEN, &msg))?;
        }
        // Leader's own contribution.
        let my_li = members
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        match (me == root, sendbuf) {
            (true, Some(sb)) => comm.copy_local(sb, 0, rb, me * count, count)?,
            (true, None) => {} // MPI_IN_PLACE at root
            (false, sb) => {
                let sb = sb.ok_or(CommError::Protocol("non-root gather needs sendbuf".into()))?;
                comm.copy_local(sb, 0, rb, slot(my_li, me), count)?;
            }
        }
        for (w, &(_, m)) in others.iter().enumerate() {
            // Last wave = chain positions within k of the end.
            if w + k >= others.len() {
                with_retry(comm, |c| c.wait_notify(m, TAG_DONE))?;
            }
        }

        // Inter-node phase.
        if me == root {
            // Receive every other node's blocks. With block-distributed
            // ranks a node's region of the receive buffer is contiguous,
            // so the bulk transfer lands directly in place; otherwise it
            // goes through a staging copy.
            for (n, node_members) in layout.nodes.iter().enumerate() {
                if n == my_node {
                    continue;
                }
                let l = layout.leader(n, root);
                let contiguous = node_members.windows(2).all(|w| w[1] == w[0] + 1);
                if contiguous {
                    with_retry(comm, |c| {
                        c.shm_recv_data(
                            l,
                            TAG_BULK,
                            rb,
                            node_members[0] * count,
                            node_members.len() * count,
                        )
                    })?;
                } else {
                    let tmp = comm.alloc(node_members.len() * count);
                    with_retry(comm, |c| {
                        c.shm_recv_data(l, TAG_BULK, tmp, 0, node_members.len() * count)
                    })?;
                    for (li, &m) in node_members.iter().enumerate() {
                        comm.copy_local(tmp, li * count, rb, m * count, count)?;
                    }
                    comm.free(tmp)?;
                }
            }
        } else {
            with_retry(comm, |c| {
                c.shm_send_data(root, TAG_BULK, rb, 0, members.len() * count)
            })?;
            comm.free(rb)?;
        }
    } else {
        // Member: receive leader token + slot, throttled-write, chain.
        let sb = sendbuf.ok_or(CommError::Protocol("non-root gather needs sendbuf".into()))?;
        let msg = with_retry(comm, |c| c.ctrl_recv(leader, TAG_TOKEN))?;
        if msg.len() != RemoteToken::WIRE_LEN + 8 {
            return Err(CommError::Protocol("bad hier token message".into()));
        }
        let token = RemoteToken::from_bytes(&msg)
            .ok_or_else(|| CommError::Protocol("message is not a remote token".into()))?;
        let off =
            u64::from_le_bytes(msg[16..24].try_into().expect("length checked above")) as usize;
        let _ = on_root_node;

        // Chain position among this node's non-leader members.
        let others: Vec<usize> = members.iter().copied().filter(|&m| m != leader).collect();
        let pos = others
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        if pos >= k {
            with_retry(comm, |c| c.wait_notify(others[pos - k], TAG_CHAIN))?;
        }
        cma_resume(comm, false, token, off, sb, 0, count)?;
        if pos + k < others.len() {
            with_retry(comm, |c| c.notify(others[pos + k], TAG_CHAIN))?;
        }
        if pos + k >= others.len() {
            with_retry(comm, |c| c.notify(leader, TAG_DONE))?;
        }
    }
    Ok(())
}

/// Two-level MPI_Scatter: the root ships each node's chunk to its leader
/// over the bulk path; leaders serve their node with throttled reads.
pub fn hier_scatter<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if k == 0 {
        return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
    }
    let layout = NodeLayout::of(comm);
    let my_node = layout.node_of[me];
    let leader = layout.leader(my_node, root);
    let members = &layout.nodes[my_node];
    if count == 0 {
        return Ok(());
    }

    if me == root {
        let sb = sendbuf.ok_or(CommError::Protocol("root scatter needs sendbuf".into()))?;
        // Ship each remote node its chunk, ordered by local index (no
        // staging needed when the node's ranks are contiguous).
        for (n, node_members) in layout.nodes.iter().enumerate() {
            if n == my_node {
                continue;
            }
            let l = layout.leader(n, root);
            let contiguous = node_members.windows(2).all(|w| w[1] == w[0] + 1);
            if contiguous {
                with_retry(comm, |c| {
                    c.shm_send_data(
                        l,
                        TAG_BULK,
                        sb,
                        node_members[0] * count,
                        node_members.len() * count,
                    )
                })?;
            } else {
                let tmp = comm.alloc(node_members.len() * count);
                for (li, &m) in node_members.iter().enumerate() {
                    comm.copy_local(sb, m * count, tmp, li * count, count)?;
                }
                with_retry(comm, |c| {
                    c.shm_send_data(l, TAG_BULK, tmp, 0, node_members.len() * count)
                })?;
                comm.free(tmp)?;
            }
        }
        // Serve the root's own node with throttled reads from sendbuf.
        serve_node(comm, sb, members, me, count, k, |m| m * count)?;
        if let Some(rb) = recvbuf {
            comm.copy_local(sb, me * count, rb, 0, count)?;
        }
    } else if me == leader {
        // Receive this node's chunk, then serve members.
        let staging = comm.alloc(members.len() * count);
        with_retry(comm, |c| {
            c.shm_recv_data(root, TAG_BULK, staging, 0, members.len() * count)
        })?;
        let my_li = members
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        let rb = recvbuf.ok_or(CommError::Protocol("non-root scatter needs recvbuf".into()))?;
        let li_of = |m: usize| {
            members
                .iter()
                .position(|&x| x == m)
                .expect("member list covers all node ranks")
                * count
        };
        serve_node(comm, staging, members, me, count, k, li_of)?;
        comm.copy_local(staging, my_li * count, rb, 0, count)?;
        comm.free(staging)?;
    } else {
        // Member: token + offset arrive from the leader; throttled read.
        let rb = recvbuf.ok_or(CommError::Protocol("non-root scatter needs recvbuf".into()))?;
        let msg = with_retry(comm, |c| c.ctrl_recv(leader, TAG_TOKEN))?;
        if msg.len() != RemoteToken::WIRE_LEN + 8 {
            return Err(CommError::Protocol("bad hier token message".into()));
        }
        let token = RemoteToken::from_bytes(&msg)
            .ok_or_else(|| CommError::Protocol("message is not a remote token".into()))?;
        let off =
            u64::from_le_bytes(msg[16..24].try_into().expect("length checked above")) as usize;
        let others: Vec<usize> = members.iter().copied().filter(|&m| m != leader).collect();
        let pos = others
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        if pos >= k {
            with_retry(comm, |c| c.wait_notify(others[pos - k], TAG_CHAIN))?;
        }
        cma_resume(comm, true, token, off, rb, 0, count)?;
        if pos + k < others.len() {
            with_retry(comm, |c| c.notify(others[pos + k], TAG_CHAIN))?;
        }
        if pos + k >= others.len() {
            with_retry(comm, |c| c.notify(leader, TAG_DONE))?;
        }
    }
    Ok(())
}

/// Pipelined two-level MPI_Gather (§VII-G's "more advanced designs such
/// as pipelined two-level gather"): identical intra-node throttled
/// phase, but every member acknowledges the leader, and the leader
/// ships each completed wave's blocks to the root immediately — inter-
/// and intra-node transfers overlap instead of serializing.
///
/// Requires block-contiguous rank placement (the `kacc-netsim` cluster
/// layout); falls back to [`hier_gather`] otherwise.
pub fn hier_gather_pipelined<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if k == 0 {
        return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
    }
    let layout = NodeLayout::of(comm);
    if !layout
        .nodes
        .iter()
        .all(|m| m.windows(2).all(|w| w[1] == w[0] + 1))
    {
        return hier_gather(comm, sendbuf, recvbuf, count, root, k);
    }
    let my_node = layout.node_of[me];
    let leader = layout.leader(my_node, root);
    let members = &layout.nodes[my_node];
    if count == 0 {
        return Ok(());
    }

    // Wave structure over the non-leader members, in member order.
    let wave_of = |pos: usize| pos / k;

    if me == leader {
        let rb = if me == root {
            recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?
        } else {
            comm.alloc(members.len() * count)
        };
        let base = if me == root { members[0] * count } else { 0 };
        let token = with_retry(comm, |c| c.expose(rb))?;
        let others: Vec<(usize, usize)> = members
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != me)
            .map(|(li, &m)| (li, m))
            .collect();
        for &(li, m) in &others {
            let mut msg = token.to_bytes().to_vec();
            msg.extend_from_slice(&((base + li * count) as u64).to_le_bytes());
            with_retry(comm, |c| c.ctrl_send(m, TAG_TOKEN, &msg))?;
        }
        let my_li = members
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        match (me == root, sendbuf) {
            (true, Some(sb)) => comm.copy_local(sb, 0, rb, me * count, count)?,
            (true, None) => {}
            (false, sb) => {
                let sb = sb.ok_or(CommError::Protocol("non-root gather needs sendbuf".into()))?;
                comm.copy_local(sb, 0, rb, base + my_li * count, count)?;
            }
        }
        if me == root {
            // The root overlaps by receiving each remote node's waves in
            // order; remote leaders push as waves complete.
            for &(_, m) in &others {
                with_retry(comm, |c| c.wait_notify(m, TAG_DONE))?;
            }
            for (n, node_members) in layout.nodes.iter().enumerate() {
                if n == my_node {
                    continue;
                }
                let l = layout.leader(n, root);
                let waves = node_members.len().div_ceil(k);
                for w in 0..waves {
                    let lo = w * k;
                    let hi = ((w + 1) * k).min(node_members.len());
                    with_retry(comm, |c| {
                        c.shm_recv_data(
                            l,
                            Tag::internal(class::HIER, 16 + w as u32),
                            rb,
                            node_members[lo] * count,
                            (hi - lo) * count,
                        )
                    })?;
                }
            }
        } else {
            // Remote leader: ship each wave as its members complete.
            // (The leader's own block rides with the wave containing it.)
            let waves = members.len().div_ceil(k);
            let mut done = vec![false; members.len()];
            done[my_li] = true;
            for w in 0..waves {
                let lo = w * k;
                let hi = ((w + 1) * k).min(members.len());
                for li in lo..hi {
                    if !done[li] {
                        with_retry(comm, |c| c.wait_notify(members[li], TAG_DONE))?;
                        done[li] = true;
                    }
                }
                with_retry(comm, |c| {
                    c.shm_send_data(
                        root,
                        Tag::internal(class::HIER, 16 + w as u32),
                        rb,
                        lo * count,
                        (hi - lo) * count,
                    )
                })?;
            }
            comm.free(rb)?;
        }
    } else {
        let sb = sendbuf.ok_or(CommError::Protocol("non-root gather needs sendbuf".into()))?;
        let msg = with_retry(comm, |c| c.ctrl_recv(leader, TAG_TOKEN))?;
        if msg.len() != RemoteToken::WIRE_LEN + 8 {
            return Err(CommError::Protocol("bad hier token message".into()));
        }
        let token = RemoteToken::from_bytes(&msg)
            .ok_or_else(|| CommError::Protocol("message is not a remote token".into()))?;
        let off =
            u64::from_le_bytes(msg[16..24].try_into().expect("length checked above")) as usize;
        let others: Vec<usize> = members.iter().copied().filter(|&m| m != leader).collect();
        let pos = others
            .iter()
            .position(|&m| m == me)
            .expect("calling rank is in the member list");
        if pos >= k {
            with_retry(comm, |c| c.wait_notify(others[pos - k], TAG_CHAIN))?;
        }
        cma_resume(comm, false, token, off, sb, 0, count)?;
        if pos + k < others.len() {
            with_retry(comm, |c| c.notify(others[pos + k], TAG_CHAIN))?;
        }
        // Pipelining needs every member's completion, not just the
        // final wave's.
        with_retry(comm, |c| c.notify(leader, TAG_DONE))?;
        let _ = wave_of;
    }
    Ok(())
}

/// Leader side of a throttled intra-node scatter: expose `buf`, hand each
/// member its token + offset, wait for the last wave.
fn serve_node<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    members: &[usize],
    leader: usize,
    count: usize,
    k: usize,
    offset_of: impl Fn(usize) -> usize,
) -> Result<()> {
    let token = with_retry(comm, |c| c.expose(buf))?;
    let others: Vec<usize> = members.iter().copied().filter(|&m| m != leader).collect();
    for &m in &others {
        let mut msg = token.to_bytes().to_vec();
        msg.extend_from_slice(&(offset_of(m) as u64).to_le_bytes());
        with_retry(comm, |c| c.ctrl_send(m, TAG_TOKEN, &msg))?;
    }
    for (w, &m) in others.iter().enumerate() {
        if w + k >= others.len() {
            with_retry(comm, |c| c.wait_notify(m, TAG_DONE))?;
        }
    }
    let _ = count;
    Ok(())
}
