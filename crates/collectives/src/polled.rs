//! Polled-engine execution of compiled schedules.
//!
//! [`execute_polled`] replays a compiled [`Schedule`] on a
//! [`PolledComm`] endpoint — the thread-free twin of [`crate::execute`].
//! It shares the threads executor's entire accounting machinery
//! ([`crate::exec::Ctx`], `Recorder`, `StepKind`) and transliterates the
//! step loop and the full [`RecoveryPolicy`] ladder (transient retries
//! with exponential backoff, short-CMA resume, fallback degradation,
//! deadline-bounded waits) one operation at a time, so a polled
//! execution is bitwise-identical — same virtual times, same
//! [`ScheduleReport`], same recovery actions, same trace spans — to the
//! threads execution of the same plan. The engine-equivalence suite pins
//! this across all six collectives, clean and faulty.
//!
//! The `*_polled` entry points mirror their `*_with_report` twins'
//! validation and degenerate-case handling line for line and then reuse
//! the *same* [`PlanCache`] compile paths, so both engines replay
//! literally the same cached plan objects.

use crate::exec::{
    is_suspect_error, is_transient, proto, recv_deadline_ns, step_peer, Bindings, Ctx, Recorder,
    RecoveryPolicy, ResumeState, ScheduleReport, StepKind, ESRCH,
};
use crate::reduce::combine;
use crate::schedule::{
    compile_allgather, compile_alltoall, compile_bcast, compile_gather, compile_reduce,
    compile_scatter, PlanCache, PlanKey, Schedule, Step,
};
use crate::{
    AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype, GatherAlgo, ReduceAlgo, ReduceOp, ScatterAlgo,
};
use kacc_comm::{BufId, CommError, RemoteToken, Result, Tag};
use kacc_machine::PolledComm;
use kacc_trace::{Tracer, Track};

/// Execute a compiled schedule on a polled endpoint — the thread-free
/// twin of [`crate::execute`].
pub async fn execute_polled(
    comm: &mut PolledComm,
    sched: &Schedule,
    bind: &Bindings,
) -> Result<ScheduleReport> {
    let tracer = comm.tracer();
    execute_polled_with_policy(comm, sched, bind, &tracer, &RecoveryPolicy::default()).await
}

/// [`execute_polled`] with an explicit tracer — the twin of
/// [`crate::execute_traced`].
pub async fn execute_polled_traced(
    comm: &mut PolledComm,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
) -> Result<ScheduleReport> {
    execute_polled_with_policy(comm, sched, bind, tracer, &RecoveryPolicy::default()).await
}

/// [`execute_polled_traced`] with an explicit [`RecoveryPolicy`] — the
/// twin of [`crate::execute_with_policy`], recovery ladder included.
pub async fn execute_polled_with_policy(
    comm: &mut PolledComm,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
    policy: &RecoveryPolicy,
) -> Result<ScheduleReport> {
    let mut resume = None;
    let (result, report) =
        execute_resumable_polled(comm, sched, bind, tracer, policy, &mut resume).await;
    // Public entry points never resume: abandon any torn-execution
    // state so scratch is freed exactly as it always was.
    if let Some(state) = resume {
        abandon_polled(comm, state);
    }
    result.map(|()| report)
}

/// Free a torn execution's preserved scratch on a polled endpoint — the
/// twin of `ResumeState::abandon` (whose `Comm` bound the polled
/// endpoint does not satisfy).
pub(crate) fn abandon_polled(comm: &mut PolledComm, state: ResumeState) {
    let (temps, _) = state.into_parts();
    for t in temps {
        let _ = comm.free(t);
    }
}

/// [`execute_polled_with_policy`] with partial-progress resume — the
/// twin of `exec::execute_resumable`, same `ResumeState` handoff.
pub(crate) async fn execute_resumable_polled(
    comm: &mut PolledComm,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
    policy: &RecoveryPolicy,
    resume: &mut Option<ResumeState>,
) -> (Result<()>, ScheduleReport) {
    if sched.rank != comm.rank() || sched.p != comm.size() {
        let e = proto(format!(
            "schedule compiled for rank {}/{} executed on rank {}/{}",
            sched.rank,
            sched.p,
            comm.rank(),
            comm.size()
        ));
        return (Err(e), ScheduleReport::default());
    }

    let (mut ctx, start) = match resume.take() {
        Some(st) if st.matches(sched) => {
            let start = st.next_step().min(sched.steps.len());
            let (temps, regs) = st.into_parts();
            (Ctx { bind, temps, regs }, start)
        }
        Some(st) => {
            // Shape drifted under the caller (different plan): resuming
            // would corrupt state. Start over.
            abandon_polled(comm, st);
            (
                Ctx {
                    bind,
                    temps: sched.temps.iter().map(|&len| comm.alloc(len)).collect(),
                    regs: vec![None; sched.token_regs],
                },
                0,
            )
        }
        None => (
            Ctx {
                bind,
                temps: sched.temps.iter().map(|&len| comm.alloc(len)).collect(),
                regs: vec![None; sched.token_regs],
            },
            0,
        ),
    };
    let mut rec = Recorder::new(tracer, Track::Rank(comm.rank()), sched.class);

    let t_start = comm.time_ns();
    let result = run_steps(comm, sched, &mut ctx, &mut rec, policy, start).await;
    rec.finish(comm.time_ns().saturating_sub(t_start));

    match result {
        Ok(()) => {
            for t in ctx.temps.drain(..) {
                let _ = comm.free(t);
            }
            (Ok(()), rec.report)
        }
        Err(e) => {
            *resume = Some(ResumeState::new(
                std::mem::take(&mut ctx.temps),
                std::mem::take(&mut ctx.regs),
                rec.report.completed_steps as usize,
            ));
            (Err(e), rec.report)
        }
    }
}

/// Sleep the policy's exponential backoff for the `attempt`-th
/// consecutive failure (1-based) — the twin of `exec::backoff`.
async fn backoff(
    comm: &mut PolledComm,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    attempt: u32,
) {
    if policy.backoff_ns == 0 {
        return;
    }
    let ns = policy.backoff_ns << (attempt.min(6) - 1).min(5);
    let t0 = comm.time_ns();
    comm.sleep_ns(ns).await;
    rec.recovery("retry:backoff", 0, t0, comm.time_ns());
}

/// Run one non-resumable operation under the transient-retry loop — the
/// twin of `exec::retry_transient`. A macro because the retried
/// operation is an `.await`ed expression re-evaluated per attempt, which
/// a closure cannot express without boxing every call.
macro_rules! retry_transient {
    ($comm:ident, $rec:ident, $policy:ident, $op:expr) => {{
        let mut attempts = 0u32;
        loop {
            let t0 = $comm.time_ns();
            match $op {
                Ok(v) => break Ok(v),
                Err(e) if is_transient(&e) => {
                    $rec.recovery("fault:transient", 0, t0, $comm.time_ns());
                    attempts += 1;
                    if attempts > $policy.max_retries {
                        break Err(e);
                    }
                    backoff($comm, $rec, $policy, attempts).await;
                }
                Err(e) => break Err(e),
            }
        }
    }};
}

/// A CMA read or write with the full recovery ladder — the twin of
/// `exec::recovered_cma`.
#[allow(clippy::too_many_arguments)]
async fn recovered_cma(
    comm: &mut PolledComm,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    read: bool,
    token: RemoteToken,
    remote_off: usize,
    local: BufId,
    local_off: usize,
    len: usize,
) -> Result<()> {
    let mut at = 0usize;
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = if read {
            comm.cma_read(token, remote_off + at, local, local_off + at, len - at)
                .await
        } else {
            comm.cma_write(token, remote_off + at, local, local_off + at, len - at)
                .await
        };
        let e = match r {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        match e {
            CommError::Truncated { got, .. } if got > 0 => {
                // Forward progress: resume past the bytes that landed.
                rec.recovery("fault:short", got, t0, comm.time_ns());
                at += got.min(len - at);
                attempts = 0;
                if at >= len {
                    return Ok(());
                }
            }
            CommError::Truncated { .. } => {
                // Zero-progress truncation is just a transient failure.
                rec.recovery("fault:short", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    let orig = CommError::Truncated {
                        wanted: len,
                        got: at,
                    };
                    return fallback_or(
                        comm, rec, policy, read, orig, token, remote_off, at, local, local_off, len,
                    )
                    .await;
                }
                backoff(comm, rec, policy, attempts).await;
            }
            CommError::PermissionDenied => {
                // Revoked access never heals by retrying the same path.
                rec.recovery("fault:denied", 0, t0, comm.time_ns());
                return fallback_or(
                    comm,
                    rec,
                    policy,
                    read,
                    CommError::PermissionDenied,
                    token,
                    remote_off,
                    at,
                    local,
                    local_off,
                    len,
                )
                .await;
            }
            e if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return fallback_or(
                        comm, rec, policy, read, e, token, remote_off, at, local, local_off, len,
                    )
                    .await;
                }
                backoff(comm, rec, policy, attempts).await;
            }
            e => return Err(e),
        }
    }
}

/// Finish the remainder of a failed CMA step over the two-copy fallback,
/// or surface the original error — the twin of `exec::fallback_or`.
#[allow(clippy::too_many_arguments)]
async fn fallback_or(
    comm: &mut PolledComm,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    read: bool,
    orig: CommError,
    token: RemoteToken,
    remote_off: usize,
    at: usize,
    local: BufId,
    local_off: usize,
    len: usize,
) -> Result<()> {
    let peer_dead = matches!(orig, CommError::Os(ESRCH) | CommError::PeerDead(_));
    if !policy.cma_fallback || peer_dead {
        return Err(orig);
    }
    let rest = len - at;
    let t0 = comm.time_ns();
    let r = if read {
        comm.shm_fallback_read(token, remote_off + at, local, local_off + at, rest)
            .await
    } else {
        comm.shm_fallback_write(token, remote_off + at, local, local_off + at, rest)
            .await
    };
    match r {
        Ok(()) => {
            let name = if read {
                "fallback:read"
            } else {
                "fallback:write"
            };
            rec.recovery(name, rest, t0, comm.time_ns());
            Ok(())
        }
        Err(_) => Err(orig),
    }
}

/// A control receive under the policy — the twin of
/// `exec::recovered_ctrl_recv`.
async fn recovered_ctrl_recv(
    comm: &mut PolledComm,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    from: usize,
    tag: Tag,
) -> Result<Vec<u8>> {
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = match recv_deadline_ns(policy) {
            Some(ns) => match comm.ctrl_recv_deadline(from, tag, ns).await {
                Ok(Some(body)) => Ok(body),
                Ok(None) => Err(CommError::Timeout { waited_ns: ns }),
                Err(e) => Err(e),
            },
            None => comm.ctrl_recv(from, tag).await,
        };
        match r {
            Ok(body) => return Ok(body),
            Err(e @ CommError::Timeout { .. }) => {
                rec.recovery("fault:timeout", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
            }
            Err(e) if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
                backoff(comm, rec, policy, attempts).await;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A bulk shared-memory receive under the policy — the twin of
/// `exec::recovered_shm_recv`.
#[allow(clippy::too_many_arguments)]
async fn recovered_shm_recv(
    comm: &mut PolledComm,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    from: usize,
    tag: Tag,
    dst: BufId,
    off: usize,
    len: usize,
) -> Result<()> {
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = match recv_deadline_ns(policy) {
            Some(ns) => match comm.shm_recv_deadline(from, tag, dst, off, len, ns).await {
                Ok(true) => Ok(()),
                Ok(false) => Err(CommError::Timeout { waited_ns: ns }),
                Err(e) => Err(e),
            },
            None => comm.shm_recv_data(from, tag, dst, off, len).await,
        };
        match r {
            Ok(()) => return Ok(()),
            Err(e @ CommError::Timeout { .. }) => {
                rec.recovery("fault:timeout", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
            }
            Err(e) if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
                backoff(comm, rec, policy, attempts).await;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run every step, interposing the liveness watchdog — the twin of
/// `exec::run_steps` (see there for the suspect/tolerant semantics).
async fn run_steps(
    comm: &mut PolledComm,
    sched: &Schedule,
    ctx: &mut Ctx<'_>,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    start: usize,
) -> Result<()> {
    rec.report.completed_steps = start as u64;
    let mut suspects: Vec<usize> = Vec::new();
    for step in &sched.steps[start..] {
        let t0 = comm.time_ns();
        let m = &policy.membership;
        if m.watch && m.tolerant {
            if let Some(peer) = step_peer(step, ctx) {
                if suspects.contains(&peer) {
                    // A peer that already missed one deadline in this
                    // run will not answer later steps either; skipping
                    // immediately bounds a rank's detection lateness to
                    // one timeout chain instead of one per torn
                    // exchange, which keeps stragglers inside the
                    // agreement's refutation window.
                    rec.recovery("membership:suspect", peer, t0, t0);
                    rec.report.completed_steps += 1;
                    continue;
                }
            }
        }
        if let Err(e) = run_one_step(comm, step, ctx, rec, policy, t0).await {
            let m = &policy.membership;
            if m.watch && is_suspect_error(&e) {
                if let Some(peer) = step_peer(step, ctx) {
                    rec.recovery("membership:suspect", peer, t0, comm.time_ns());
                    if m.tolerant {
                        // A tolerated failure still moves the watermark:
                        // the executor is past this step for good.
                        suspects.push(peer);
                        rec.report.completed_steps += 1;
                        continue;
                    }
                    return Err(CommError::PeerDead(peer));
                }
            }
            return Err(e);
        }
        rec.report.completed_steps += 1;
    }
    Ok(())
}

/// Execute one IR step under the recovery policy — the twin of
/// `exec::run_one_step`.
async fn run_one_step(
    comm: &mut PolledComm,
    step: &Step,
    ctx: &mut Ctx<'_>,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    t0: u64,
) -> Result<()> {
    match step {
        Step::Expose { slot, reg } => {
            let buf = ctx.slot(*slot)?;
            let token = retry_transient!(comm, rec, policy, comm.expose(buf).await)?;
            ctx.set_token(*reg, token)?;
            rec.add(StepKind::Expose, 0, t0, comm.time_ns());
        }
        Step::CmaRead {
            token,
            remote_off,
            dst,
            dst_off,
            len,
        } => {
            let t = ctx.token(*token)?;
            let dst = ctx.slot(*dst)?;
            recovered_cma(comm, rec, policy, true, t, *remote_off, dst, *dst_off, *len).await?;
            rec.add(StepKind::CmaRead, *len, t0, comm.time_ns());
        }
        Step::CmaWrite {
            token,
            remote_off,
            src,
            src_off,
            len,
        } => {
            let t = ctx.token(*token)?;
            let src = ctx.slot(*src)?;
            recovered_cma(
                comm,
                rec,
                policy,
                false,
                t,
                *remote_off,
                src,
                *src_off,
                *len,
            )
            .await?;
            rec.add(StepKind::CmaWrite, *len, t0, comm.time_ns());
        }
        Step::CopyLocal {
            src,
            src_off,
            dst,
            dst_off,
            len,
        } => {
            let src = ctx.slot(*src)?;
            let dst = ctx.slot(*dst)?;
            comm.copy_local(src, *src_off, dst, *dst_off, *len).await?;
            rec.add(StepKind::CopyLocal, *len, t0, comm.time_ns());
        }
        Step::CtrlSend { to, tag, payload } => {
            let body = ctx.render_payload(payload)?;
            retry_transient!(comm, rec, policy, comm.ctrl_send(*to, *tag, &body).await)?;
            rec.add(StepKind::CtrlSend, body.len(), t0, comm.time_ns());
        }
        Step::CtrlRecv { from, tag, into } => {
            let body = recovered_ctrl_recv(comm, rec, policy, *from, *tag).await?;
            let n = body.len();
            ctx.apply_recv(into, body)?;
            rec.add(StepKind::CtrlRecv, n, t0, comm.time_ns());
        }
        Step::Notify { to, tag } => {
            retry_transient!(comm, rec, policy, comm.notify(*to, *tag).await)?;
            rec.add(StepKind::Notify, 0, t0, comm.time_ns());
        }
        Step::WaitNotify { from, tag } => {
            // A notification is a 0-byte control message; route it
            // through the bounded receive so the wait obeys the step
            // timeout (mirrors `CommExt::wait_notify`).
            let body = recovered_ctrl_recv(comm, rec, policy, *from, *tag).await?;
            if !body.is_empty() {
                return Err(proto(format!(
                    "expected 0-byte notification from rank {from}, got {} bytes",
                    body.len()
                )));
            }
            rec.add(StepKind::WaitNotify, 0, t0, comm.time_ns());
        }
        Step::ShmSend {
            to,
            tag,
            src,
            off,
            len,
        } => {
            let src = ctx.slot(*src)?;
            retry_transient!(
                comm,
                rec,
                policy,
                comm.shm_send_data(*to, *tag, src, *off, *len).await
            )?;
            rec.add(StepKind::ShmSend, *len, t0, comm.time_ns());
        }
        Step::ShmRecv {
            from,
            tag,
            dst,
            off,
            len,
        } => {
            let dst = ctx.slot(*dst)?;
            recovered_shm_recv(comm, rec, policy, *from, *tag, dst, *off, *len).await?;
            rec.add(StepKind::ShmRecv, *len, t0, comm.time_ns());
        }
        Step::Reduce {
            op,
            dtype,
            acc,
            acc_off,
            src,
            src_off,
            len,
        } => {
            let acc_buf = ctx.slot(*acc)?;
            let src_buf = ctx.slot(*src)?;
            let mut acc_bytes = vec![0u8; *len];
            let mut src_bytes = vec![0u8; *len];
            comm.read_local(acc_buf, *acc_off, &mut acc_bytes)?;
            comm.read_local(src_buf, *src_off, &mut src_bytes)?;
            combine(&mut acc_bytes, &src_bytes, *dtype, *op);
            comm.write_local(acc_buf, *acc_off, &acc_bytes)?;
            rec.add(StepKind::Reduce, *len, t0, comm.time_ns());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Entry twins: same validation, same PlanCache paths, polled execution.
// ---------------------------------------------------------------------

/// MPI_Scatter on the polled engine — the twin of
/// [`crate::scatter`](fn@crate::scatter).
pub async fn scatter_polled(
    comm: &mut PolledComm,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let counts = vec![count; comm.size()];
    scatterv_polled(comm, algo, sendbuf, recvbuf, &counts, None, root).await
}

/// MPI_Scatterv on the polled engine — the twin of
/// [`crate::scatterv_with_report`]. Validation and degenerate handling
/// mirror `scatter::prepare` line for line.
pub async fn scatterv_polled(
    comm: &mut PolledComm,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if counts.len() != p || displs.is_some_and(|d| d.len() != p) {
        return Err(CommError::Protocol(
            "counts/displs length must equal size".into(),
        ));
    }
    let layout = crate::scatter::build_layout(counts, displs);
    if me == root {
        let sb = sendbuf.ok_or(CommError::Protocol("root scatter needs sendbuf".into()))?;
        let need = layout
            .iter()
            .map(|&(off, len)| off + len)
            .max()
            .unwrap_or(0);
        let cap = comm.buf_len(sb)?;
        if cap < need {
            return Err(CommError::OutOfRange {
                buf: sb.0,
                off: 0,
                len: need,
                cap,
            });
        }
    } else if recvbuf.is_none() && counts[me] > 0 {
        return Err(CommError::Protocol("non-root scatter needs recvbuf".into()));
    }
    if p == 1 {
        let sb = sendbuf.expect("validated: sender binds sendbuf");
        let (off, len) = layout[root];
        if let (Some(rb), true) = (recvbuf, len > 0) {
            comm.copy_local(sb, off, rb, 0, len).await?;
        }
        return Ok(None);
    }
    if counts.iter().all(|&c| c == 0) {
        return Ok(None);
    }
    if let ScatterAlgo::ThrottledRead { k } = algo {
        if k == 0 {
            return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
        }
    }
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Scatter {
            algo,
            p,
            rank: me,
            counts: counts.to_vec(),
            displs: displs.map(<[usize]>::to_vec),
            root,
            has_recvbuf: recvbuf.is_some(),
        },
        || compile_scatter(algo, p, me, &layout, root, recvbuf.is_some()),
    );
    execute_polled(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: recvbuf,
        },
    )
    .await
    .map(Some)
}

/// MPI_Gatherv on the polled engine — the twin of
/// [`crate::gatherv_with_report`]. Validation mirrors `gather::prepare`.
pub async fn gatherv_polled(
    comm: &mut PolledComm,
    algo: GatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if counts.len() != p || displs.is_some_and(|d| d.len() != p) {
        return Err(CommError::Protocol(
            "counts/displs length must equal size".into(),
        ));
    }
    let layout = crate::scatter::build_layout(counts, displs);
    if me == root {
        let rb = recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?;
        let need = layout
            .iter()
            .map(|&(off, len)| off + len)
            .max()
            .unwrap_or(0);
        let cap = comm.buf_len(rb)?;
        if cap < need {
            return Err(CommError::OutOfRange {
                buf: rb.0,
                off: 0,
                len: need,
                cap,
            });
        }
    } else if sendbuf.is_none() && counts[me] > 0 {
        return Err(CommError::Protocol("non-root gather needs sendbuf".into()));
    }
    if p == 1 {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        let (off, len) = layout[root];
        if let (Some(sb), true) = (sendbuf, len > 0) {
            comm.copy_local(sb, 0, rb, off, len).await?;
        }
        return Ok(None);
    }
    if counts.iter().all(|&c| c == 0) {
        return Ok(None);
    }
    if let GatherAlgo::ThrottledWrite { k } = algo {
        if k == 0 {
            return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
        }
    }
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Gather {
            algo,
            p,
            rank: me,
            counts: counts.to_vec(),
            displs: displs.map(<[usize]>::to_vec),
            root,
            has_sendbuf: sendbuf.is_some(),
        },
        || compile_gather(algo, p, me, &layout, root, sendbuf.is_some()),
    );
    execute_polled(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: recvbuf,
        },
    )
    .await
    .map(Some)
}

/// MPI_Allgather on the polled engine — the twin of
/// [`crate::allgather_with_report`]. Validation mirrors
/// `allgather::validate`.
pub async fn allgather_polled(
    comm: &mut PolledComm,
    algo: AllgatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    let need = p * count;
    let cap = comm.buf_len(recvbuf)?;
    if cap < need {
        return Err(CommError::OutOfRange {
            buf: recvbuf.0,
            off: 0,
            len: need,
            cap,
        });
    }
    if count == 0 || p == 1 {
        if let (Some(sb), true) = (sendbuf, count > 0) {
            comm.copy_local(sb, 0, recvbuf, me * count, count).await?;
        }
        return Ok(None);
    }
    // Normalize the ring stride mod p so equivalent strides share a plan.
    let algo = match algo {
        AllgatherAlgo::RingNeighbor { j } => {
            if crate::allgather::gcd(j % p, p) != 1 {
                return Err(CommError::Protocol(format!(
                    "ring-neighbor stride {j} shares a factor with p={p}"
                )));
            }
            AllgatherAlgo::RingNeighbor { j: j % p }
        }
        other => other,
    };
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Allgather {
            algo,
            p,
            rank: me,
            count,
            has_sendbuf: sendbuf.is_some(),
        },
        || compile_allgather(algo, p, me, count, sendbuf.is_some()),
    );
    execute_polled(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: Some(recvbuf),
        },
    )
    .await
    .map(Some)
}

/// MPI_Alltoall on the polled engine — the twin of
/// [`crate::alltoall_with_report`]. Validation and in-place staging
/// mirror `alltoall::prepare` / `alltoall::stage_in_place`.
pub async fn alltoall_polled(
    comm: &mut PolledComm,
    algo: AlltoallAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    let need = p * count;
    let cap = comm.buf_len(recvbuf)?;
    if cap < need {
        return Err(CommError::OutOfRange {
            buf: recvbuf.0,
            off: 0,
            len: need,
            cap,
        });
    }
    if let Some(sb) = sendbuf {
        let scap = comm.buf_len(sb)?;
        if scap < need {
            return Err(CommError::OutOfRange {
                buf: sb.0,
                off: 0,
                len: need,
                cap: scap,
            });
        }
    }
    if count == 0 {
        return Ok(None);
    }
    if p == 1 {
        if let Some(sb) = sendbuf {
            comm.copy_local(sb, 0, recvbuf, 0, count).await?;
        }
        return Ok(None);
    }
    // MPI_IN_PLACE: stage the outgoing blocks so concurrent peers never
    // observe half-overwritten source data.
    let (source, staged) = match sendbuf {
        Some(sb) => (sb, None),
        None => {
            let tmp = comm.alloc(need);
            comm.copy_local(recvbuf, 0, tmp, 0, need).await?;
            (tmp, Some(tmp))
        }
    };
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Alltoall {
            algo,
            p,
            rank: me,
            count,
        },
        || compile_alltoall(algo, p, me, count),
    );
    let result = execute_polled(
        comm,
        &plan,
        &Bindings {
            send: Some(source),
            recv: Some(recvbuf),
        },
    )
    .await;
    if let Some(tmp) = staged {
        comm.free(tmp)?;
    }
    result.map(Some)
}

/// MPI_Bcast on the polled engine — the twin of
/// [`crate::bcast_with_report`]. Validation mirrors `bcast::validate`.
pub async fn bcast_polled(
    comm: &mut PolledComm,
    algo: BcastAlgo,
    buf: BufId,
    count: usize,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    let cap = comm.buf_len(buf)?;
    if cap < count {
        return Err(CommError::OutOfRange {
            buf: buf.0,
            off: 0,
            len: count,
            cap,
        });
    }
    if p == 1 || count == 0 {
        return Ok(None);
    }
    if let BcastAlgo::KNomial { radix } = algo {
        if radix < 2 {
            return Err(CommError::Protocol("k-nomial radix must be ≥ 2".into()));
        }
    }
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Bcast {
            algo,
            p,
            rank: me,
            count,
            root,
        },
        || compile_bcast(algo, p, me, count, root),
    );
    execute_polled(
        comm,
        &plan,
        &Bindings {
            send: Some(buf),
            recv: None,
        },
    )
    .await
    .map(Some)
}

/// MPI_Reduce on the polled engine — the twin of
/// [`crate::reduce_with_report`]. Validation mirrors `reduce::prepare`.
#[allow(clippy::too_many_arguments)]
pub async fn reduce_polled(
    comm: &mut PolledComm,
    algo: ReduceAlgo,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if !count.is_multiple_of(dtype.width()) {
        return Err(CommError::Protocol(format!(
            "count {count} is not a multiple of the {dtype:?} width"
        )));
    }
    if me == root && recvbuf.is_none() {
        return Err(CommError::Protocol("root reduce needs recvbuf".into()));
    }
    if let ReduceAlgo::KNomialTree { radix } = algo {
        if radix < 2 {
            return Err(CommError::Protocol("tree radix must be ≥ 2".into()));
        }
    }
    if count == 0 {
        return Ok(None);
    }
    if p == 1 {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        comm.copy_local(sendbuf, 0, rb, 0, count).await?;
        return Ok(None);
    }
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Reduce {
            algo,
            p,
            rank: me,
            count,
            dtype,
            op,
            root,
        },
        || compile_reduce(algo, p, me, count, dtype, op, root),
    );
    execute_polled(
        comm,
        &plan,
        &Bindings {
            send: Some(sendbuf),
            recv: recvbuf,
        },
    )
    .await
    .map(Some)
}
