//! All-to-all non-personalized communication: MPI_Allgather (§V-A).
//!
//! The public entry point compiles to a [`crate::schedule::Schedule`]
//! (cached in the global [`PlanCache`]) and replays it through the
//! generic executor; `allgather_legacy` keeps the direct implementation
//! for equivalence tests.

use crate::class;
use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_allgather, PlanCache, PlanKey};
use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

/// Allgather algorithm selection (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllgatherAlgo {
    /// §V-A1 generalized ring: in step `i` each rank reads block
    /// `(rank − i·j)` from neighbor `rank − j`, chained by notifications.
    /// Correct only when `gcd(j, p) = 1`; `j = 1` is the classic ring.
    /// On multi-socket nodes small `j` keeps most reads intra-socket.
    RingNeighbor {
        /// Neighbor stride.
        j: usize,
    },
    /// §V-A2: read every block directly from its original source
    /// (step `i` reads from `rank − i`). Always-valid source buffers ⇒
    /// no per-step synchronization, and contention-free absent skew.
    RingSourceRead,
    /// §V-A2 write variant: step `i` writes own block to `rank + i`.
    RingSourceWrite,
    /// §V-A3: recursive doubling (⌈log₂ p⌉ exchange rounds for
    /// power-of-two p; non-power-of-two pays extra block transfers).
    RecursiveDoubling,
    /// §V-A4: Bruck's dissemination with the final rotation.
    Bruck,
}

const TAG_RING: Tag = Tag::internal(class::ALLGATHER, 0);
const TAG_RD: Tag = Tag::internal(class::ALLGATHER, 1);
const TAG_BRUCK: Tag = Tag::internal(class::ALLGATHER, 2);

/// MPI_Allgather: every rank contributes `count` bytes (from `sendbuf`,
/// or already sitting at its slot of `recvbuf` under `MPI_IN_PLACE` =
/// `None`); every rank ends with all `p` blocks in rank order in its
/// `p·count`-byte `recvbuf`.
pub fn allgather<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AllgatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    allgather_with_report(comm, algo, sendbuf, recvbuf, count).map(|_| ())
}

/// [`allgather`] returning the executor's per-step accounting. `None`
/// when the call was satisfied without a schedule (single rank or zero
/// count).
pub fn allgather_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AllgatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<Option<ScheduleReport>> {
    let p = comm.size();
    let me = comm.rank();
    if !validate(comm, sendbuf, recvbuf, count)? {
        return Ok(None);
    }
    // Normalize the ring stride mod p so equivalent strides share a plan.
    let algo = match algo {
        AllgatherAlgo::RingNeighbor { j } => {
            if gcd(j % p, p) != 1 {
                return Err(CommError::Protocol(format!(
                    "ring-neighbor stride {j} shares a factor with p={p}"
                )));
            }
            AllgatherAlgo::RingNeighbor { j: j % p }
        }
        other => other,
    };
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Allgather {
            algo,
            p,
            rank: me,
            count,
            has_sendbuf: sendbuf.is_some(),
        },
        || compile_allgather(algo, p, me, count, sendbuf.is_some()),
    );
    execute(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: Some(recvbuf),
        },
    )
    .map(Some)
}

/// Shared validation; `Ok(false)` means the degenerate case was handled.
fn validate<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<bool> {
    let p = comm.size();
    let me = comm.rank();
    let need = p * count;
    let cap = comm.buf_len(recvbuf)?;
    if cap < need {
        return Err(CommError::OutOfRange {
            buf: recvbuf.0,
            off: 0,
            len: need,
            cap,
        });
    }
    if count == 0 || p == 1 {
        if let (Some(sb), true) = (sendbuf, count > 0) {
            comm.copy_local(sb, 0, recvbuf, me * count, count)?;
        }
        return Ok(false);
    }
    Ok(true)
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
pub fn allgather_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AllgatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    if !validate(comm, sendbuf, recvbuf, count)? {
        return Ok(());
    }
    match algo {
        AllgatherAlgo::RingNeighbor { j } => {
            if gcd(j % p, p) != 1 {
                return Err(CommError::Protocol(format!(
                    "ring-neighbor stride {j} shares a factor with p={p}"
                )));
            }
            ring_neighbor(comm, sendbuf, recvbuf, count, j % p)
        }
        AllgatherAlgo::RingSourceRead => ring_source(comm, sendbuf, recvbuf, count, false),
        AllgatherAlgo::RingSourceWrite => ring_source(comm, sendbuf, recvbuf, count, true),
        AllgatherAlgo::RecursiveDoubling => recursive_doubling(comm, sendbuf, recvbuf, count),
        AllgatherAlgo::Bruck => bruck(comm, sendbuf, recvbuf, count),
    }
}

/// Ring-neighbor allgather over arbitrary per-rank `(offset, len)`
/// ranges of a common buffer layout: after completion every rank's
/// buffer holds every rank's range. Used by variable-count collectives
/// (Rabenseifner's chunk allgather, allgatherv).
pub(crate) fn allgather_ranges<C: Comm + ?Sized>(
    comm: &mut C,
    buf: BufId,
    range_of: &dyn Fn(usize) -> (usize, usize),
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let token = comm.expose(buf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    let left = (me + p - 1) % p;
    let right = (me + 1) % p;
    let left_tok = RemoteToken::from_bytes(&tokens[left])
        .ok_or(CommError::Protocol("bad range-allgather token".into()))?;
    let tag = Tag::internal(class::ALLGATHER, 48);
    comm.notify(right, tag)?;
    for i in 1..p {
        let block = (me + p - i) % p;
        comm.wait_notify(left, tag)?;
        let (off, len) = range_of(block);
        if len > 0 {
            comm.cma_read(left_tok, off, buf, off, len)?;
        }
        if i < p - 1 {
            comm.notify(right, tag)?;
        }
    }
    smcoll::sm_barrier(comm)?;
    Ok(())
}

pub(crate) fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

fn place_own<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    if let Some(sb) = sendbuf {
        let me = comm.rank();
        comm.copy_local(sb, 0, recvbuf, me * count, count)?;
    }
    Ok(())
}

/// Generalized ring over neighbor stride `j`: reads pull from the
/// neighbor's *receive* buffer, so each step must wait until the
/// neighbor has committed the block being forwarded (§V-A1).
fn ring_neighbor<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
    j: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    place_own(comm, sendbuf, recvbuf, count)?;
    let token = comm.expose(recvbuf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    let left = (me + p - j) % p;
    let right = (me + j) % p;
    let left_tok = RemoteToken::from_bytes(&tokens[left])
        .ok_or(CommError::Protocol("bad ring token".into()))?;

    // Own block is ready for our right neighbor immediately.
    comm.notify(right, TAG_RING)?;
    for i in 1..p {
        // Block (me − i·j) arrives from the left neighbor, which got it
        // at step i−1 (or owns it when i == 1).
        let block = (me + p - (i * j) % p) % p;
        comm.wait_notify(left, TAG_RING)?;
        comm.cma_read(left_tok, block * count, recvbuf, block * count, count)?;
        if i < p - 1 {
            comm.notify(right, TAG_RING)?;
        }
    }
    // The left neighbor may still need to read our last block; ensure
    // buffer validity before returning.
    smcoll::sm_barrier(comm)?;
    Ok(())
}

/// Direct-from-source ring: step `i` reads block `rank − i` from its
/// original owner (read variant) or writes own block to `rank + i`
/// (write variant). Source/destination buffers are valid from the start,
/// so only an initial token allgather and a final barrier are needed.
fn ring_source<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
    write: bool,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    place_own(comm, sendbuf, recvbuf, count)?;
    // Read variant exposes the contribution (sendbuf if separate, else
    // the recvbuf slot); write variant exposes the whole recvbuf.
    let (token, read_from_slot) = match (write, sendbuf) {
        (false, Some(sb)) => (comm.expose(sb)?, false),
        _ => (comm.expose(recvbuf)?, true),
    };
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;

    for i in 1..p {
        if write {
            let dst = (me + i) % p;
            let tok = RemoteToken::from_bytes(&tokens[dst])
                .ok_or(CommError::Protocol("bad ring-source token".into()))?;
            // Everyone's recvbuf is exposed in the write variant; deposit
            // our block at our slot.
            let src_off = me * count;
            comm.cma_write(tok, me * count, recvbuf, src_off, count)?;
        } else {
            let src = (me + p - i) % p;
            let tok = RemoteToken::from_bytes(&tokens[src])
                .ok_or(CommError::Protocol("bad ring-source token".into()))?;
            let remote_off = if read_from_slot { src * count } else { 0 };
            comm.cma_read(tok, remote_off, recvbuf, src * count, count)?;
        }
    }
    smcoll::sm_barrier(comm)?;
    Ok(())
}

/// Recursive doubling with explicit have-set tracking, which handles
/// non-power-of-two p by transferring each missing block individually —
/// reproducing the paper's observation that RD loses its advantage off
/// powers of two (§V-A3, Fig 10b).
fn recursive_doubling<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    place_own(comm, sendbuf, recvbuf, count)?;
    let token = comm.expose(recvbuf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;

    let mut have = vec![false; p];
    have[me] = true;
    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let partner = me ^ dist;
        let tag = Tag::internal(class::ALLGATHER, 16 + round);
        if partner < p {
            // Exchange have-sets, then pull the partner's blocks we lack.
            let my_have: Vec<u8> = have.iter().map(|&h| h as u8).collect();
            comm.ctrl_send(partner, tag, &my_have)?;
            let their_have = comm.ctrl_recv(partner, tag)?;
            if their_have.len() != p {
                return Err(CommError::Protocol("bad RD have-set".into()));
            }
            let tok = RemoteToken::from_bytes(&tokens[partner])
                .ok_or(CommError::Protocol("bad RD token".into()))?;
            for b in 0..p {
                if their_have[b] != 0 && !have[b] {
                    comm.cma_read(tok, b * count, recvbuf, b * count, count)?;
                    have[b] = true;
                }
            }
        }
        dist <<= 1;
        round += 1;
    }
    // Non-power-of-two: ranks whose hypercube was truncated may still
    // miss blocks; sweep them from the ring predecessor that must have
    // everything only if needed.
    if have.iter().any(|&h| !h) {
        // Find any rank guaranteed complete: rank 0 always pairs inside
        // the surviving hypercube prefix... fall back to direct source
        // reads, which are always valid.
        for b in 0..p {
            if !have[b] {
                let tok = RemoteToken::from_bytes(&tokens[b])
                    .ok_or(CommError::Protocol("bad RD token".into()))?;
                comm.cma_read(tok, b * count, recvbuf, b * count, count)?;
                have[b] = true;
            }
        }
    }
    let _ = TAG_RD;
    smcoll::sm_barrier(comm)?;
    Ok(())
}

/// Bruck dissemination: accumulate blocks at the front of a staging
/// buffer in me-relative order, then rotate into rank order (§V-A4).
fn bruck<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    // Staging buffer: slot s holds block (me + s) mod p once filled.
    let temp = comm.alloc(p * count);
    match sendbuf {
        Some(sb) => comm.copy_local(sb, 0, temp, 0, count)?,
        None => comm.copy_local(recvbuf, me * count, temp, 0, count)?,
    }
    let token = comm.expose(temp)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;

    let mut filled = 1usize;
    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let src = (me + dist) % p;
        let dst = (me + p - dist) % p;
        let tag = Tag::internal(class::ALLGATHER, 32 + round);
        let take = dist.min(p - filled);
        // The source must have committed its first `take` slots, which
        // happened by the end of its round−1; chain notifications.
        comm.notify(dst, tag)?;
        comm.wait_notify(src, tag)?;
        let tok = RemoteToken::from_bytes(&tokens[src])
            .ok_or(CommError::Protocol("bad bruck token".into()))?;
        comm.cma_read(tok, 0, temp, filled * count, take * count)?;
        filled += take;
        dist <<= 1;
        round += 1;
    }
    debug_assert_eq!(filled, p);

    // Final rotation: staging slot s = block (me + s) mod p.
    for s in 0..p {
        let b = (me + s) % p;
        comm.copy_local(temp, s * count, recvbuf, b * count, count)?;
    }
    let _ = TAG_BRUCK;
    smcoll::sm_barrier(comm)?;
    comm.free(temp)?;
    Ok(())
}
