//! Contention-aware MPI_Reduce / MPI_Allreduce — the paper's stated
//! future work (§IX: "we plan to extend these designs to other
//! collectives").
//!
//! Reduction adds a twist the One-to-all collectives don't have: the
//! root must *combine* contributions, so unthrottled parallel writes
//! into one buffer are not even semantically possible. The designs here
//! transplant the paper's contention-management ideas:
//!
//! * [`ReduceAlgo::SequentialRead`] — the root reads each contribution
//!   into a scratch buffer and folds it in; contention-free, serialized
//!   (the Reduce analogue of §IV-B2). Reduction never suffers the
//!   one-to-all page-lock pile-up because every read targets a
//!   *different* source process — the challenge is instead the
//!   serialized combine work at the root.
//! * [`ReduceAlgo::KNomialTree`] — radix-`k` combining tree: every
//!   parent pulls its children's partials and folds locally, so both
//!   the copies and the combine arithmetic are parallelized across the
//!   node — a k-nomial broadcast run in reverse.
//!
//! [`allreduce`] composes these with the Bcast designs.

use crate::bcast::{bcast, BcastAlgo};
use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_reduce, PlanCache, PlanKey};
use crate::{class, unvrank, vrank};
use kacc_comm::{BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

/// Element type of a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// Little-endian u32 lanes.
    U32,
    /// Little-endian u64 lanes.
    U64,
    /// Little-endian IEEE-754 f64 lanes.
    F64,
}

impl Dtype {
    /// Lane width in bytes.
    pub fn width(self) -> usize {
        match self {
            Dtype::U32 => 4,
            Dtype::U64 | Dtype::F64 => 8,
        }
    }
}

/// Combining operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Lane-wise wrapping sum.
    Sum,
    /// Lane-wise maximum.
    Max,
    /// Lane-wise minimum.
    Min,
}

/// Reduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceAlgo {
    /// Root reads and folds each contribution in rank order.
    SequentialRead,
    /// Radix-`k` combining tree (k ≥ 2): parents pull children's
    /// partial results and fold in parallel across the node.
    KNomialTree {
        /// Tree radix.
        radix: usize,
    },
}

const TAG_READY: Tag = Tag::internal(class::REDUCE, 0);
const TAG_DONE: Tag = Tag::internal(class::REDUCE, 1);

/// Fold `src` into `acc` lane-wise.
pub fn combine(acc: &mut [u8], src: &[u8], dtype: Dtype, op: ReduceOp) {
    assert_eq!(acc.len(), src.len());
    let w = dtype.width();
    assert_eq!(acc.len() % w, 0, "buffer not a whole number of lanes");
    for (a, s) in acc.chunks_exact_mut(w).zip(src.chunks_exact(w)) {
        match dtype {
            Dtype::U32 => {
                let x = u32::from_le_bytes(a[..4].try_into().expect("slice length fixed"));
                let y = u32::from_le_bytes(s[..4].try_into().expect("slice length fixed"));
                let r = match op {
                    ReduceOp::Sum => x.wrapping_add(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::Min => x.min(y),
                };
                a.copy_from_slice(&r.to_le_bytes());
            }
            Dtype::U64 => {
                let x = u64::from_le_bytes(a[..8].try_into().expect("slice length fixed"));
                let y = u64::from_le_bytes(s[..8].try_into().expect("slice length fixed"));
                let r = match op {
                    ReduceOp::Sum => x.wrapping_add(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::Min => x.min(y),
                };
                a.copy_from_slice(&r.to_le_bytes());
            }
            Dtype::F64 => {
                let x = f64::from_le_bytes(a[..8].try_into().expect("slice length fixed"));
                let y = f64::from_le_bytes(s[..8].try_into().expect("slice length fixed"));
                let r = match op {
                    ReduceOp::Sum => x + y,
                    ReduceOp::Max => x.max(y),
                    ReduceOp::Min => x.min(y),
                };
                a.copy_from_slice(&r.to_le_bytes());
            }
        }
    }
}

/// Fold a remote contribution (read into scratch) into a local buffer.
/// The local combine is charged as a memcpy-class operation via
/// `copy_local` on the scratch round-trip.
fn pull_and_combine<C: Comm + ?Sized>(
    comm: &mut C,
    token: RemoteToken,
    scratch: BufId,
    acc: BufId,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
) -> Result<()> {
    comm.cma_read(token, 0, scratch, 0, count)?;
    // Charge the arithmetic pass like a local copy (one read + one
    // write stream over `count` bytes).
    comm.copy_local(scratch, 0, scratch, 0, count)?;
    let mut a = vec![0u8; count];
    comm.read_local(acc, 0, &mut a)?;
    let mut s = vec![0u8; count];
    comm.read_local(scratch, 0, &mut s)?;
    combine(&mut a, &s, dtype, op);
    comm.write_local(acc, 0, &a)?;
    Ok(())
}

/// MPI_Reduce: lane-wise combination of every rank's `count`-byte
/// `sendbuf` lands in the root's `recvbuf`. `count` must be a multiple
/// of the dtype width, and every rank passes the same `algo`, `dtype`,
/// `op`, `count`, `root`.
#[allow(clippy::too_many_arguments)]
pub fn reduce<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ReduceAlgo,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Result<()> {
    reduce_with_report(comm, algo, sendbuf, recvbuf, count, dtype, op, root).map(|_| ())
}

/// [`reduce`] returning the executor's per-step accounting. `None` when
/// the call was satisfied without a schedule (single rank or zero
/// count).
#[allow(clippy::too_many_arguments)]
pub fn reduce_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ReduceAlgo,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    if !prepare(comm, algo, sendbuf, recvbuf, count, dtype, root)? {
        return Ok(None);
    }
    let p = comm.size();
    let me = comm.rank();
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Reduce {
            algo,
            p,
            rank: me,
            count,
            dtype,
            op,
            root,
        },
        || compile_reduce(algo, p, me, count, dtype, op, root),
    );
    execute(
        comm,
        &plan,
        &Bindings {
            send: Some(sendbuf),
            recv: recvbuf,
        },
    )
    .map(Some)
}

/// Validation and degenerate-case handling shared by the compiled and
/// legacy paths. Returns `false` when nothing is left to do.
fn prepare<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ReduceAlgo,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    root: usize,
) -> Result<bool> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if !count.is_multiple_of(dtype.width()) {
        return Err(CommError::Protocol(format!(
            "count {count} is not a multiple of the {dtype:?} width"
        )));
    }
    if me == root && recvbuf.is_none() {
        return Err(CommError::Protocol("root reduce needs recvbuf".into()));
    }
    if let ReduceAlgo::KNomialTree { radix } = algo {
        if radix < 2 {
            return Err(CommError::Protocol("tree radix must be ≥ 2".into()));
        }
    }
    if count == 0 {
        return Ok(false);
    }
    if p == 1 {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        comm.copy_local(sendbuf, 0, rb, 0, count)?;
        return Ok(false);
    }
    Ok(true)
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn reduce_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ReduceAlgo,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Result<()> {
    if !prepare(comm, algo, sendbuf, recvbuf, count, dtype, root)? {
        return Ok(());
    }
    match algo {
        ReduceAlgo::SequentialRead => root_pull(comm, sendbuf, recvbuf, count, dtype, op, root),
        ReduceAlgo::KNomialTree { radix } => {
            knomial_tree(comm, sendbuf, recvbuf, count, dtype, op, root, radix)
        }
    }
}

/// Sequential root-pull: the root reads and folds contributions in
/// virtual-rank order.
#[allow(clippy::too_many_arguments)]
fn root_pull<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        comm.copy_local(sendbuf, 0, rb, 0, count)?;
        let scratch = comm.alloc(count);
        // Contributions arrive in virtual-rank order; the fold is
        // commutative-associative per MPI's requirements on Op.
        for v in 1..p {
            let r = unvrank(v, root, p);
            let raw = comm.ctrl_recv(r, TAG_READY)?;
            let token = RemoteToken::from_bytes(&raw)
                .ok_or(CommError::Protocol("bad reduce token".into()))?;
            pull_and_combine(comm, token, scratch, rb, count, dtype, op)?;
            comm.notify(r, TAG_DONE)?;
        }
        comm.free(scratch)?;
    } else {
        let token = comm.expose(sendbuf)?;
        comm.ctrl_send(root, TAG_READY, &token.to_bytes())?;
        comm.wait_notify(root, TAG_DONE)?;
    }
    Ok(())
}

/// Radix-`k` combining tree: virtual rank v's parent is v − (v mod k^j)
/// where k^j is v's join stride; parents accumulate into a private
/// partial buffer, pulling each child exactly once.
#[allow(clippy::too_many_arguments)]
fn knomial_tree<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let v = vrank(me, root, p);

    // Accumulate into a private partial (the root can use recvbuf).
    let acc = if v == 0 {
        recvbuf.expect("validated: root binds recvbuf")
    } else {
        comm.alloc(count)
    };
    comm.copy_local(sendbuf, 0, acc, 0, count)?;
    let scratch = comm.alloc(count);

    // This is the bcast k-nomial tree run in reverse. A rank whose join
    // stride (largest k-power ≤ v, or ∞ for the root) is `j` has
    // children `v + m·s` for every stride `s` a k-power with
    // first_pow_gt(v) ≤ s < p and m ∈ 1..k; each child's own join
    // stride is exactly `s`, so parent(c) = c mod s.
    let mut join_stride = 1usize;
    while join_stride * k <= v {
        join_stride *= k;
    }
    let mut s = 1usize;
    while s <= v {
        s *= k;
    }
    while s < p {
        for m in 1..k {
            let child = v + m * s;
            if child < p {
                let r = unvrank(child, root, p);
                let raw = comm.ctrl_recv(r, TAG_READY)?;
                let token = RemoteToken::from_bytes(&raw)
                    .ok_or(CommError::Protocol("bad reduce tree token".into()))?;
                pull_and_combine(comm, token, scratch, acc, count, dtype, op)?;
                comm.notify(r, TAG_DONE)?;
            }
        }
        s *= k;
    }

    if v != 0 {
        let parent = v % join_stride;
        let token = comm.expose(acc)?;
        comm.ctrl_send(unvrank(parent, root, p), TAG_READY, &token.to_bytes())?;
        comm.wait_notify(unvrank(parent, root, p), TAG_DONE)?;
        comm.free(acc)?;
    }
    comm.free(scratch)?;
    Ok(())
}

/// MPI_Reduce_scatter_block: every rank contributes `p·count` bytes
/// (block j destined for rank j) and receives the lane-wise combination
/// of everyone's block `me` in `recvbuf`.
///
/// Pairwise rotation keeps every step's reads on distinct source
/// processes — the same contention-free structure as the pairwise
/// Alltoall (§IV-C1), with a fold after each read.
pub fn reduce_scatter_block<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if !count.is_multiple_of(dtype.width()) {
        return Err(CommError::Protocol(format!(
            "count {count} is not a multiple of the {dtype:?} width"
        )));
    }
    let need = p * count;
    let cap = comm.buf_len(sendbuf)?;
    if cap < need {
        return Err(CommError::OutOfRange {
            buf: sendbuf.0,
            off: 0,
            len: need,
            cap,
        });
    }
    if count == 0 {
        return Ok(());
    }
    comm.copy_local(sendbuf, me * count, recvbuf, 0, count)?;
    if p == 1 {
        return Ok(());
    }
    let token = comm.expose(sendbuf)?;
    let tokens = kacc_comm::smcoll::sm_allgather(comm, &token.to_bytes())?;
    let scratch = comm.alloc(count);
    let mut acc = vec![0u8; count];
    comm.read_local(recvbuf, 0, &mut acc)?;
    for i in 1..p {
        let src = if p.is_power_of_two() {
            me ^ i
        } else {
            (me + p - i) % p
        };
        let tok = RemoteToken::from_bytes(&tokens[src])
            .ok_or(CommError::Protocol("bad reduce-scatter token".into()))?;
        comm.cma_read(tok, me * count, scratch, 0, count)?;
        // Charge the fold pass and combine.
        comm.copy_local(scratch, 0, scratch, 0, count)?;
        let mut s = vec![0u8; count];
        comm.read_local(scratch, 0, &mut s)?;
        combine(&mut acc, &s, dtype, op);
    }
    comm.write_local(recvbuf, 0, &acc)?;
    kacc_comm::smcoll::sm_barrier(comm)?;
    comm.free(scratch)?;
    Ok(())
}

/// Allreduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Reduce to rank 0 then broadcast (both phases contention-aware).
    ReduceBcast {
        /// Reduce phase algorithm.
        reduce: ReduceAlgo,
        /// Broadcast phase algorithm.
        bcast: BcastAlgo,
    },
    /// Rabenseifner-style: reduce-scatter the message into per-rank
    /// chunks (each rank folds its own chunk), then ring-allgather the
    /// reduced chunks. Moves ~2η per rank regardless of p — the
    /// large-message winner.
    ReduceScatterAllgather,
}

/// MPI_Allreduce: every rank ends with the lane-wise combination of all
/// contributions in `recvbuf`.
#[allow(clippy::too_many_arguments)]
pub fn allreduce<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AllreduceAlgo,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
) -> Result<()> {
    match algo {
        AllreduceAlgo::ReduceBcast {
            reduce: ralgo,
            bcast: balgo,
        } => {
            reduce(comm, ralgo, sendbuf, Some(recvbuf), count, dtype, op, 0)?;
            bcast(comm, balgo, recvbuf, count, 0)?;
            Ok(())
        }
        AllreduceAlgo::ReduceScatterAllgather => {
            rabenseifner(comm, sendbuf, recvbuf, count, dtype, op)
        }
    }
}

/// Rabenseifner-style allreduce over lane-aligned chunks. Chunk `v`
/// (rank v's responsibility) is folded by rank v from every peer's
/// send buffer, then the reduced chunks ride a ring-neighbor allgather
/// into everyone's receive buffer.
fn rabenseifner<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    let w = dtype.width();
    // Lane-aligned chunk boundaries.
    let lanes = count / w;
    let chunk_lanes = lanes.div_ceil(p);
    let range = |v: usize| {
        let lo = (v * chunk_lanes).min(lanes) * w;
        let hi = ((v + 1) * chunk_lanes).min(lanes) * w;
        (lo, hi - lo)
    };

    // Phase A — reduce-scatter my chunk: fold everyone's bytes at my
    // chunk range, reading each peer once (distinct sources per step).
    let token = comm.expose(sendbuf)?;
    let tokens = kacc_comm::smcoll::sm_allgather(comm, &token.to_bytes())?;
    let (my_off, my_len) = range(me);
    let scratch = comm.alloc(my_len.max(1));
    let mut acc = vec![0u8; my_len];
    comm.read_local(sendbuf, my_off, &mut acc)?;
    for i in 1..p {
        if my_len == 0 {
            break;
        }
        let src = if p.is_power_of_two() {
            me ^ i
        } else {
            (me + p - i) % p
        };
        let tok = RemoteToken::from_bytes(&tokens[src])
            .ok_or(CommError::Protocol("bad allreduce token".into()))?;
        comm.cma_read(tok, my_off, scratch, 0, my_len)?;
        comm.copy_local(scratch, 0, scratch, 0, my_len)?;
        let mut s = vec![0u8; my_len];
        comm.read_local(scratch, 0, &mut s)?;
        combine(&mut acc, &s, dtype, op);
    }
    comm.write_local(recvbuf, my_off, &acc)?;
    comm.free(scratch)?;
    // Everyone's reduced chunk must be committed before the allgather
    // reads begin.
    kacc_comm::smcoll::sm_barrier(comm)?;

    // Phase B — ring-neighbor allgather of the reduced chunks out of
    // the receive buffers (intra-socket-friendly forwarding).
    crate::allgather_ranges(comm, recvbuf, &|v| range(v))?;
    Ok(())
}

/// Expected lane-wise combination of `p` rank-stamped u64 contributions
/// (test/verification helper).
pub fn expected_u64(
    p: usize,
    lanes: usize,
    op: ReduceOp,
    value_of: impl Fn(usize, usize) -> u64,
) -> Vec<u64> {
    (0..lanes)
        .map(|lane| {
            let mut acc = value_of(0, lane);
            for r in 1..p {
                let v = value_of(r, lane);
                acc = match op {
                    ReduceOp::Sum => acc.wrapping_add(v),
                    ReduceOp::Max => acc.max(v),
                    ReduceOp::Min => acc.min(v),
                };
            }
            acc
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn combine_sums_and_extremes() {
        let mut a = 5u32.to_le_bytes().to_vec();
        a.extend_from_slice(&7u32.to_le_bytes());
        let mut b = 3u32.to_le_bytes().to_vec();
        b.extend_from_slice(&100u32.to_le_bytes());
        let mut acc = a.clone();
        combine(&mut acc, &b, Dtype::U32, ReduceOp::Sum);
        assert_eq!(&acc[..4], &8u32.to_le_bytes());
        let mut acc = a.clone();
        combine(&mut acc, &b, Dtype::U32, ReduceOp::Max);
        assert_eq!(&acc[4..], &100u32.to_le_bytes());
        let mut acc = a;
        combine(&mut acc, &b, Dtype::U32, ReduceOp::Min);
        assert_eq!(&acc[..4], &3u32.to_le_bytes());
    }

    #[test]
    fn combine_f64_sum() {
        let mut a = 1.5f64.to_le_bytes().to_vec();
        let b = 2.25f64.to_le_bytes().to_vec();
        combine(&mut a, &b, Dtype::F64, ReduceOp::Sum);
        assert_eq!(
            f64::from_le_bytes(a.try_into().expect("slice length fixed")),
            3.75
        );
    }

    #[test]
    fn combine_u32_wraps() {
        let mut a = u32::MAX.to_le_bytes().to_vec();
        let b = 2u32.to_le_bytes().to_vec();
        combine(&mut a, &b, Dtype::U32, ReduceOp::Sum);
        assert_eq!(
            u32::from_le_bytes(a.try_into().expect("slice length fixed")),
            1
        );
    }

    #[test]
    #[should_panic(expected = "whole number of lanes")]
    fn combine_rejects_ragged_buffers() {
        let mut a = vec![0u8; 6];
        let b = vec![0u8; 6];
        combine(&mut a, &b, Dtype::U64, ReduceOp::Sum);
    }
}
