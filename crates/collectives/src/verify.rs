//! Deterministic data patterns for validating collective results.
//!
//! Every test, example and experiment fills buffers with these patterns
//! so that "the collective completed" always also means "every byte
//! landed where MPI semantics say it must".

/// Pattern byte for (owner rank, byte index): used by Allgather, Bcast,
/// Gather and Scatter payloads.
pub fn pat2(rank: usize, i: usize) -> u8 {
    let x = (rank as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    ((x >> 32) ^ x) as u8
}

/// Pattern byte for (source rank, destination rank, byte index): used by
/// Alltoall payloads.
pub fn pat3(src: usize, dst: usize, i: usize) -> u8 {
    pat2(src.wrapping_mul(1009).wrapping_add(dst), i)
}

/// The root's scatter send buffer: block `j` carries `pat2(j, ·)`.
pub fn scatter_sendbuf(p: usize, count: usize) -> Vec<u8> {
    let mut out = vec![0u8; p * count];
    for j in 0..p {
        for i in 0..count {
            out[j * count + i] = pat2(j, i);
        }
    }
    out
}

/// What rank `r` must hold after a scatter of `count` bytes.
pub fn scatter_expected(r: usize, count: usize) -> Vec<u8> {
    (0..count).map(|i| pat2(r, i)).collect()
}

/// Rank `r`'s gather/allgather contribution.
pub fn contribution(r: usize, count: usize) -> Vec<u8> {
    (0..count).map(|i| pat2(r, i)).collect()
}

/// What the gather root (or any allgather rank) must hold.
pub fn gather_expected(p: usize, count: usize) -> Vec<u8> {
    scatter_sendbuf(p, count)
}

/// Rank `s`'s alltoall send buffer: block `j` carries `pat3(s, j, ·)`.
pub fn alltoall_sendbuf(s: usize, p: usize, count: usize) -> Vec<u8> {
    let mut out = vec![0u8; p * count];
    for j in 0..p {
        for i in 0..count {
            out[j * count + i] = pat3(s, j, i);
        }
    }
    out
}

/// What rank `r` must hold after an alltoall: block `s` from source `s`.
pub fn alltoall_expected(r: usize, p: usize, count: usize) -> Vec<u8> {
    let mut out = vec![0u8; p * count];
    for s in 0..p {
        for i in 0..count {
            out[s * count + i] = pat3(s, r, i);
        }
    }
    out
}

/// Find the first mismatch between observed and expected, formatted for
/// a panic message. Returns `None` when equal.
pub fn diff(observed: &[u8], expected: &[u8]) -> Option<String> {
    if observed.len() != expected.len() {
        return Some(format!(
            "length mismatch: observed {} vs expected {}",
            observed.len(),
            expected.len()
        ));
    }
    observed
        .iter()
        .zip(expected)
        .position(|(a, b)| a != b)
        .map(|at| {
            format!(
                "first mismatch at byte {at}: observed {:#04x}, expected {:#04x}",
                observed[at], expected[at]
            )
        })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn patterns_distinguish_ranks_and_offsets() {
        assert_ne!(pat2(0, 0), pat2(1, 0));
        assert_ne!(pat2(0, 0), pat2(0, 1));
        assert_ne!(pat3(1, 2, 0), pat3(2, 1, 0));
    }

    #[test]
    fn scatter_roundtrip_consistency() {
        let p = 5;
        let count = 7;
        let sb = scatter_sendbuf(p, count);
        for r in 0..p {
            assert_eq!(&sb[r * count..(r + 1) * count], scatter_expected(r, count));
        }
    }

    #[test]
    fn alltoall_matrices_are_transposes() {
        let p = 4;
        let count = 3;
        for r in 0..p {
            let expect = alltoall_expected(r, p, count);
            for s in 0..p {
                let sb = alltoall_sendbuf(s, p, count);
                assert_eq!(
                    &expect[s * count..(s + 1) * count],
                    &sb[r * count..(r + 1) * count]
                );
            }
        }
    }

    #[test]
    fn diff_reports_first_mismatch() {
        assert_eq!(diff(&[1, 2, 3], &[1, 2, 3]), None);
        let d = diff(&[1, 9, 3], &[1, 2, 3]).unwrap();
        assert!(d.contains("byte 1"));
        assert!(diff(&[1], &[1, 2]).unwrap().contains("length"));
    }
}
