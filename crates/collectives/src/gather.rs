//! All-to-one personalized communication: MPI_Gather (§IV-B).
//!
//! The algorithms mirror the Scatter designs with the direction of the
//! kernel-assisted operations reversed: the contended resource is the
//! *root's* page-table lock, written to by many peers at once.
//!
//! Like Scatter, the public entry points compile to a
//! [`crate::schedule::Schedule`] (cached in the global [`PlanCache`])
//! and replay it through the generic executor; `gatherv_legacy` keeps
//! the direct implementation for equivalence tests.

use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_gather, PlanCache, PlanKey};
use crate::{class, unvrank, vrank};
use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

/// Gather algorithm selection (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatherAlgo {
    /// §IV-B1: every non-root writes its block into the root's receive
    /// buffer concurrently.
    ParallelWrite,
    /// §IV-B2: the root reads every block in turn.
    SequentialRead,
    /// §IV-B3: at most `k` concurrent writers, chained with
    /// point-to-point unblock messages.
    ThrottledWrite {
        /// Throttle factor: maximum concurrent writers to the root.
        k: usize,
    },
}

const TAG_DONE: Tag = Tag::internal(class::GATHER, 1);
const TAG_CHAIN: Tag = Tag::internal(class::GATHER, 2);

/// MPI_Gather: every rank contributes `count` bytes from `sendbuf`; the
/// root assembles them (by rank order) into its `p·count`-byte `recvbuf`.
///
/// * `recvbuf` — required at the root, ignored elsewhere (pass `None`).
/// * `sendbuf` — required at non-roots. At the root it may be `None`
///   (`MPI_IN_PLACE`: the root's block is already in place in `recvbuf`).
pub fn gather<C: Comm + ?Sized>(
    comm: &mut C,
    algo: GatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let counts = vec![count; p];
    gatherv(comm, algo, sendbuf, recvbuf, &counts, None, root)
}

/// MPI_Gatherv: rank `r` contributes `counts[r]` bytes, landing at
/// `displs[r]` in the root's receive buffer (contiguous packing when
/// `displs` is `None`). Every rank passes identical `counts`/`displs`.
pub fn gatherv<C: Comm + ?Sized>(
    comm: &mut C,
    algo: GatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<()> {
    gatherv_with_report(comm, algo, sendbuf, recvbuf, counts, displs, root).map(|_| ())
}

/// [`gatherv`] returning the executor's per-step accounting. `None`
/// when the call was satisfied without a schedule (single rank or
/// all-zero counts).
pub fn gatherv_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: GatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let layout = match prepare(comm, sendbuf, recvbuf, counts, displs, root)? {
        Prepared::Done => return Ok(None),
        Prepared::Run(layout) => layout,
    };
    if let GatherAlgo::ThrottledWrite { k } = algo {
        if k == 0 {
            return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
        }
    }
    let p = comm.size();
    let me = comm.rank();
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Gather {
            algo,
            p,
            rank: me,
            counts: counts.to_vec(),
            displs: displs.map(<[usize]>::to_vec),
            root,
            has_sendbuf: sendbuf.is_some(),
        },
        || compile_gather(algo, p, me, &layout, root, sendbuf.is_some()),
    );
    execute(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: recvbuf,
        },
    )
    .map(Some)
}

/// Validation and degenerate-case handling shared by the compiled and
/// legacy paths.
enum Prepared {
    /// Nothing left to do (single rank or all-zero counts).
    Done,
    /// Run the algorithm with this per-rank layout.
    Run(Vec<(usize, usize)>),
}

fn prepare<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Prepared> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if counts.len() != p || displs.is_some_and(|d| d.len() != p) {
        return Err(CommError::Protocol(
            "counts/displs length must equal size".into(),
        ));
    }
    let layout = crate::scatter::build_layout(counts, displs);
    if me == root {
        let rb = recvbuf.ok_or(CommError::Protocol("root gather needs recvbuf".into()))?;
        let need = layout
            .iter()
            .map(|&(off, len)| off + len)
            .max()
            .unwrap_or(0);
        let cap = comm.buf_len(rb)?;
        if cap < need {
            return Err(CommError::OutOfRange {
                buf: rb.0,
                off: 0,
                len: need,
                cap,
            });
        }
    } else if sendbuf.is_none() && counts[me] > 0 {
        return Err(CommError::Protocol("non-root gather needs sendbuf".into()));
    }
    if p == 1 {
        root_self_copy(
            comm,
            recvbuf.expect("validated: root binds recvbuf"),
            sendbuf,
            &layout,
            root,
        )?;
        return Ok(Prepared::Done);
    }
    if counts.iter().all(|&c| c == 0) {
        return Ok(Prepared::Done);
    }
    Ok(Prepared::Run(layout))
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
pub fn gatherv_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: GatherAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<()> {
    let layout = match prepare(comm, sendbuf, recvbuf, counts, displs, root)? {
        Prepared::Done => return Ok(()),
        Prepared::Run(layout) => layout,
    };
    match algo {
        GatherAlgo::ParallelWrite => parallel_write(comm, sendbuf, recvbuf, &layout, root),
        GatherAlgo::SequentialRead => sequential_read(comm, sendbuf, recvbuf, &layout, root),
        GatherAlgo::ThrottledWrite { k } => {
            if k == 0 {
                return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
            }
            throttled_write(comm, sendbuf, recvbuf, &layout, root, k)
        }
    }
}

/// Copy the root's own block into its receive buffer (skipped under
/// `MPI_IN_PLACE`, i.e. `sendbuf == None` at the root).
fn root_self_copy<C: Comm + ?Sized>(
    comm: &mut C,
    recvbuf: BufId,
    sendbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let (off, len) = layout[root];
    if let (Some(sb), true) = (sendbuf, len > 0) {
        comm.copy_local(sb, 0, recvbuf, off, len)?;
    }
    Ok(())
}

fn parallel_write<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let me = comm.rank();
    if me == root {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        let token = comm.expose(rb)?;
        smcoll::sm_bcast(comm, root, &token.to_bytes())?;
        root_self_copy(comm, rb, sendbuf, layout, root)?;
        smcoll::sm_gather(comm, root, &[])?;
    } else {
        let raw = smcoll::sm_bcast(comm, root, &[])?;
        let token =
            RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad gather token".into()))?;
        let (off, len) = layout[me];
        if len > 0 {
            comm.cma_write(
                token,
                off,
                sendbuf.expect("validated: sender binds sendbuf"),
                0,
                len,
            )?;
        }
        smcoll::sm_gather(comm, root, &[])?;
    }
    Ok(())
}

fn sequential_read<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        let tokens =
            smcoll::sm_gather(comm, root, &[])?.expect("sm_gather yields entries at the root");
        root_self_copy(comm, rb, sendbuf, layout, root)?;
        for v in 1..p {
            let r = unvrank(v, root, p);
            let (off, len) = layout[r];
            if len == 0 {
                continue;
            }
            let token = RemoteToken::from_bytes(&tokens[r])
                .ok_or(CommError::Protocol("bad gather send token".into()))?;
            comm.cma_read(token, 0, rb, off, len)?;
        }
        smcoll::sm_bcast(comm, root, &[])?;
    } else {
        // Zero-count ranks still join the collective control phases but
        // have no buffer to expose (the root skips their slot).
        let token_bytes = if layout[comm.rank()].1 > 0 {
            comm.expose(sendbuf.expect("validated: sender binds sendbuf"))?
                .to_bytes()
                .to_vec()
        } else {
            Vec::new()
        };
        smcoll::sm_gather(comm, root, &token_bytes)?;
        smcoll::sm_bcast(comm, root, &[])?;
    }
    Ok(())
}

fn throttled_write<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let rb = recvbuf.expect("validated: root binds recvbuf");
        let token = comm.expose(rb)?;
        smcoll::sm_bcast(comm, root, &token.to_bytes())?;
        root_self_copy(comm, rb, sendbuf, layout, root)?;
        for v in (1..p).filter(|v| v + k > p - 1) {
            comm.wait_notify(unvrank(v, root, p), TAG_DONE)?;
        }
    } else {
        let raw = smcoll::sm_bcast(comm, root, &[])?;
        let token =
            RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad gather token".into()))?;
        let v = vrank(me, root, p);
        if v > k {
            comm.wait_notify(unvrank(v - k, root, p), TAG_CHAIN)?;
        }
        let (off, len) = layout[me];
        if len > 0 {
            comm.cma_write(
                token,
                off,
                sendbuf.expect("validated: sender binds sendbuf"),
                0,
                len,
            )?;
        }
        if v + k < p {
            comm.notify(unvrank(v + k, root, p), TAG_CHAIN)?;
        } else {
            comm.notify(root, TAG_DONE)?;
        }
    }
    Ok(())
}
