//! Generic schedule executor (execute phase).
//!
//! [`execute`] replays a compiled [`Schedule`] on any [`Comm`]: it binds
//! the schedule's symbolic [`Slot`]s to caller buffers, allocates the
//! scratch buffers the plan declares, resolves token registers as
//! `Expose`/`CtrlRecv` steps fill them, and runs every step in order
//! while recording per-step-kind wall/virtual time and byte counters
//! into a [`ScheduleReport`].
//!
//! On the simulator the timings are deterministic virtual nanoseconds;
//! on the native transports they are monotonic wall-clock nanoseconds —
//! both come from [`Comm::time_ns`], so the report means "time this rank
//! spent inside each primitive" on every transport.

use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result};
use kacc_trace::{Event, EventKind, Tracer, Track};

use crate::reduce::combine;
use crate::schedule::{Payload, RecvInto, Schedule, Slot, Step};

/// Caller buffers a schedule's symbolic slots resolve to.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bindings {
    /// Buffer behind [`Slot::Send`], if the plan references it.
    pub send: Option<BufId>,
    /// Buffer behind [`Slot::Recv`], if the plan references it.
    pub recv: Option<BufId>,
}

/// Accumulated count / bytes / time for one step kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Steps of this kind executed.
    pub count: u64,
    /// Payload bytes they moved (0 for pure synchronization).
    pub bytes: u64,
    /// Time spent inside them, in `Comm::time_ns` units (virtual under
    /// simulation, wall-clock on native transports).
    pub time_ns: u64,
}

impl StepStats {
    fn add(&mut self, bytes: usize, dt: u64) {
        self.count += 1;
        self.bytes += bytes as u64;
        self.time_ns += dt;
    }
}

/// Step kinds the executor records — one per [`ScheduleReport`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    Expose,
    CmaRead,
    CmaWrite,
    CopyLocal,
    CtrlSend,
    CtrlRecv,
    Notify,
    WaitNotify,
    ShmSend,
    ShmRecv,
    Reduce,
}

impl StepKind {
    /// Span name in the trace; the `step:` prefix keeps executor spans
    /// distinct from the machine layer's transport spans of similar names.
    fn span_name(self) -> &'static str {
        match self {
            StepKind::Expose => "step:expose",
            StepKind::CmaRead => "step:cma_read",
            StepKind::CmaWrite => "step:cma_write",
            StepKind::CopyLocal => "step:copy_local",
            StepKind::CtrlSend => "step:ctrl_send",
            StepKind::CtrlRecv => "step:ctrl_recv",
            StepKind::Notify => "step:notify",
            StepKind::WaitNotify => "step:wait_notify",
            StepKind::ShmSend => "step:shm_send",
            StepKind::ShmRecv => "step:shm_recv",
            StepKind::Reduce => "step:reduce",
        }
    }

    fn from_span_name(name: &str) -> Option<StepKind> {
        Some(match name {
            "step:expose" => StepKind::Expose,
            "step:cma_read" => StepKind::CmaRead,
            "step:cma_write" => StepKind::CmaWrite,
            "step:copy_local" => StepKind::CopyLocal,
            "step:ctrl_send" => StepKind::CtrlSend,
            "step:ctrl_recv" => StepKind::CtrlRecv,
            "step:notify" => StepKind::Notify,
            "step:wait_notify" => StepKind::WaitNotify,
            "step:shm_send" => StepKind::ShmSend,
            "step:shm_recv" => StepKind::ShmRecv,
            "step:reduce" => StepKind::Reduce,
            _ => return None,
        })
    }
}

/// The single recording path: every executed step flows through
/// [`Recorder::add`], which updates the [`ScheduleReport`] *and* emits the
/// trace span from the same measurements — counts and bytes can never
/// drift between the two.
struct Recorder<'t> {
    report: ScheduleReport,
    tracer: &'t Tracer,
    track: Track,
    class: Option<u32>,
}

impl Recorder<'_> {
    fn add(&mut self, kind: StepKind, bytes: usize, t0: u64, t1: u64) {
        let dt = t1.saturating_sub(t0);
        self.report.stat_mut(kind).add(bytes, dt);
        self.report.steps += 1;
        self.tracer.span(
            self.track,
            kind.span_name(),
            t0,
            dt as f64,
            bytes as u64,
            self.class,
        );
    }
}

/// Per-step-kind accounting for one schedule execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// `expose` calls.
    pub expose: StepStats,
    /// Single-copy reads (bytes = payload read).
    pub cma_read: StepStats,
    /// Single-copy writes (bytes = payload written).
    pub cma_write: StepStats,
    /// Local charged copies.
    pub copy_local: StepStats,
    /// Control-plane sends (bytes = wire bytes).
    pub ctrl_send: StepStats,
    /// Control-plane receives (bytes = wire bytes).
    pub ctrl_recv: StepStats,
    /// 0-byte notification sends.
    pub notify: StepStats,
    /// 0-byte notification waits.
    pub wait_notify: StepStats,
    /// Two-copy shared-memory sends.
    pub shm_send: StepStats,
    /// Two-copy shared-memory receives.
    pub shm_recv: StepStats,
    /// Element-wise reductions (bytes = reduced region size).
    pub reduce: StepStats,
    /// Steps executed in total.
    pub steps: u64,
    /// End-to-end time from first step to last, in `time_ns` units.
    pub total_ns: u64,
}

impl ScheduleReport {
    /// Total bytes moved by kernel-assisted reads.
    pub fn bytes_read(&self) -> u64 {
        self.cma_read.bytes
    }

    /// Total bytes moved by kernel-assisted writes.
    pub fn bytes_written(&self) -> u64 {
        self.cma_write.bytes
    }

    fn stat_mut(&mut self, kind: StepKind) -> &mut StepStats {
        match kind {
            StepKind::Expose => &mut self.expose,
            StepKind::CmaRead => &mut self.cma_read,
            StepKind::CmaWrite => &mut self.cma_write,
            StepKind::CopyLocal => &mut self.copy_local,
            StepKind::CtrlSend => &mut self.ctrl_send,
            StepKind::CtrlRecv => &mut self.ctrl_recv,
            StepKind::Notify => &mut self.notify,
            StepKind::WaitNotify => &mut self.wait_notify,
            StepKind::ShmSend => &mut self.shm_send,
            StepKind::ShmRecv => &mut self.shm_recv,
            StepKind::Reduce => &mut self.reduce,
        }
    }

    /// Rebuild a report from the executor's `step:*` spans (other events
    /// are ignored). Because [`execute_traced`] records report and spans
    /// through one path, `from_events` over one execution's events equals
    /// the returned report exactly. Pass events from a single rank's
    /// execution (filter by [`Track`] first when a trace holds several).
    pub fn from_events(events: &[Event]) -> ScheduleReport {
        let mut report = ScheduleReport::default();
        let mut first_start: Option<u64> = None;
        let mut last_end: u64 = 0;
        for ev in events {
            let EventKind::Span { ts, dur } = ev.kind else {
                continue;
            };
            let Some(kind) = StepKind::from_span_name(ev.name) else {
                continue;
            };
            // Executor spans carry whole-nanosecond durations, so the f64
            // round-trips exactly.
            let dt = dur as u64;
            report.stat_mut(kind).add(ev.bytes as usize, dt);
            report.steps += 1;
            first_start = Some(first_start.map_or(ts, |f| f.min(ts)));
            last_end = last_end.max(ts + dt);
        }
        report.total_ns = first_start.map_or(0, |f| last_end.saturating_sub(f));
        report
    }
}

fn proto(msg: String) -> CommError {
    CommError::Protocol(msg)
}

struct Ctx<'a> {
    bind: &'a Bindings,
    temps: Vec<BufId>,
    regs: Vec<Option<RemoteToken>>,
}

impl Ctx<'_> {
    fn slot(&self, s: Slot) -> Result<BufId> {
        match s {
            Slot::Send => self.bind.send.ok_or_else(|| {
                proto("schedule references Send but no send buffer is bound".into())
            }),
            Slot::Recv => self.bind.recv.ok_or_else(|| {
                proto("schedule references Recv but no recv buffer is bound".into())
            }),
            Slot::Temp(i) => self
                .temps
                .get(i as usize)
                .copied()
                .ok_or_else(|| proto(format!("schedule references undeclared temp {i}"))),
        }
    }

    fn token(&self, reg: crate::schedule::TokenReg) -> Result<RemoteToken> {
        self.regs
            .get(reg.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| {
                proto(format!(
                    "token register {} used before it was filled",
                    reg.0
                ))
            })
    }

    fn set_token(&mut self, reg: crate::schedule::TokenReg, t: RemoteToken) -> Result<()> {
        let slot = self
            .regs
            .get_mut(reg.0 as usize)
            .ok_or_else(|| proto(format!("token register {} out of range", reg.0)))?;
        *slot = Some(t);
        Ok(())
    }

    fn render_payload(&self, p: &Payload) -> Result<Vec<u8>> {
        match p {
            Payload::Bytes(b) => Ok(b.clone()),
            Payload::Token(reg) => Ok(self.token(*reg)?.to_bytes().to_vec()),
            Payload::Pack(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for &(rank, reg) in entries {
                    let body = match reg {
                        Some(r) => self.token(r)?.to_bytes().to_vec(),
                        None => Vec::new(),
                    };
                    out.push((rank, body));
                }
                Ok(smcoll::encode_entries(&out))
            }
        }
    }

    fn apply_recv(&mut self, into: &RecvInto, body: Vec<u8>) -> Result<()> {
        match into {
            RecvInto::Discard => Ok(()),
            RecvInto::Verify(expected) => {
                if &body == expected {
                    Ok(())
                } else {
                    Err(proto(format!(
                        "control message mismatch: expected {} bytes, got {}",
                        expected.len(),
                        body.len()
                    )))
                }
            }
            RecvInto::Token(reg) => {
                let t = RemoteToken::from_bytes(&body)
                    .ok_or_else(|| proto("control message is not a remote token".into()))?;
                self.set_token(*reg, t)
            }
            RecvInto::Pack(entries) => {
                let decoded = smcoll::decode_entries(&body)?;
                if decoded.len() != entries.len() {
                    return Err(proto(format!(
                        "entry pack has {} entries, schedule expected {}",
                        decoded.len(),
                        entries.len()
                    )));
                }
                for (&(want_rank, reg), (got_rank, payload)) in entries.iter().zip(decoded) {
                    if want_rank != got_rank {
                        return Err(proto(format!(
                            "entry pack rank mismatch: expected {want_rank}, got {got_rank}"
                        )));
                    }
                    match reg {
                        Some(r) => {
                            let t = RemoteToken::from_bytes(&payload).ok_or_else(|| {
                                proto(format!("entry for rank {got_rank} is not a token"))
                            })?;
                            self.set_token(r, t)?;
                        }
                        None => {
                            if !payload.is_empty() {
                                return Err(proto(format!(
                                    "entry for rank {got_rank} should be empty, got {} bytes",
                                    payload.len()
                                )));
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Execute a compiled schedule on `comm` with the given bindings.
///
/// Scratch buffers declared by the plan are allocated up front and freed
/// on success. The schedule must have been compiled for this rank and
/// communicator size. Step spans go to the transport's own tracer
/// ([`Comm::tracer`]), so a traced simulator run carries the executor's
/// events without extra plumbing.
pub fn execute<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
) -> Result<ScheduleReport> {
    let tracer = comm.tracer();
    execute_traced(comm, sched, bind, &tracer)
}

/// [`execute`] with per-step trace spans: every IR step emits one
/// `step:<kind>` span on this rank's track, attributed to the schedule's
/// collective class, through the same recording path that feeds the
/// returned [`ScheduleReport`] (see [`ScheduleReport::from_events`]).
pub fn execute_traced<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
) -> Result<ScheduleReport> {
    if sched.rank != comm.rank() || sched.p != comm.size() {
        return Err(proto(format!(
            "schedule compiled for rank {}/{} executed on rank {}/{}",
            sched.rank,
            sched.p,
            comm.rank(),
            comm.size()
        )));
    }

    let mut ctx = Ctx {
        bind,
        temps: sched.temps.iter().map(|&len| comm.alloc(len)).collect(),
        regs: vec![None; sched.token_regs],
    };
    let mut rec = Recorder {
        report: ScheduleReport::default(),
        tracer,
        track: Track::Rank(comm.rank()),
        class: sched.class,
    };

    let start = comm.time_ns();
    let result = run_steps(comm, sched, &mut ctx, &mut rec);
    rec.report.total_ns = comm.time_ns().saturating_sub(start);

    // Free scratch even when a step failed mid-run.
    for t in ctx.temps.drain(..) {
        let _ = comm.free(t);
    }
    result.map(|()| rec.report)
}

fn run_steps<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    ctx: &mut Ctx<'_>,
    rec: &mut Recorder<'_>,
) -> Result<()> {
    for step in &sched.steps {
        let t0 = comm.time_ns();
        match step {
            Step::Expose { slot, reg } => {
                let buf = ctx.slot(*slot)?;
                let token = comm.expose(buf)?;
                ctx.set_token(*reg, token)?;
                rec.add(StepKind::Expose, 0, t0, comm.time_ns());
            }
            Step::CmaRead {
                token,
                remote_off,
                dst,
                dst_off,
                len,
            } => {
                let t = ctx.token(*token)?;
                let dst = ctx.slot(*dst)?;
                comm.cma_read(t, *remote_off, dst, *dst_off, *len)?;
                rec.add(StepKind::CmaRead, *len, t0, comm.time_ns());
            }
            Step::CmaWrite {
                token,
                remote_off,
                src,
                src_off,
                len,
            } => {
                let t = ctx.token(*token)?;
                let src = ctx.slot(*src)?;
                comm.cma_write(t, *remote_off, src, *src_off, *len)?;
                rec.add(StepKind::CmaWrite, *len, t0, comm.time_ns());
            }
            Step::CopyLocal {
                src,
                src_off,
                dst,
                dst_off,
                len,
            } => {
                let src = ctx.slot(*src)?;
                let dst = ctx.slot(*dst)?;
                comm.copy_local(src, *src_off, dst, *dst_off, *len)?;
                rec.add(StepKind::CopyLocal, *len, t0, comm.time_ns());
            }
            Step::CtrlSend { to, tag, payload } => {
                let body = ctx.render_payload(payload)?;
                comm.ctrl_send(*to, *tag, &body)?;
                rec.add(StepKind::CtrlSend, body.len(), t0, comm.time_ns());
            }
            Step::CtrlRecv { from, tag, into } => {
                let body = comm.ctrl_recv(*from, *tag)?;
                let n = body.len();
                ctx.apply_recv(into, body)?;
                rec.add(StepKind::CtrlRecv, n, t0, comm.time_ns());
            }
            Step::Notify { to, tag } => {
                comm.notify(*to, *tag)?;
                rec.add(StepKind::Notify, 0, t0, comm.time_ns());
            }
            Step::WaitNotify { from, tag } => {
                comm.wait_notify(*from, *tag)?;
                rec.add(StepKind::WaitNotify, 0, t0, comm.time_ns());
            }
            Step::ShmSend {
                to,
                tag,
                src,
                off,
                len,
            } => {
                let src = ctx.slot(*src)?;
                comm.shm_send_data(*to, *tag, src, *off, *len)?;
                rec.add(StepKind::ShmSend, *len, t0, comm.time_ns());
            }
            Step::ShmRecv {
                from,
                tag,
                dst,
                off,
                len,
            } => {
                let dst = ctx.slot(*dst)?;
                comm.shm_recv_data(*from, *tag, dst, *off, *len)?;
                rec.add(StepKind::ShmRecv, *len, t0, comm.time_ns());
            }
            Step::Reduce {
                op,
                dtype,
                acc,
                acc_off,
                src,
                src_off,
                len,
            } => {
                let acc_buf = ctx.slot(*acc)?;
                let src_buf = ctx.slot(*src)?;
                let mut acc_bytes = vec![0u8; *len];
                let mut src_bytes = vec![0u8; *len];
                comm.read_local(acc_buf, *acc_off, &mut acc_bytes)?;
                comm.read_local(src_buf, *src_off, &mut src_bytes)?;
                combine(&mut acc_bytes, &src_bytes, *dtype, *op);
                comm.write_local(acc_buf, *acc_off, &acc_bytes)?;
                rec.add(StepKind::Reduce, *len, t0, comm.time_ns());
            }
        }
    }
    Ok(())
}
