//! Generic schedule executor (execute phase).
//!
//! [`execute`] replays a compiled [`Schedule`] on any [`Comm`]: it binds
//! the schedule's symbolic [`Slot`]s to caller buffers, allocates the
//! scratch buffers the plan declares, resolves token registers as
//! `Expose`/`CtrlRecv` steps fill them, and runs every step in order
//! while recording per-step-kind wall/virtual time and byte counters
//! into a [`ScheduleReport`].
//!
//! On the simulator the timings are deterministic virtual nanoseconds;
//! on the native transports they are monotonic wall-clock nanoseconds —
//! both come from [`Comm::time_ns`], so the report means "time this rank
//! spent inside each primitive" on every transport.

use std::sync::OnceLock;

use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};
use kacc_trace::{Event, EventKind, Tracer, Track};

use crate::reduce::combine;
use crate::schedule::{Payload, RecvInto, Schedule, Slot, Step};

/// Liveness-watchdog and shrink parameters of the membership layer:
/// turns silent peer death into the typed [`CommError::PeerDead`] and
/// governs the shrink-and-re-execute loop in [`crate::membership`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipPolicy {
    /// Arm the liveness watchdog: blocking receives are bounded by
    /// `liveness_timeout_ns` (unless `step_timeout_ns` already bounds
    /// them), and an expired wait or transport `ESRCH` on a step with an
    /// identifiable peer becomes [`CommError::PeerDead`] naming that
    /// peer.
    pub watch: bool,
    /// Per-attempt liveness deadline for blocking receives, in
    /// nanoseconds (virtual under simulation). Ignored while `watch` is
    /// off or `step_timeout_ns` sets a deadline of its own.
    pub liveness_timeout_ns: u64,
    /// Most shrink-and-re-execute rounds the survivable driver attempts
    /// before surfacing the last typed error. Capped at 15 by the
    /// epoch re-tagging scheme (one hex nibble of the sub-tag).
    pub max_shrinks: u32,
    /// Pause between agreeing on a shrink and re-executing over the
    /// survivors, charged through [`Comm::sleep_ns`] so it is virtual
    /// time under simulation.
    pub restart_backoff_ns: u64,
    /// Record suspicions and *skip* the failing step instead of aborting
    /// on the first suspected peer. Only the agreement collective runs
    /// tolerant: it must complete over the survivors no matter who died.
    pub tolerant: bool,
}

impl MembershipPolicy {
    /// Watchdog off — executions behave exactly as they did before the
    /// membership layer existed. This is the `Default`, so existing
    /// policies are unchanged.
    pub fn disabled() -> MembershipPolicy {
        MembershipPolicy {
            watch: false,
            liveness_timeout_ns: 0,
            max_shrinks: 0,
            restart_backoff_ns: 0,
            tolerant: false,
        }
    }

    /// Watchdog armed with the defaults the survivable drivers use.
    pub fn survivable() -> MembershipPolicy {
        MembershipPolicy {
            watch: true,
            liveness_timeout_ns: 200_000,
            max_shrinks: 8,
            restart_backoff_ns: 10_000,
            tolerant: false,
        }
    }
}

impl Default for MembershipPolicy {
    fn default() -> MembershipPolicy {
        MembershipPolicy::disabled()
    }
}

/// How the executor reacts to faults surfaced by the transport.
///
/// The default policy retries transient errors a few times with
/// exponential backoff and degrades persistently-failing CMA steps to
/// the two-copy shared-memory fallback; it never bounds blocking waits
/// (`step_timeout_ns: None`), so a fault-free execution is identical to
/// the policy-free path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Consecutive failed attempts tolerated per step before giving up
    /// (or falling back). Progress — a short read that moved bytes —
    /// resets the budget.
    pub max_retries: u32,
    /// Base backoff between retries, doubled per consecutive failure
    /// (capped at `base << 5`); charged through [`Comm::sleep_ns`] so it
    /// is virtual time under simulation. `0` disables backoff.
    pub backoff_ns: u64,
    /// Degrade a persistently failing CMA step to the two-copy
    /// [`Comm::shm_fallback_read`]/`write` path instead of failing.
    pub cma_fallback: bool,
    /// Bound every blocking step (control receives, notification waits,
    /// bulk receives) to this many nanoseconds per attempt, turning a
    /// silent hang into a typed [`CommError::Timeout`]. `None` blocks
    /// forever, exactly as the transports do natively.
    pub step_timeout_ns: Option<u64>,
    /// Liveness watchdog and shrink parameters (off by default).
    pub membership: MembershipPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            backoff_ns: 1_000,
            cma_fallback: true,
            step_timeout_ns: None,
            membership: MembershipPolicy::disabled(),
        }
    }
}

impl RecoveryPolicy {
    /// A policy that retries nothing and falls back to nothing: every
    /// transport error propagates on first occurrence.
    pub fn none() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 0,
            cma_fallback: false,
            step_timeout_ns: None,
            membership: MembershipPolicy::disabled(),
        }
    }

    /// The default recovery ladder with the liveness watchdog armed
    /// ([`MembershipPolicy::survivable`]).
    pub fn survivable() -> RecoveryPolicy {
        RecoveryPolicy {
            membership: MembershipPolicy::survivable(),
            ..RecoveryPolicy::default()
        }
    }
}

/// What recovery did during one schedule execution. All-zero (its
/// `Default`) on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transient failures (EAGAIN-class) that were retried.
    pub transient_retries: u64,
    /// Time spent inside attempts that failed transiently.
    pub transient_ns: u64,
    /// Short CMA transfers resumed from a partial offset.
    pub short_resumes: u64,
    /// Bytes salvaged by those partial transfers.
    pub short_bytes: u64,
    /// Permission-denied faults routed to the fallback path.
    pub denied: u64,
    /// Time spent inside the denied attempts.
    pub denied_ns: u64,
    /// Bounded waits that expired ([`CommError::Timeout`]).
    pub timeouts: u64,
    /// Time spent waiting in those expired attempts.
    pub timeout_ns: u64,
    /// Backoff sleeps taken between retries.
    pub backoffs: u64,
    /// Total backoff time.
    pub backoff_ns: u64,
    /// CMA steps completed via the two-copy shared-memory fallback.
    pub fallbacks: u64,
    /// Bytes moved by the fallback path.
    pub fallback_bytes: u64,
    /// Time spent inside the fallback transfers.
    pub fallback_ns: u64,
    /// Peers the liveness watchdog suspected dead.
    pub suspects: u64,
    /// Time spent inside the attempts that raised those suspicions.
    pub suspect_ns: u64,
    /// Bitmask of suspected ranks, bit `rank & 63` per suspicion (ranks
    /// are parent-communicator numbers; the executor enforces `p <= 64`
    /// only in the membership driver, so the mask wraps above 64).
    pub suspect_mask: u64,
}

impl RecoveryReport {
    /// True when no recovery action fired (the execution was fault-free).
    pub fn is_clean(&self) -> bool {
        *self == RecoveryReport::default()
    }

    /// Alias of [`RecoveryReport::is_clean`] named for the survivable
    /// API: a fault-free survivable run reports an *empty* recovery.
    pub fn is_empty(&self) -> bool {
        self.is_clean()
    }

    /// Fold one recovery span into the counters; returns false for span
    /// names that are not recovery spans. Shared by the live recorder
    /// and [`ScheduleReport::from_events`] so the two cannot drift.
    fn add_span(&mut self, name: &str, bytes: u64, dt: u64) -> bool {
        match name {
            "fault:transient" => {
                self.transient_retries += 1;
                self.transient_ns += dt;
            }
            "fault:short" => {
                self.short_resumes += 1;
                self.short_bytes += bytes;
            }
            "fault:denied" => {
                self.denied += 1;
                self.denied_ns += dt;
            }
            "fault:timeout" => {
                self.timeouts += 1;
                self.timeout_ns += dt;
            }
            "retry:backoff" => {
                self.backoffs += 1;
                self.backoff_ns += dt;
            }
            "fallback:read" | "fallback:write" => {
                self.fallbacks += 1;
                self.fallback_bytes += bytes;
                self.fallback_ns += dt;
            }
            // The suspected rank travels in the span's bytes field.
            "membership:suspect" => {
                self.suspects += 1;
                self.suspect_ns += dt;
                self.suspect_mask |= 1u64 << (bytes & 63);
            }
            _ => return false,
        }
        true
    }
}

/// Caller buffers a schedule's symbolic slots resolve to.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bindings {
    /// Buffer behind [`Slot::Send`], if the plan references it.
    pub send: Option<BufId>,
    /// Buffer behind [`Slot::Recv`], if the plan references it.
    pub recv: Option<BufId>,
}

/// Accumulated count / bytes / time for one step kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Steps of this kind executed.
    pub count: u64,
    /// Payload bytes they moved (0 for pure synchronization).
    pub bytes: u64,
    /// Time spent inside them, in `Comm::time_ns` units (virtual under
    /// simulation, wall-clock on native transports).
    pub time_ns: u64,
}

impl StepStats {
    fn add(&mut self, bytes: usize, dt: u64) {
        self.count += 1;
        self.bytes += bytes as u64;
        self.time_ns += dt;
    }
}

/// Step kinds the executor records — one per [`ScheduleReport`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepKind {
    Expose,
    CmaRead,
    CmaWrite,
    CopyLocal,
    CtrlSend,
    CtrlRecv,
    Notify,
    WaitNotify,
    ShmSend,
    ShmRecv,
    Reduce,
}

impl StepKind {
    /// Span name in the trace; the `step:` prefix keeps executor spans
    /// distinct from the machine layer's transport spans of similar names.
    pub(crate) fn span_name(self) -> &'static str {
        match self {
            StepKind::Expose => "step:expose",
            StepKind::CmaRead => "step:cma_read",
            StepKind::CmaWrite => "step:cma_write",
            StepKind::CopyLocal => "step:copy_local",
            StepKind::CtrlSend => "step:ctrl_send",
            StepKind::CtrlRecv => "step:ctrl_recv",
            StepKind::Notify => "step:notify",
            StepKind::WaitNotify => "step:wait_notify",
            StepKind::ShmSend => "step:shm_send",
            StepKind::ShmRecv => "step:shm_recv",
            StepKind::Reduce => "step:reduce",
        }
    }

    fn from_span_name(name: &str) -> Option<StepKind> {
        Some(match name {
            "step:expose" => StepKind::Expose,
            "step:cma_read" => StepKind::CmaRead,
            "step:cma_write" => StepKind::CmaWrite,
            "step:copy_local" => StepKind::CopyLocal,
            "step:ctrl_send" => StepKind::CtrlSend,
            "step:ctrl_recv" => StepKind::CtrlRecv,
            "step:notify" => StepKind::Notify,
            "step:wait_notify" => StepKind::WaitNotify,
            "step:shm_send" => StepKind::ShmSend,
            "step:shm_recv" => StepKind::ShmRecv,
            "step:reduce" => StepKind::Reduce,
            _ => return None,
        })
    }

    /// Every kind, in discriminant order — `kind as usize` indexes
    /// tables built from this array (the metrics handle table relies
    /// on that alignment).
    pub(crate) const ALL: [StepKind; 11] = [
        StepKind::Expose,
        StepKind::CmaRead,
        StepKind::CmaWrite,
        StepKind::CopyLocal,
        StepKind::CtrlSend,
        StepKind::CtrlRecv,
        StepKind::Notify,
        StepKind::WaitNotify,
        StepKind::ShmSend,
        StepKind::ShmRecv,
        StepKind::Reduce,
    ];
}

/// Pre-resolved `kacc-metrics` handles for the executor. Registered
/// once per process; recording through a cached handle is a couple of
/// relaxed atomic ops, so the always-on path stays off the lock in the
/// metric registry.
struct CollHandles {
    /// Per-step-kind latency histograms, indexed by `StepKind as usize`.
    steps: [kacc_metrics::Hist; 11],
    /// End-to-end schedule latency across all collective classes.
    exec_ns: kacc_metrics::Hist,
    /// Per-collective-class latency histograms (`coll.bcast.ns`, ...).
    class_ns: Vec<(u32, kacc_metrics::Hist)>,
    transient_retries: kacc_metrics::Counter,
    short_resumes: kacc_metrics::Counter,
    short_bytes: kacc_metrics::Counter,
    denied: kacc_metrics::Counter,
    timeouts: kacc_metrics::Counter,
    backoffs: kacc_metrics::Counter,
    fallbacks: kacc_metrics::Counter,
    fallback_bytes: kacc_metrics::Counter,
    suspects: kacc_metrics::Counter,
}

fn coll_handles() -> &'static CollHandles {
    static HANDLES: OnceLock<CollHandles> = OnceLock::new();
    HANDLES.get_or_init(|| CollHandles {
        steps: StepKind::ALL.map(|k| {
            let short = k.span_name().trim_start_matches("step:");
            kacc_metrics::hist(&format!("coll.step.{short}.ns"))
        }),
        exec_ns: kacc_metrics::hist("coll.exec.ns"),
        class_ns: kacc_comm::tagclass::ALL
            .iter()
            .map(|&(class, name)| {
                let short = name.rsplit("::").next().unwrap_or(name);
                (class, kacc_metrics::hist(&format!("coll.{short}.ns")))
            })
            .collect(),
        transient_retries: kacc_metrics::counter("coll.recovery.transient_retries"),
        short_resumes: kacc_metrics::counter("coll.recovery.short_resumes"),
        short_bytes: kacc_metrics::counter("coll.recovery.short_bytes"),
        denied: kacc_metrics::counter("coll.recovery.denied"),
        timeouts: kacc_metrics::counter("coll.recovery.timeouts"),
        backoffs: kacc_metrics::counter("coll.recovery.backoffs"),
        fallbacks: kacc_metrics::counter("coll.recovery.fallbacks"),
        fallback_bytes: kacc_metrics::counter("coll.recovery.fallback_bytes"),
        suspects: kacc_metrics::counter("coll.recovery.suspects"),
    })
}

/// Quantile (parts-per-million) of the per-step latency distribution
/// reported as [`ScheduleReport::step_p99_ns`].
pub(crate) const P99_PPM: u64 = 990_000;

/// The single recording path: every executed step flows through
/// [`Recorder::add`], which updates the [`ScheduleReport`] *and* emits the
/// trace span from the same measurements — counts and bytes can never
/// drift between the two.
pub(crate) struct Recorder<'t> {
    pub(crate) report: ScheduleReport,
    pub(crate) tracer: &'t Tracer,
    pub(crate) track: Track,
    pub(crate) class: Option<u32>,
    /// Per-step-kind latency samples of this execution, indexed by
    /// `StepKind as usize`; plain-field accumulation keeps the per-step
    /// hot path free of atomics — [`Recorder::finish`] folds them into
    /// the global histograms in one merge per touched kind.
    pub(crate) step_lats: [kacc_metrics::LocalHist; 11],
}

impl<'t> Recorder<'t> {
    pub(crate) fn new(tracer: &'t Tracer, track: Track, class: Option<u32>) -> Recorder<'t> {
        Recorder {
            report: ScheduleReport::default(),
            tracer,
            track,
            class,
            step_lats: std::array::from_fn(|_| kacc_metrics::LocalHist::default()),
        }
    }

    pub(crate) fn add(&mut self, kind: StepKind, bytes: usize, t0: u64, t1: u64) {
        let dt = t1.saturating_sub(t0);
        self.report.stat_mut(kind).add(bytes, dt);
        self.report.steps += 1;
        self.step_lats[kind as usize].record(dt);
        self.tracer.span(
            self.track,
            kind.span_name(),
            t0,
            dt as f64,
            bytes as u64,
            self.class,
        );
    }

    /// Record one recovery action (`fault:*` / `retry:*` / `fallback:*`).
    /// Recovery spans do not count as steps and never extend `total_ns`
    /// computation in [`ScheduleReport::from_events`] — they nest inside
    /// the step span that eventually succeeds or fails.
    pub(crate) fn recovery(&mut self, name: &'static str, bytes: usize, t0: u64, t1: u64) {
        let dt = t1.saturating_sub(t0);
        self.report.recovery.add_span(name, bytes as u64, dt);
        self.tracer
            .span(self.track, name, t0, dt as f64, bytes as u64, self.class);
    }

    /// Close out one schedule execution: stamp `total_ns` and the
    /// observed per-step p99, record the end-to-end latency into the
    /// global and per-class histograms, and fold the recovery counters
    /// into the metric registry. Called by both engines' executors so
    /// the metrics cannot drift between them.
    pub(crate) fn finish(&mut self, total_ns: u64) {
        self.report.total_ns = total_ns;
        let mut all = kacc_metrics::LocalHist::default();
        for local in &self.step_lats {
            all.merge(local);
        }
        self.report.step_p99_ns = all.quantile_bound(P99_PPM);
        let h = coll_handles();
        for (kind, local) in h.steps.iter().zip(&self.step_lats) {
            kind.merge_local(local);
        }
        h.exec_ns.record(total_ns);
        if let Some(class) = self.class {
            if let Some((_, hist)) = h.class_ns.iter().find(|(c, _)| *c == class) {
                hist.record(total_ns);
            }
        }
        let r = &self.report.recovery;
        h.transient_retries.add(r.transient_retries);
        h.short_resumes.add(r.short_resumes);
        h.short_bytes.add(r.short_bytes);
        h.denied.add(r.denied);
        h.timeouts.add(r.timeouts);
        h.backoffs.add(r.backoffs);
        h.fallbacks.add(r.fallbacks);
        h.fallback_bytes.add(r.fallback_bytes);
        h.suspects.add(r.suspects);
    }
}

/// Per-step-kind accounting for one schedule execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// `expose` calls.
    pub expose: StepStats,
    /// Single-copy reads (bytes = payload read).
    pub cma_read: StepStats,
    /// Single-copy writes (bytes = payload written).
    pub cma_write: StepStats,
    /// Local charged copies.
    pub copy_local: StepStats,
    /// Control-plane sends (bytes = wire bytes).
    pub ctrl_send: StepStats,
    /// Control-plane receives (bytes = wire bytes).
    pub ctrl_recv: StepStats,
    /// 0-byte notification sends.
    pub notify: StepStats,
    /// 0-byte notification waits.
    pub wait_notify: StepStats,
    /// Two-copy shared-memory sends.
    pub shm_send: StepStats,
    /// Two-copy shared-memory receives.
    pub shm_recv: StepStats,
    /// Element-wise reductions (bytes = reduced region size).
    pub reduce: StepStats,
    /// Steps executed in total.
    pub steps: u64,
    /// Watermark: index of the first IR step this execution did *not*
    /// complete — equal to the schedule length on success. A torn
    /// execution's watermark tells the membership layer where a resume
    /// attempt may pick up instead of re-running completed exchanges.
    pub completed_steps: u64,
    /// Conservative p99 bound of this execution's per-step latencies
    /// (0 when no step completed). This is the *observed* half of the
    /// membership layer's adaptive liveness deadline; the other half is
    /// the analytic plan-cost estimate.
    pub step_p99_ns: u64,
    /// End-to-end time from first step to last, in `time_ns` units.
    pub total_ns: u64,
    /// What the recovery machinery did (all-zero on a fault-free run).
    pub recovery: RecoveryReport,
}

impl ScheduleReport {
    /// Total bytes moved by kernel-assisted reads.
    pub fn bytes_read(&self) -> u64 {
        self.cma_read.bytes
    }

    /// Total bytes moved by kernel-assisted writes.
    pub fn bytes_written(&self) -> u64 {
        self.cma_write.bytes
    }

    fn stat_mut(&mut self, kind: StepKind) -> &mut StepStats {
        match kind {
            StepKind::Expose => &mut self.expose,
            StepKind::CmaRead => &mut self.cma_read,
            StepKind::CmaWrite => &mut self.cma_write,
            StepKind::CopyLocal => &mut self.copy_local,
            StepKind::CtrlSend => &mut self.ctrl_send,
            StepKind::CtrlRecv => &mut self.ctrl_recv,
            StepKind::Notify => &mut self.notify,
            StepKind::WaitNotify => &mut self.wait_notify,
            StepKind::ShmSend => &mut self.shm_send,
            StepKind::ShmRecv => &mut self.shm_recv,
            StepKind::Reduce => &mut self.reduce,
        }
    }

    /// Rebuild a report from the executor's `step:*` spans (other events
    /// are ignored). Because [`execute_traced`] records report and spans
    /// through one path, `from_events` over one execution's events equals
    /// the returned report exactly. Pass events from a single rank's
    /// execution (filter by [`Track`] first when a trace holds several).
    pub fn from_events(events: &[Event]) -> ScheduleReport {
        let mut report = ScheduleReport::default();
        let mut first_start: Option<u64> = None;
        let mut last_end: u64 = 0;
        let mut lats = kacc_metrics::LocalHist::default();
        for ev in events {
            let EventKind::Span { ts, dur } = ev.kind else {
                continue;
            };
            // Executor spans carry whole-nanosecond durations, so the f64
            // round-trips exactly.
            let dt = dur as u64;
            let Some(kind) = StepKind::from_span_name(ev.name) else {
                // Recovery spans rebuild the RecoveryReport but are not
                // steps and do not bound total_ns (they nest inside their
                // step's span).
                report.recovery.add_span(ev.name, ev.bytes, dt);
                continue;
            };
            report.stat_mut(kind).add(ev.bytes as usize, dt);
            report.steps += 1;
            lats.record(dt);
            first_start = Some(first_start.map_or(ts, |f| f.min(ts)));
            last_end = last_end.max(ts + dt);
        }
        // A span exists exactly for each completed step, so the rebuilt
        // watermark and latency quantile mirror the live recorder's
        // (resume attempts and tolerant skips are internal to the
        // membership layer and never round-trip through events).
        report.completed_steps = report.steps;
        report.step_p99_ns = lats.quantile_bound(P99_PPM);
        report.total_ns = first_start.map_or(0, |f| last_end.saturating_sub(f));
        report
    }
}

pub(crate) fn proto(msg: String) -> CommError {
    CommError::Protocol(msg)
}

pub(crate) struct Ctx<'a> {
    pub(crate) bind: &'a Bindings,
    pub(crate) temps: Vec<BufId>,
    pub(crate) regs: Vec<Option<RemoteToken>>,
}

impl Ctx<'_> {
    pub(crate) fn slot(&self, s: Slot) -> Result<BufId> {
        match s {
            Slot::Send => self.bind.send.ok_or_else(|| {
                proto("schedule references Send but no send buffer is bound".into())
            }),
            Slot::Recv => self.bind.recv.ok_or_else(|| {
                proto("schedule references Recv but no recv buffer is bound".into())
            }),
            Slot::Temp(i) => self
                .temps
                .get(i as usize)
                .copied()
                .ok_or_else(|| proto(format!("schedule references undeclared temp {i}"))),
        }
    }

    pub(crate) fn token(&self, reg: crate::schedule::TokenReg) -> Result<RemoteToken> {
        self.regs
            .get(reg.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| {
                proto(format!(
                    "token register {} used before it was filled",
                    reg.0
                ))
            })
    }

    pub(crate) fn set_token(
        &mut self,
        reg: crate::schedule::TokenReg,
        t: RemoteToken,
    ) -> Result<()> {
        let slot = self
            .regs
            .get_mut(reg.0 as usize)
            .ok_or_else(|| proto(format!("token register {} out of range", reg.0)))?;
        *slot = Some(t);
        Ok(())
    }

    pub(crate) fn render_payload(&self, p: &Payload) -> Result<Vec<u8>> {
        match p {
            Payload::Bytes(b) => Ok(b.clone()),
            Payload::Token(reg) => Ok(self.token(*reg)?.to_bytes().to_vec()),
            Payload::Pack(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for &(rank, reg) in entries {
                    let body = match reg {
                        Some(r) => self.token(r)?.to_bytes().to_vec(),
                        None => Vec::new(),
                    };
                    out.push((rank, body));
                }
                Ok(smcoll::encode_entries(&out))
            }
        }
    }

    pub(crate) fn apply_recv(&mut self, into: &RecvInto, body: Vec<u8>) -> Result<()> {
        match into {
            RecvInto::Discard => Ok(()),
            RecvInto::Verify(expected) => {
                if &body == expected {
                    Ok(())
                } else {
                    Err(proto(format!(
                        "control message mismatch: expected {} bytes, got {}",
                        expected.len(),
                        body.len()
                    )))
                }
            }
            RecvInto::Token(reg) => {
                let t = RemoteToken::from_bytes(&body)
                    .ok_or_else(|| proto("control message is not a remote token".into()))?;
                self.set_token(*reg, t)
            }
            RecvInto::Pack(entries) => {
                let decoded = smcoll::decode_entries(&body)?;
                if decoded.len() != entries.len() {
                    return Err(proto(format!(
                        "entry pack has {} entries, schedule expected {}",
                        decoded.len(),
                        entries.len()
                    )));
                }
                for (&(want_rank, reg), (got_rank, payload)) in entries.iter().zip(decoded) {
                    if want_rank != got_rank {
                        return Err(proto(format!(
                            "entry pack rank mismatch: expected {want_rank}, got {got_rank}"
                        )));
                    }
                    match reg {
                        Some(r) => {
                            let t = RemoteToken::from_bytes(&payload).ok_or_else(|| {
                                proto(format!("entry for rank {got_rank} is not a token"))
                            })?;
                            self.set_token(r, t)?;
                        }
                        None => {
                            if !payload.is_empty() {
                                return Err(proto(format!(
                                    "entry for rank {got_rank} should be empty, got {} bytes",
                                    payload.len()
                                )));
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Execute a compiled schedule on `comm` with the given bindings.
///
/// Scratch buffers declared by the plan are allocated up front and freed
/// on success. The schedule must have been compiled for this rank and
/// communicator size. Step spans go to the transport's own tracer
/// ([`Comm::tracer`]), so a traced simulator run carries the executor's
/// events without extra plumbing.
pub fn execute<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
) -> Result<ScheduleReport> {
    let tracer = comm.tracer();
    execute_traced(comm, sched, bind, &tracer)
}

/// [`execute`] with per-step trace spans: every IR step emits one
/// `step:<kind>` span on this rank's track, attributed to the schedule's
/// collective class, through the same recording path that feeds the
/// returned [`ScheduleReport`] (see [`ScheduleReport::from_events`]).
///
/// Runs under [`RecoveryPolicy::default`]: a fault-free execution takes
/// exactly the same transport calls (and, under simulation, the same
/// virtual time) as it did before recovery existed, while injected or
/// real transient faults are retried instead of aborting the collective.
pub fn execute_traced<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
) -> Result<ScheduleReport> {
    execute_with_policy(comm, sched, bind, tracer, &RecoveryPolicy::default())
}

/// [`execute_traced`] with an explicit [`RecoveryPolicy`].
///
/// Every fallible step runs through a bounded retry loop:
///
/// * transient errors (EAGAIN-class `Os`, [`CommError::Timeout`]) retry
///   up to `max_retries` times with exponential backoff charged via
///   [`Comm::sleep_ns`];
/// * short CMA transfers ([`CommError::Truncated`]) resume from the
///   partial offset — forward progress resets the retry budget;
/// * persistently failing CMA steps degrade to the two-copy
///   [`Comm::shm_fallback_read`]/`write` path when `cma_fallback` is on
///   (peer death, `Os(ESRCH)`, is never degraded — a dead peer cannot
///   serve the fallback either);
/// * with `step_timeout_ns` set, blocking receives use the transports'
///   deadline variants so a lost message or dead peer surfaces as
///   [`CommError::Timeout`] instead of a hang.
///
/// Every action is recorded in [`ScheduleReport::recovery`] and emitted
/// as a `fault:*` / `retry:*` / `fallback:*` span nested inside the
/// step's own span.
pub fn execute_with_policy<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
    policy: &RecoveryPolicy,
) -> Result<ScheduleReport> {
    if sched.rank != comm.rank() || sched.p != comm.size() {
        return Err(proto(format!(
            "schedule compiled for rank {}/{} executed on rank {}/{}",
            sched.rank,
            sched.p,
            comm.rank(),
            comm.size()
        )));
    }

    let mut resume = None;
    let (result, report) = execute_resumable(comm, sched, bind, tracer, policy, &mut resume);
    // Public entry points never resume: abandon any torn-execution
    // state so scratch is freed exactly as it always was.
    if let Some(state) = resume {
        state.abandon(comm);
    }
    result.map(|()| report)
}

/// Execution state that survives a torn schedule run so a later attempt
/// can resume from the watermark instead of starting over: scratch
/// buffers hold staged data (e.g. Bruck rotations), token registers hold
/// the peers' exposures already collected by completed control steps.
pub(crate) struct ResumeState {
    temps: Vec<BufId>,
    regs: Vec<Option<RemoteToken>>,
    /// Index of the first IR step the next attempt must run.
    next_step: usize,
}

impl ResumeState {
    pub(crate) fn new(
        temps: Vec<BufId>,
        regs: Vec<Option<RemoteToken>>,
        next_step: usize,
    ) -> ResumeState {
        ResumeState {
            temps,
            regs,
            next_step,
        }
    }

    /// Index of the first IR step the next attempt must run.
    pub(crate) fn next_step(&self) -> usize {
        self.next_step
    }

    /// Whether this state's shape matches `sched` — the guard against
    /// resuming into a different plan.
    pub(crate) fn matches(&self, sched: &Schedule) -> bool {
        self.temps.len() == sched.temps.len() && self.regs.len() == sched.token_regs
    }

    /// Tear the state apart for reuse (or for freeing by an engine whose
    /// endpoint does not implement [`Comm`], i.e. the polled engine).
    pub(crate) fn into_parts(self) -> (Vec<BufId>, Vec<Option<RemoteToken>>) {
        (self.temps, self.regs)
    }

    /// Give up on resuming: free the preserved scratch buffers.
    pub(crate) fn abandon<C: Comm + ?Sized>(self, comm: &mut C) {
        for t in self.temps {
            let _ = comm.free(t);
        }
    }
}

/// [`execute_with_policy`] with partial-progress resume: the membership
/// layer's crate-internal entry point.
///
/// Always returns the execution's [`ScheduleReport`], even when a step
/// failed — a torn run's report carries the watermark
/// ([`ScheduleReport::completed_steps`]) and the observed step-latency
/// p99 the adaptive liveness deadline feeds on.
///
/// On entry, `resume` carries the state of a previous torn attempt of
/// the *same* schedule (or `None` for a fresh run). On a torn exit the
/// state is stored back with an updated watermark and scratch is *not*
/// freed; on success (or a non-resumable error shape) the state is
/// consumed and scratch is freed. A caller that decides not to resume
/// must call [`ResumeState::abandon`].
pub(crate) fn execute_resumable<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    bind: &Bindings,
    tracer: &Tracer,
    policy: &RecoveryPolicy,
    resume: &mut Option<ResumeState>,
) -> (Result<()>, ScheduleReport) {
    if sched.rank != comm.rank() || sched.p != comm.size() {
        let e = proto(format!(
            "schedule compiled for rank {}/{} executed on rank {}/{}",
            sched.rank,
            sched.p,
            comm.rank(),
            comm.size()
        ));
        return (Err(e), ScheduleReport::default());
    }

    let (mut ctx, start) = match resume.take() {
        Some(st) if st.matches(sched) => {
            let start = st.next_step.min(sched.steps.len());
            let (temps, regs) = st.into_parts();
            (Ctx { bind, temps, regs }, start)
        }
        Some(st) => {
            // Shape drifted under the caller (different plan): resuming
            // would corrupt state. Start over.
            st.abandon(comm);
            (
                Ctx {
                    bind,
                    temps: sched.temps.iter().map(|&len| comm.alloc(len)).collect(),
                    regs: vec![None; sched.token_regs],
                },
                0,
            )
        }
        None => (
            Ctx {
                bind,
                temps: sched.temps.iter().map(|&len| comm.alloc(len)).collect(),
                regs: vec![None; sched.token_regs],
            },
            0,
        ),
    };
    let mut rec = Recorder::new(tracer, Track::Rank(comm.rank()), sched.class);

    let t_start = comm.time_ns();
    let result = run_steps(comm, sched, &mut ctx, &mut rec, policy, start);
    rec.finish(comm.time_ns().saturating_sub(t_start));

    match result {
        Ok(()) => {
            for t in ctx.temps.drain(..) {
                let _ = comm.free(t);
            }
            (Ok(()), rec.report)
        }
        Err(e) => {
            *resume = Some(ResumeState::new(
                std::mem::take(&mut ctx.temps),
                std::mem::take(&mut ctx.regs),
                rec.report.completed_steps as usize,
            ));
            (Err(e), rec.report)
        }
    }
}

/// `errno` for "no such process": the peer died. Named locally to keep
/// this crate libc-free.
pub(crate) const ESRCH: i32 = 3;

/// True for errors worth retrying in place: the operation may succeed on
/// a later attempt with no change of data path. `Os(ESRCH)` — peer died —
/// is permanent; so is `PermissionDenied`, which recovery routes to the
/// fallback path instead of the retry loop.
pub(crate) fn is_transient(e: &CommError) -> bool {
    match e {
        CommError::Os(code) => *code != ESRCH,
        CommError::Timeout { .. } => true,
        _ => false,
    }
}

/// True for errors the liveness watchdog attributes to peer death: an
/// expired bounded wait, the transport's `ESRCH`, or an already-typed
/// peer-death report.
pub(crate) fn is_suspect_error(e: &CommError) -> bool {
    matches!(
        e,
        CommError::Timeout { .. } | CommError::Os(ESRCH) | CommError::PeerDead(_)
    )
}

/// The deadline a blocking receive runs under: the explicit step timeout
/// when set, else the membership liveness deadline when the watchdog is
/// armed, else unbounded.
pub(crate) fn recv_deadline_ns(policy: &RecoveryPolicy) -> Option<u64> {
    policy.step_timeout_ns.or_else(|| {
        policy
            .membership
            .watch
            .then_some(policy.membership.liveness_timeout_ns)
    })
}

/// The remote rank a step communicates with, when one is identifiable —
/// the suspect the watchdog charges a failure of this step to. CMA
/// transfers resolve their peer through the token register, which is
/// filled by the time the transfer can fail; steps with no peer (local
/// copies, reductions, exposes) return `None`.
pub(crate) fn step_peer(step: &Step, ctx: &Ctx<'_>) -> Option<usize> {
    match step {
        Step::CtrlSend { to, .. } | Step::Notify { to, .. } | Step::ShmSend { to, .. } => Some(*to),
        Step::CtrlRecv { from, .. }
        | Step::WaitNotify { from, .. }
        | Step::ShmRecv { from, .. } => Some(*from),
        Step::CmaRead { token, .. } | Step::CmaWrite { token, .. } => {
            ctx.token(*token).ok().map(|t| t.rank as usize)
        }
        Step::Expose { .. } | Step::CopyLocal { .. } | Step::Reduce { .. } => None,
    }
}

/// Sleep the policy's exponential backoff for the `attempt`-th
/// consecutive failure (1-based), charging it on the transport's clock.
fn backoff<C: Comm + ?Sized>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    attempt: u32,
) {
    if policy.backoff_ns == 0 {
        return;
    }
    let ns = policy.backoff_ns << (attempt.min(6) - 1).min(5);
    let t0 = comm.time_ns();
    comm.sleep_ns(ns);
    rec.recovery("retry:backoff", 0, t0, comm.time_ns());
}

/// Run one non-resumable operation under the transient-retry loop.
fn retry_transient<C: Comm + ?Sized, T>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    mut op: impl FnMut(&mut C) -> Result<T>,
) -> Result<T> {
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        match op(comm) {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
                backoff(comm, rec, policy, attempts);
            }
            Err(e) => return Err(e),
        }
    }
}

/// A CMA read or write with the full recovery ladder: short transfers
/// resume from the partial offset (progress resets the retry budget),
/// transient errors retry with backoff, and persistent failure or
/// permission denial degrades to the two-copy fallback when allowed.
#[allow(clippy::too_many_arguments)]
fn recovered_cma<C: Comm + ?Sized>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    read: bool,
    token: RemoteToken,
    remote_off: usize,
    local: BufId,
    local_off: usize,
    len: usize,
) -> Result<()> {
    let mut at = 0usize;
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = if read {
            comm.cma_read(token, remote_off + at, local, local_off + at, len - at)
        } else {
            comm.cma_write(token, remote_off + at, local, local_off + at, len - at)
        };
        let e = match r {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        match e {
            CommError::Truncated { got, .. } if got > 0 => {
                // Forward progress: resume past the bytes that landed.
                rec.recovery("fault:short", got, t0, comm.time_ns());
                at += got.min(len - at);
                attempts = 0;
                if at >= len {
                    return Ok(());
                }
            }
            CommError::Truncated { .. } => {
                // Zero-progress truncation is just a transient failure.
                rec.recovery("fault:short", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    let orig = CommError::Truncated {
                        wanted: len,
                        got: at,
                    };
                    return fallback_or(
                        comm, rec, policy, read, orig, token, remote_off, at, local, local_off, len,
                    );
                }
                backoff(comm, rec, policy, attempts);
            }
            CommError::PermissionDenied => {
                // Revoked access never heals by retrying the same path.
                rec.recovery("fault:denied", 0, t0, comm.time_ns());
                return fallback_or(
                    comm,
                    rec,
                    policy,
                    read,
                    CommError::PermissionDenied,
                    token,
                    remote_off,
                    at,
                    local,
                    local_off,
                    len,
                );
            }
            e if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return fallback_or(
                        comm, rec, policy, read, e, token, remote_off, at, local, local_off, len,
                    );
                }
                backoff(comm, rec, policy, attempts);
            }
            e => return Err(e),
        }
    }
}

/// Finish the remainder (`at..len`) of a failed CMA step over the
/// two-copy shared-memory fallback, or return the original CMA error
/// when the policy forbids it, the peer is dead, or the transport cannot
/// stage the fallback. The *original* error is surfaced in every failure
/// case — it names the root cause; the fallback failing is secondary.
#[allow(clippy::too_many_arguments)]
fn fallback_or<C: Comm + ?Sized>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    read: bool,
    orig: CommError,
    token: RemoteToken,
    remote_off: usize,
    at: usize,
    local: BufId,
    local_off: usize,
    len: usize,
) -> Result<()> {
    let peer_dead = matches!(orig, CommError::Os(ESRCH) | CommError::PeerDead(_));
    if !policy.cma_fallback || peer_dead {
        return Err(orig);
    }
    let rest = len - at;
    let t0 = comm.time_ns();
    let r = if read {
        comm.shm_fallback_read(token, remote_off + at, local, local_off + at, rest)
    } else {
        comm.shm_fallback_write(token, remote_off + at, local, local_off + at, rest)
    };
    match r {
        Ok(()) => {
            let name = if read {
                "fallback:read"
            } else {
                "fallback:write"
            };
            rec.recovery(name, rest, t0, comm.time_ns());
            Ok(())
        }
        Err(_) => Err(orig),
    }
}

/// A control receive under the policy: bounded by `step_timeout_ns` when
/// set (expiry surfaces as [`CommError::Timeout`] and counts against the
/// retry budget without backoff — the wait itself was the delay), and
/// retried on transient errors like every other step.
fn recovered_ctrl_recv<C: Comm + ?Sized>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    from: usize,
    tag: Tag,
) -> Result<Vec<u8>> {
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = match recv_deadline_ns(policy) {
            Some(ns) => match comm.ctrl_recv_deadline(from, tag, ns) {
                Ok(Some(body)) => Ok(body),
                Ok(None) => Err(CommError::Timeout { waited_ns: ns }),
                Err(e) => Err(e),
            },
            None => comm.ctrl_recv(from, tag),
        };
        match r {
            Ok(body) => return Ok(body),
            Err(e @ CommError::Timeout { .. }) => {
                rec.recovery("fault:timeout", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
            }
            Err(e) if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
                backoff(comm, rec, policy, attempts);
            }
            Err(e) => return Err(e),
        }
    }
}

/// A bulk shared-memory receive under the policy; the deadline-bounded
/// twin of [`recovered_ctrl_recv`] for the two-copy data plane.
#[allow(clippy::too_many_arguments)]
fn recovered_shm_recv<C: Comm + ?Sized>(
    comm: &mut C,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    from: usize,
    tag: Tag,
    dst: BufId,
    off: usize,
    len: usize,
) -> Result<()> {
    let mut attempts = 0u32;
    loop {
        let t0 = comm.time_ns();
        let r = match recv_deadline_ns(policy) {
            Some(ns) => match comm.shm_recv_deadline(from, tag, dst, off, len, ns) {
                Ok(true) => Ok(()),
                Ok(false) => Err(CommError::Timeout { waited_ns: ns }),
                Err(e) => Err(e),
            },
            None => comm.shm_recv_data(from, tag, dst, off, len),
        };
        match r {
            Ok(()) => return Ok(()),
            Err(e @ CommError::Timeout { .. }) => {
                rec.recovery("fault:timeout", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
            }
            Err(e) if is_transient(&e) => {
                rec.recovery("fault:transient", 0, t0, comm.time_ns());
                attempts += 1;
                if attempts > policy.max_retries {
                    return Err(e);
                }
                backoff(comm, rec, policy, attempts);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run every step, interposing the liveness watchdog: when the policy's
/// membership watch is armed and a step with an identifiable peer dies
/// with a suspect error (timeout, `ESRCH`), the failure is recorded as
/// a `membership:suspect` span and either converted to the typed
/// [`CommError::PeerDead`] or — under a tolerant policy — the step is
/// skipped so the rest of the schedule still runs.
fn run_steps<C: Comm + ?Sized>(
    comm: &mut C,
    sched: &Schedule,
    ctx: &mut Ctx<'_>,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    start: usize,
) -> Result<()> {
    rec.report.completed_steps = start as u64;
    let mut suspects: Vec<usize> = Vec::new();
    for step in &sched.steps[start..] {
        let t0 = comm.time_ns();
        let m = &policy.membership;
        if m.watch && m.tolerant {
            if let Some(peer) = step_peer(step, ctx) {
                if suspects.contains(&peer) {
                    // A peer that already missed one deadline in this
                    // run will not answer later steps either; skipping
                    // immediately bounds a rank's detection lateness to
                    // one timeout chain instead of one per torn
                    // exchange, which keeps stragglers inside the
                    // agreement's refutation window.
                    rec.recovery("membership:suspect", peer, t0, t0);
                    rec.report.completed_steps += 1;
                    continue;
                }
            }
        }
        if let Err(e) = run_one_step(comm, step, ctx, rec, policy, t0) {
            let m = &policy.membership;
            if m.watch && is_suspect_error(&e) {
                if let Some(peer) = step_peer(step, ctx) {
                    rec.recovery("membership:suspect", peer, t0, comm.time_ns());
                    if m.tolerant {
                        // A tolerated failure still moves the watermark:
                        // the executor is past this step for good.
                        suspects.push(peer);
                        rec.report.completed_steps += 1;
                        continue;
                    }
                    return Err(CommError::PeerDead(peer));
                }
            }
            return Err(e);
        }
        rec.report.completed_steps += 1;
    }
    Ok(())
}

/// Execute one IR step under the recovery policy; the watchdog wrapper
/// in [`run_steps`] decides what a failure means.
fn run_one_step<C: Comm + ?Sized>(
    comm: &mut C,
    step: &Step,
    ctx: &mut Ctx<'_>,
    rec: &mut Recorder<'_>,
    policy: &RecoveryPolicy,
    t0: u64,
) -> Result<()> {
    match step {
        Step::Expose { slot, reg } => {
            let buf = ctx.slot(*slot)?;
            let token = retry_transient(comm, rec, policy, |c| c.expose(buf))?;
            ctx.set_token(*reg, token)?;
            rec.add(StepKind::Expose, 0, t0, comm.time_ns());
        }
        Step::CmaRead {
            token,
            remote_off,
            dst,
            dst_off,
            len,
        } => {
            let t = ctx.token(*token)?;
            let dst = ctx.slot(*dst)?;
            recovered_cma(comm, rec, policy, true, t, *remote_off, dst, *dst_off, *len)?;
            rec.add(StepKind::CmaRead, *len, t0, comm.time_ns());
        }
        Step::CmaWrite {
            token,
            remote_off,
            src,
            src_off,
            len,
        } => {
            let t = ctx.token(*token)?;
            let src = ctx.slot(*src)?;
            recovered_cma(
                comm,
                rec,
                policy,
                false,
                t,
                *remote_off,
                src,
                *src_off,
                *len,
            )?;
            rec.add(StepKind::CmaWrite, *len, t0, comm.time_ns());
        }
        Step::CopyLocal {
            src,
            src_off,
            dst,
            dst_off,
            len,
        } => {
            let src = ctx.slot(*src)?;
            let dst = ctx.slot(*dst)?;
            comm.copy_local(src, *src_off, dst, *dst_off, *len)?;
            rec.add(StepKind::CopyLocal, *len, t0, comm.time_ns());
        }
        Step::CtrlSend { to, tag, payload } => {
            let body = ctx.render_payload(payload)?;
            retry_transient(comm, rec, policy, |c| c.ctrl_send(*to, *tag, &body))?;
            rec.add(StepKind::CtrlSend, body.len(), t0, comm.time_ns());
        }
        Step::CtrlRecv { from, tag, into } => {
            let body = recovered_ctrl_recv(comm, rec, policy, *from, *tag)?;
            let n = body.len();
            ctx.apply_recv(into, body)?;
            rec.add(StepKind::CtrlRecv, n, t0, comm.time_ns());
        }
        Step::Notify { to, tag } => {
            retry_transient(comm, rec, policy, |c| c.notify(*to, *tag))?;
            rec.add(StepKind::Notify, 0, t0, comm.time_ns());
        }
        Step::WaitNotify { from, tag } => {
            // A notification is a 0-byte control message; route it
            // through the bounded receive so the wait obeys the step
            // timeout (mirrors `CommExt::wait_notify`).
            let body = recovered_ctrl_recv(comm, rec, policy, *from, *tag)?;
            if !body.is_empty() {
                return Err(proto(format!(
                    "expected 0-byte notification from rank {from}, got {} bytes",
                    body.len()
                )));
            }
            rec.add(StepKind::WaitNotify, 0, t0, comm.time_ns());
        }
        Step::ShmSend {
            to,
            tag,
            src,
            off,
            len,
        } => {
            let src = ctx.slot(*src)?;
            retry_transient(comm, rec, policy, |c| {
                c.shm_send_data(*to, *tag, src, *off, *len)
            })?;
            rec.add(StepKind::ShmSend, *len, t0, comm.time_ns());
        }
        Step::ShmRecv {
            from,
            tag,
            dst,
            off,
            len,
        } => {
            let dst = ctx.slot(*dst)?;
            recovered_shm_recv(comm, rec, policy, *from, *tag, dst, *off, *len)?;
            rec.add(StepKind::ShmRecv, *len, t0, comm.time_ns());
        }
        Step::Reduce {
            op,
            dtype,
            acc,
            acc_off,
            src,
            src_off,
            len,
        } => {
            let acc_buf = ctx.slot(*acc)?;
            let src_buf = ctx.slot(*src)?;
            let mut acc_bytes = vec![0u8; *len];
            let mut src_bytes = vec![0u8; *len];
            comm.read_local(acc_buf, *acc_off, &mut acc_bytes)?;
            comm.read_local(src_buf, *src_off, &mut src_bytes)?;
            combine(&mut acc_bytes, &src_bytes, *dtype, *op);
            comm.write_local(acc_buf, *acc_off, &acc_bytes)?;
            rec.add(StepKind::Reduce, *len, t0, comm.time_ns());
        }
    }
    Ok(())
}
