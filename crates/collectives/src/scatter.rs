//! One-to-all personalized communication: MPI_Scatter (§IV-A).
//!
//! The public entry points are thin compile+execute wrappers: the
//! algorithm structure is compiled once into a [`crate::schedule::Schedule`]
//! (memoized in the global [`PlanCache`]) and replayed by the generic
//! executor. `scatterv_legacy` keeps the original direct implementation
//! for the traffic-equivalence tests.

use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_scatter, PlanCache, PlanKey};
use crate::{class, unvrank, vrank};
use kacc_comm::{smcoll, BufId, Comm, CommError, CommExt, RemoteToken, Result, Tag};

/// Scatter algorithm selection (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScatterAlgo {
    /// §IV-A1: every non-root reads its slice from the root's send
    /// buffer concurrently. Minimal steps, maximal lock contention.
    ParallelRead,
    /// §IV-A2: the root writes every slice in turn. Contention-free but
    /// fully serialized at the root.
    SequentialWrite,
    /// §IV-A3: at most `k` concurrent readers, chained with
    /// point-to-point unblock messages (no barriers). `k = p−1`
    /// degenerates to parallel reads, `k = 1` to serialized reads.
    ThrottledRead {
        /// Throttle factor: maximum concurrent readers of the root.
        k: usize,
    },
}

const TAG_DONE: Tag = Tag::internal(class::SCATTER, 1);
const TAG_CHAIN: Tag = Tag::internal(class::SCATTER, 2);

/// MPI_Scatter: the root holds `p·count` bytes in `sendbuf`; every rank
/// receives its `count`-byte slice (by rank order) into `recvbuf`.
///
/// * `sendbuf` — required at the root, ignored elsewhere (pass `None`).
/// * `recvbuf` — required at non-roots. At the root it may be `None`
///   (`MPI_IN_PLACE`: the root's slice stays in `sendbuf`).
///
/// Every rank must pass the same `algo`, `count`, and `root`.
pub fn scatter<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    count: usize,
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let counts = vec![count; p];
    scatterv(comm, algo, sendbuf, recvbuf, &counts, None, root)
}

/// MPI_Scatterv: slice `r` has `counts[r]` bytes, located at
/// `displs[r]` in the root's send buffer (contiguous packing when
/// `displs` is `None`). Every rank passes identical `counts`/`displs`.
pub fn scatterv<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<()> {
    scatterv_with_report(comm, algo, sendbuf, recvbuf, counts, displs, root).map(|_| ())
}

/// [`scatterv`] returning the executor's per-step accounting. `None`
/// when the call was satisfied without a schedule (single rank or
/// all-zero counts).
pub fn scatterv_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Option<ScheduleReport>> {
    let layout = match prepare(comm, sendbuf, recvbuf, counts, displs, root)? {
        Prepared::Done => return Ok(None),
        Prepared::Run(layout) => layout,
    };
    if let ScatterAlgo::ThrottledRead { k } = algo {
        if k == 0 {
            return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
        }
    }
    let p = comm.size();
    let me = comm.rank();
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Scatter {
            algo,
            p,
            rank: me,
            counts: counts.to_vec(),
            displs: displs.map(<[usize]>::to_vec),
            root,
            has_recvbuf: recvbuf.is_some(),
        },
        || compile_scatter(algo, p, me, &layout, root, recvbuf.is_some()),
    );
    execute(
        comm,
        &plan,
        &Bindings {
            send: sendbuf,
            recv: recvbuf,
        },
    )
    .map(Some)
}

/// Validation and degenerate-case handling shared by the compiled and
/// legacy paths.
enum Prepared {
    /// Nothing left to do (single rank or all-zero counts).
    Done,
    /// Run the algorithm with this per-rank layout.
    Run(Vec<(usize, usize)>),
}

fn prepare<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<Prepared> {
    let p = comm.size();
    let me = comm.rank();
    if root >= p {
        return Err(CommError::BadRank(root));
    }
    if counts.len() != p || displs.is_some_and(|d| d.len() != p) {
        return Err(CommError::Protocol(
            "counts/displs length must equal size".into(),
        ));
    }
    let layout = build_layout(counts, displs);
    if me == root {
        let sb = sendbuf.ok_or(CommError::Protocol("root scatter needs sendbuf".into()))?;
        let need = layout
            .iter()
            .map(|&(off, len)| off + len)
            .max()
            .unwrap_or(0);
        let cap = comm.buf_len(sb)?;
        if cap < need {
            return Err(CommError::OutOfRange {
                buf: sb.0,
                off: 0,
                len: need,
                cap,
            });
        }
    } else if recvbuf.is_none() && counts[me] > 0 {
        return Err(CommError::Protocol("non-root scatter needs recvbuf".into()));
    }
    if p == 1 {
        root_self_copy(
            comm,
            sendbuf.expect("validated: sender binds sendbuf"),
            recvbuf,
            &layout,
            root,
        )?;
        return Ok(Prepared::Done);
    }
    if counts.iter().all(|&c| c == 0) {
        return Ok(Prepared::Done);
    }
    Ok(Prepared::Run(layout))
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
pub fn scatterv_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: ScatterAlgo,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    counts: &[usize],
    displs: Option<&[usize]>,
    root: usize,
) -> Result<()> {
    let layout = match prepare(comm, sendbuf, recvbuf, counts, displs, root)? {
        Prepared::Done => return Ok(()),
        Prepared::Run(layout) => layout,
    };
    match algo {
        ScatterAlgo::ParallelRead => parallel_read(comm, sendbuf, recvbuf, &layout, root),
        ScatterAlgo::SequentialWrite => sequential_write(comm, sendbuf, recvbuf, &layout, root),
        ScatterAlgo::ThrottledRead { k } => {
            if k == 0 {
                return Err(CommError::Protocol("throttle factor must be ≥ 1".into()));
            }
            throttled_read(comm, sendbuf, recvbuf, &layout, root, k)
        }
    }
}

/// Per-rank `(offset, len)` placement in the root's buffer.
pub(crate) fn build_layout(counts: &[usize], displs: Option<&[usize]>) -> Vec<(usize, usize)> {
    match displs {
        Some(d) => d
            .iter()
            .zip(counts)
            .map(|(&off, &len)| (off, len))
            .collect(),
        None => {
            let mut at = 0usize;
            counts
                .iter()
                .map(|&len| {
                    let here = at;
                    at += len;
                    (here, len)
                })
                .collect()
        }
    }
}

/// Copy the root's own slice out of its send buffer (skipped under
/// `MPI_IN_PLACE`, i.e. `recvbuf == None`).
fn root_self_copy<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let (off, len) = layout[root];
    if let (Some(rb), true) = (recvbuf, len > 0) {
        comm.copy_local(sendbuf, off, rb, 0, len)?;
    }
    Ok(())
}

fn parallel_read<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let me = comm.rank();
    if me == root {
        let sb = sendbuf.expect("validated: sender binds sendbuf");
        let token = comm.expose(sb)?;
        smcoll::sm_bcast(comm, root, &token.to_bytes())?;
        // The root's own copy overlaps with the peers' reads.
        root_self_copy(comm, sb, recvbuf, layout, root)?;
        smcoll::sm_gather(comm, root, &[])?;
    } else {
        let raw = smcoll::sm_bcast(comm, root, &[])?;
        let token =
            RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad scatter token".into()))?;
        let (off, len) = layout[me];
        if len > 0 {
            comm.cma_read(
                token,
                off,
                recvbuf.expect("validated: root binds recvbuf"),
                0,
                len,
            )?;
        }
        smcoll::sm_gather(comm, root, &[])?;
    }
    Ok(())
}

fn sequential_write<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let sb = sendbuf.expect("validated: sender binds sendbuf");
        // Reversed control order: gather every receive-buffer token.
        let tokens =
            smcoll::sm_gather(comm, root, &[])?.expect("sm_gather yields entries at the root");
        // The root's own memcpy cannot overlap: the root is the engine
        // of every transfer (paper §IV-A2).
        root_self_copy(comm, sb, recvbuf, layout, root)?;
        for v in 1..p {
            let r = unvrank(v, root, p);
            let (off, len) = layout[r];
            if len == 0 {
                continue;
            }
            let token = RemoteToken::from_bytes(&tokens[r])
                .ok_or(CommError::Protocol("bad scatter recv token".into()))?;
            comm.cma_write(token, 0, sb, off, len)?;
        }
        smcoll::sm_bcast(comm, root, &[])?;
    } else {
        // Zero-count ranks still join the collective control phases but
        // have no buffer to expose (the root skips their slot).
        let token_bytes = if layout[comm.rank()].1 > 0 {
            comm.expose(recvbuf.expect("validated: root binds recvbuf"))?
                .to_bytes()
                .to_vec()
        } else {
            Vec::new()
        };
        smcoll::sm_gather(comm, root, &token_bytes)?;
        smcoll::sm_bcast(comm, root, &[])?;
    }
    Ok(())
}

fn throttled_read<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: Option<BufId>,
    layout: &[(usize, usize)],
    root: usize,
    k: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let sb = sendbuf.expect("validated: sender binds sendbuf");
        let token = comm.expose(sb)?;
        smcoll::sm_bcast(comm, root, &token.to_bytes())?;
        root_self_copy(comm, sb, recvbuf, layout, root)?;
        // The last wave is the set of virtual ranks v with v+k > p−1; a
        // single acknowledgement would not cover the k concurrent
        // readers of the final step (§IV-A3).
        for v in (1..p).filter(|v| v + k > p - 1) {
            comm.wait_notify(unvrank(v, root, p), TAG_DONE)?;
        }
    } else {
        let raw = smcoll::sm_bcast(comm, root, &[])?;
        let token =
            RemoteToken::from_bytes(&raw).ok_or(CommError::Protocol("bad scatter token".into()))?;
        let v = vrank(me, root, p);
        // Chained throttling: wait for rank v−k, read, unblock rank v+k.
        if v > k {
            comm.wait_notify(unvrank(v - k, root, p), TAG_CHAIN)?;
        }
        let (off, len) = layout[me];
        if len > 0 {
            comm.cma_read(
                token,
                off,
                recvbuf.expect("validated: root binds recvbuf"),
                0,
                len,
            )?;
        }
        if v + k < p {
            comm.notify(unvrank(v + k, root, p), TAG_CHAIN)?;
        } else {
            comm.notify(root, TAG_DONE)?;
        }
    }
    Ok(())
}
