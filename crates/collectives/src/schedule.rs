//! Transport-agnostic communication schedules (compile phase).
//!
//! A [`Schedule`] is the per-rank, fully-ordered list of primitive
//! operations one rank performs during a collective — the result of
//! *compiling* an algorithm for a concrete `(p, rank, counts, root)`
//! shape. Compilation is pure (no `Comm` involved); the companion
//! executor ([`crate::exec`]) binds the schedule's symbolic buffer
//! [`Slot`]s to real `BufId`s and replays the steps on any transport.
//!
//! Splitting collectives into compile + execute buys three things:
//!
//! 1. **Plan reuse** — an application calling the same collective shape
//!    repeatedly (the common MPI pattern) pays the tree/round bookkeeping
//!    once; [`PlanCache`] memoizes compiled schedules behind an LRU.
//! 2. **Costing** — `kacc-model` can walk the IR and price a schedule
//!    with the paper's contention model without executing it
//!    (`Tuner::cost_schedule`), so tuning decisions and execution share
//!    one source of truth.
//! 3. **Inspection** — tests and tools can assert on the exact op
//!    sequence a rank will issue (op counts, byte volumes, tag usage)
//!    independent of any transport.
//!
//! Compiled schedules are *traffic-identical* to the legacy direct
//! implementations: same tags, same message ordering, same wire bytes on
//! the control plane, same CMA transfers. The equivalence proptest in
//! `tests/schedule_equivalence.rs` pins this down on both the simulator
//! and the thread transport.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use kacc_comm::{smcoll, Tag};

use crate::allgather::AllgatherAlgo;
use crate::alltoall::AlltoallAlgo;
use crate::bcast::BcastAlgo;
use crate::gather::GatherAlgo;
use crate::reduce::{Dtype, ReduceAlgo, ReduceOp};
use crate::scatter::ScatterAlgo;
use crate::{class, unvrank, vrank};

/// Symbolic buffer the executor resolves to a `BufId` at bind time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The caller's send-side buffer (`sendbuf`, or the single data
    /// buffer for rootless/broadcast shapes).
    Send,
    /// The caller's receive-side buffer.
    Recv,
    /// The `i`-th scratch buffer; the executor allocates it with the
    /// length recorded in [`Schedule::temps`] and frees it afterwards.
    Temp(u32),
}

/// Index of a token register: a slot the executor fills with a
/// `RemoteToken` (from `expose` or from a decoded control message) and
/// that later CMA steps reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenReg(pub u32);

/// What a compiled control-plane send puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Literal bytes known at compile time (e.g. a recursive-doubling
    /// have-set, or an empty synchronization message).
    Bytes(Vec<u8>),
    /// The 16-byte wire form of the token currently in a register.
    Token(TokenReg),
    /// `smcoll` entry-pack format: per entry a `(rank, payload)` pair
    /// where the payload is the register's token bytes (`Some`) or empty
    /// (`None`). Matches `smcoll::encode_entries`.
    Pack(Vec<(u32, Option<TokenReg>)>),
}

/// What a compiled control-plane receive does with the message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvInto {
    /// Drop the body (still blocks for the message).
    Discard,
    /// Require the body to equal these bytes exactly — used where the
    /// legacy algorithm validated a compile-time-predictable message
    /// (e.g. recursive-doubling have-sets).
    Verify(Vec<u8>),
    /// Parse the body as one 16-byte `RemoteToken` into a register.
    Token(TokenReg),
    /// Parse the body as an `smcoll` entry pack; each entry's rank label
    /// must match, tokens land in `Some` registers, empty payloads are
    /// required where `None`.
    Pack(Vec<(u32, Option<TokenReg>)>),
}

/// One primitive operation in a compiled schedule. Each maps 1:1 onto a
/// `Comm` method; the executor replays them in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `expose(slot)` → store the token in `reg`.
    Expose {
        /// Buffer to expose.
        slot: Slot,
        /// Register receiving the resulting token.
        reg: TokenReg,
    },
    /// Single-copy read from the remote buffer behind `token`.
    CmaRead {
        /// Register holding the remote token.
        token: TokenReg,
        /// Offset in the remote buffer.
        remote_off: usize,
        /// Local destination slot.
        dst: Slot,
        /// Offset in the local destination.
        dst_off: usize,
        /// Bytes to move.
        len: usize,
    },
    /// Single-copy write into the remote buffer behind `token`.
    CmaWrite {
        /// Register holding the remote token.
        token: TokenReg,
        /// Offset in the remote buffer.
        remote_off: usize,
        /// Local source slot.
        src: Slot,
        /// Offset in the local source.
        src_off: usize,
        /// Bytes to move.
        len: usize,
    },
    /// Local `memcpy` between two slots (charged copy).
    CopyLocal {
        /// Source slot.
        src: Slot,
        /// Source offset.
        src_off: usize,
        /// Destination slot.
        dst: Slot,
        /// Destination offset.
        dst_off: usize,
        /// Bytes to copy.
        len: usize,
    },
    /// Buffered control-plane send.
    CtrlSend {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Body to render at execution time.
        payload: Payload,
    },
    /// Blocking control-plane receive.
    CtrlRecv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: Tag,
        /// What to do with the body.
        into: RecvInto,
    },
    /// 0-byte notification send.
    Notify {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
    },
    /// Blocking wait for a 0-byte notification.
    WaitNotify {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: Tag,
    },
    /// Two-copy shared-memory bulk send.
    ShmSend {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Local source slot.
        src: Slot,
        /// Source offset.
        off: usize,
        /// Bytes to send.
        len: usize,
    },
    /// Two-copy shared-memory bulk receive.
    ShmRecv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: Tag,
        /// Local destination slot.
        dst: Slot,
        /// Destination offset.
        off: usize,
        /// Bytes to receive.
        len: usize,
    },
    /// Element-wise reduction `acc[..] = acc[..] op src[..]` over `len`
    /// bytes, interpreted per `dtype`.
    Reduce {
        /// Reduction operator.
        op: crate::ReduceOp,
        /// Element type.
        dtype: crate::Dtype,
        /// Accumulator slot (read-modify-write).
        acc: Slot,
        /// Accumulator offset.
        acc_off: usize,
        /// Source slot.
        src: Slot,
        /// Source offset.
        src_off: usize,
        /// Bytes to reduce.
        len: usize,
    },
}

/// A compiled, per-rank collective plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of ranks the plan was compiled for.
    pub p: usize,
    /// The rank this plan belongs to.
    pub rank: usize,
    /// Number of token registers the executor must provide.
    pub token_regs: usize,
    /// Lengths of the scratch buffers (`Slot::Temp(i)` ↔ `temps[i]`).
    pub temps: Vec<usize>,
    /// The ordered operation list.
    pub steps: Vec<Step>,
    /// Collective tag class ([`crate::class`]) this plan belongs to —
    /// attached to executor trace spans for per-collective attribution.
    pub class: Option<u32>,
}

impl Schedule {
    /// Count steps of each CMA kind — convenience for tests/tools.
    pub fn count_cma(&self) -> (usize, usize) {
        let mut reads = 0;
        let mut writes = 0;
        for s in &self.steps {
            match s {
                Step::CmaRead { .. } => reads += 1,
                Step::CmaWrite { .. } => writes += 1,
                _ => {}
            }
        }
        (reads, writes)
    }
}

/// What a compiled sm-primitive carries: nothing, or one token register.
#[derive(Clone, Copy)]
enum SmContent {
    Empty,
    Token(TokenReg),
}

/// Builder accumulating steps and allocating registers/temps while a
/// compile function walks its algorithm's structure.
struct Builder {
    p: usize,
    rank: usize,
    class: Option<u32>,
    regs: u32,
    temps: Vec<usize>,
    steps: Vec<Step>,
}

impl Builder {
    fn new(p: usize, rank: usize, class: u32) -> Builder {
        Builder {
            p,
            rank,
            class: Some(class),
            regs: 0,
            temps: Vec::new(),
            steps: Vec::new(),
        }
    }

    fn reg(&mut self) -> TokenReg {
        let r = TokenReg(self.regs);
        self.regs += 1;
        r
    }

    fn temp(&mut self, len: usize) -> Slot {
        let i = self.temps.len() as u32;
        self.temps.push(len);
        Slot::Temp(i)
    }

    fn push(&mut self, s: Step) {
        self.steps.push(s);
    }

    fn finish(self) -> Schedule {
        Schedule {
            p: self.p,
            rank: self.rank,
            token_regs: self.regs as usize,
            temps: self.temps,
            steps: self.steps,
            class: self.class,
        }
    }

    // ---- compiled smcoll primitives --------------------------------
    //
    // These mirror the trees in `kacc_comm::smcoll` exactly (same tags,
    // same message order, same wire bytes) so that a compiled collective
    // is traffic-identical to its legacy counterpart.

    /// Virtual-rank children in a binomial tree, in the bit-ascending
    /// order `smcoll` sends/receives them.
    fn binomial_children(v: usize, p: usize) -> Vec<usize> {
        let low = if v == 0 {
            usize::MAX
        } else {
            v & v.wrapping_neg()
        };
        let mut out = Vec::new();
        let mut bit = 1usize;
        while bit < p {
            if bit < low {
                let child = v | bit;
                if child != v && child < p {
                    out.push(child);
                }
            }
            bit <<= 1;
        }
        out
    }

    /// The virtual ranks in `v`'s binomial subtree, in the order their
    /// entries appear in an `sm_gather` pack ( `v` first, then each
    /// child's subtree in bit-ascending order).
    fn binomial_subtree(v: usize, p: usize) -> Vec<usize> {
        let mut out = vec![v];
        for c in Self::binomial_children(v, p) {
            out.extend(Self::binomial_subtree(c, p));
        }
        out
    }

    /// Compiled `smcoll::sm_bcast` carrying `content` from `root` to all.
    fn emit_sm_bcast(&mut self, root: usize, content: SmContent) {
        let p = self.p;
        if p == 1 {
            return;
        }
        let tag = Tag::internal(smcoll::class::BCAST, 0);
        let v = vrank(self.rank, root, p);
        if v != 0 {
            let parent = v & (v - 1);
            let into = match content {
                SmContent::Empty => RecvInto::Verify(Vec::new()),
                SmContent::Token(r) => RecvInto::Token(r),
            };
            self.push(Step::CtrlRecv {
                from: unvrank(parent, root, p),
                tag,
                into,
            });
        }
        for child in Self::binomial_children(v, p) {
            let payload = match content {
                SmContent::Empty => Payload::Bytes(Vec::new()),
                SmContent::Token(r) => Payload::Token(r),
            };
            self.push(Step::CtrlSend {
                to: unvrank(child, root, p),
                tag,
                payload,
            });
        }
    }

    /// Compiled `smcoll::sm_gather`. `has_token(r)` says whether real
    /// rank `r` contributes a 16-byte token (vs an empty payload) —
    /// every rank must agree on this predicate. `my_reg` is this rank's
    /// own token register iff `has_token(rank)`.
    ///
    /// At the root, returns `Some(map)` with one `Option<TokenReg>` per
    /// real rank; elsewhere returns `None` (pass-through registers are
    /// allocated internally).
    fn emit_sm_gather(
        &mut self,
        root: usize,
        has_token: impl Fn(usize) -> bool,
        my_reg: Option<TokenReg>,
    ) -> Option<Vec<Option<TokenReg>>> {
        let p = self.p;
        debug_assert_eq!(my_reg.is_some(), has_token(self.rank));
        if p == 1 {
            return Some(vec![my_reg]);
        }
        let tag = Tag::internal(smcoll::class::GATHER, 0);
        let v = vrank(self.rank, root, p);

        // Register for every real rank in our subtree (ours included).
        let mut regs: HashMap<usize, Option<TokenReg>> = HashMap::new();
        regs.insert(self.rank, my_reg);

        for child in Self::binomial_children(v, p) {
            let mut entries = Vec::new();
            for cv in Self::binomial_subtree(child, p) {
                let real = unvrank(cv, root, p);
                let reg = if has_token(real) {
                    Some(self.reg())
                } else {
                    None
                };
                regs.insert(real, reg);
                entries.push((real as u32, reg));
            }
            self.push(Step::CtrlRecv {
                from: unvrank(child, root, p),
                tag,
                into: RecvInto::Pack(entries),
            });
        }

        if v == 0 {
            let mut out = vec![None; p];
            for (real, reg) in regs {
                out[real] = reg;
            }
            Some(out)
        } else {
            // Forward our whole subtree to the parent in pack order.
            let entries: Vec<(u32, Option<TokenReg>)> = Self::binomial_subtree(v, p)
                .into_iter()
                .map(|sv| {
                    let real = unvrank(sv, root, p);
                    (real as u32, regs[&real])
                })
                .collect();
            let parent = v & (v - 1);
            self.push(Step::CtrlSend {
                to: unvrank(parent, root, p),
                tag,
                payload: Payload::Pack(entries),
            });
            None
        }
    }

    /// Compiled `smcoll::sm_allgather` where every rank contributes one
    /// token (`my_reg`). Returns the register holding each real rank's
    /// token, indexed by rank.
    fn emit_sm_allgather(&mut self, my_reg: TokenReg) -> Vec<TokenReg> {
        let p = self.p;
        let me = self.rank;
        let mut regs: Vec<Option<TokenReg>> = vec![None; p];
        regs[me] = Some(my_reg);
        if p == 1 {
            return vec![my_reg];
        }
        // Allocate a register for every peer's token up front; Bruck
        // slot `i` holds the payload of rank (me + i) mod p.
        for i in 1..p {
            regs[(me + i) % p] = Some(self.reg());
        }
        let slot_rank = |i: usize| (me + i) % p;

        let mut filled = 1usize;
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < p {
            let tag = Tag::internal(smcoll::class::ALLGATHER, round);
            let send_to = (me + p - dist) % p;
            let recv_from = (me + dist) % p;
            let send_count = dist.min(p - filled);
            let send_entries: Vec<(u32, Option<TokenReg>)> = (0..send_count)
                .map(|i| {
                    (
                        slot_rank(i) as u32,
                        Some(regs[slot_rank(i)].expect("ring invariant: slot already filled")),
                    )
                })
                .collect();
            self.push(Step::CtrlSend {
                to: send_to,
                tag,
                payload: Payload::Pack(send_entries),
            });
            // The sender's pack is symmetric: it fills our slots
            // dist..dist+send_count, i.e. ranks (recv_from + i) mod p.
            let recv_entries: Vec<(u32, Option<TokenReg>)> = (0..send_count)
                .map(|i| {
                    let r = (recv_from + i) % p;
                    (
                        r as u32,
                        Some(regs[r].expect("ring invariant: slot already filled")),
                    )
                })
                .collect();
            self.push(Step::CtrlRecv {
                from: recv_from,
                tag,
                into: RecvInto::Pack(recv_entries),
            });
            filled += send_count;
            dist <<= 1;
            round += 1;
        }
        regs.into_iter()
            .map(|r| r.expect("dissemination fills every register"))
            .collect()
    }

    /// Compiled `smcoll::sm_barrier` (dissemination).
    fn emit_sm_barrier(&mut self) {
        let p = self.p;
        let me = self.rank;
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < p {
            let tag = Tag::internal(smcoll::class::BARRIER, round);
            self.push(Step::Notify {
                to: (me + dist) % p,
                tag,
            });
            self.push(Step::WaitNotify {
                from: (me + p - dist) % p,
                tag,
            });
            dist <<= 1;
            round += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Scatter
// ---------------------------------------------------------------------

/// Compile one rank's scatter plan. `layout[r] = (offset, len)` into the
/// root's send buffer; bindings: [`Slot::Send`] = root `sendbuf`,
/// [`Slot::Recv`] = `recvbuf`. Callers must have validated the inputs
/// (`p > 1`, not all counts zero, `k >= 1` for throttled).
pub fn compile_scatter(
    algo: ScatterAlgo,
    p: usize,
    rank: usize,
    layout: &[(usize, usize)],
    root: usize,
    has_recvbuf: bool,
) -> Schedule {
    let mut b = Builder::new(p, rank, class::SCATTER);
    let tag_done = Tag::internal(class::SCATTER, 1);
    let tag_chain = Tag::internal(class::SCATTER, 2);
    let me = rank;
    let (off, len) = layout[me];

    let root_self_copy = |b: &mut Builder| {
        let (r_off, r_len) = layout[root];
        if has_recvbuf && r_len > 0 {
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: r_off,
                dst: Slot::Recv,
                dst_off: 0,
                len: r_len,
            });
        }
    };

    match algo {
        ScatterAlgo::ParallelRead => {
            let reg = b.reg();
            if me == root {
                b.push(Step::Expose {
                    slot: Slot::Send,
                    reg,
                });
                b.emit_sm_bcast(root, SmContent::Token(reg));
                root_self_copy(&mut b);
            } else {
                b.emit_sm_bcast(root, SmContent::Token(reg));
                if len > 0 {
                    b.push(Step::CmaRead {
                        token: reg,
                        remote_off: off,
                        dst: Slot::Recv,
                        dst_off: 0,
                        len,
                    });
                }
            }
            b.emit_sm_gather(root, |_| false, None);
        }
        ScatterAlgo::SequentialWrite => {
            let has_token = |r: usize| r != root && layout[r].1 > 0;
            if me == root {
                let map = b
                    .emit_sm_gather(root, has_token, None)
                    .expect("root receives the gather map");
                root_self_copy(&mut b);
                for v in 1..p {
                    let r = unvrank(v, root, p);
                    let (r_off, r_len) = layout[r];
                    if r_len == 0 {
                        continue;
                    }
                    let token = map[r].expect("peer with data exposed a token");
                    b.push(Step::CmaWrite {
                        token,
                        remote_off: 0,
                        src: Slot::Send,
                        src_off: r_off,
                        len: r_len,
                    });
                }
            } else {
                let my_reg = if len > 0 {
                    let reg = b.reg();
                    b.push(Step::Expose {
                        slot: Slot::Recv,
                        reg,
                    });
                    Some(reg)
                } else {
                    None
                };
                b.emit_sm_gather(root, has_token, my_reg);
            }
            b.emit_sm_bcast(root, SmContent::Empty);
        }
        ScatterAlgo::ThrottledRead { k } => {
            let reg = b.reg();
            if me == root {
                b.push(Step::Expose {
                    slot: Slot::Send,
                    reg,
                });
                b.emit_sm_bcast(root, SmContent::Token(reg));
                root_self_copy(&mut b);
                // The last k readers in virtual order report completion.
                for v in (1..p).filter(|v| v + k > p - 1) {
                    b.push(Step::WaitNotify {
                        from: unvrank(v, root, p),
                        tag: tag_done,
                    });
                }
            } else {
                b.emit_sm_bcast(root, SmContent::Token(reg));
                let v = vrank(me, root, p);
                if v > k {
                    b.push(Step::WaitNotify {
                        from: unvrank(v - k, root, p),
                        tag: tag_chain,
                    });
                }
                if len > 0 {
                    b.push(Step::CmaRead {
                        token: reg,
                        remote_off: off,
                        dst: Slot::Recv,
                        dst_off: 0,
                        len,
                    });
                }
                if v + k < p {
                    b.push(Step::Notify {
                        to: unvrank(v + k, root, p),
                        tag: tag_chain,
                    });
                } else {
                    b.push(Step::Notify {
                        to: root,
                        tag: tag_done,
                    });
                }
            }
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------

/// Compile one rank's gather plan. `layout[r] = (offset, len)` into the
/// root's receive buffer; bindings: [`Slot::Send`] = `sendbuf`,
/// [`Slot::Recv`] = root `recvbuf`.
pub fn compile_gather(
    algo: GatherAlgo,
    p: usize,
    rank: usize,
    layout: &[(usize, usize)],
    root: usize,
    has_sendbuf: bool,
) -> Schedule {
    let mut b = Builder::new(p, rank, class::GATHER);
    let tag_done = Tag::internal(class::GATHER, 1);
    let tag_chain = Tag::internal(class::GATHER, 2);
    let me = rank;
    let (off, len) = layout[me];

    let root_self_copy = |b: &mut Builder| {
        let (r_off, r_len) = layout[root];
        if has_sendbuf && r_len > 0 {
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: 0,
                dst: Slot::Recv,
                dst_off: r_off,
                len: r_len,
            });
        }
    };

    match algo {
        GatherAlgo::ParallelWrite => {
            let reg = b.reg();
            if me == root {
                b.push(Step::Expose {
                    slot: Slot::Recv,
                    reg,
                });
                b.emit_sm_bcast(root, SmContent::Token(reg));
                root_self_copy(&mut b);
            } else {
                b.emit_sm_bcast(root, SmContent::Token(reg));
                if len > 0 {
                    b.push(Step::CmaWrite {
                        token: reg,
                        remote_off: off,
                        src: Slot::Send,
                        src_off: 0,
                        len,
                    });
                }
            }
            b.emit_sm_gather(root, |_| false, None);
        }
        GatherAlgo::SequentialRead => {
            let has_token = |r: usize| r != root && layout[r].1 > 0;
            if me == root {
                let map = b
                    .emit_sm_gather(root, has_token, None)
                    .expect("root receives the gather map");
                root_self_copy(&mut b);
                for v in 1..p {
                    let r = unvrank(v, root, p);
                    let (r_off, r_len) = layout[r];
                    if r_len == 0 {
                        continue;
                    }
                    let token = map[r].expect("peer with data exposed a token");
                    b.push(Step::CmaRead {
                        token,
                        remote_off: 0,
                        dst: Slot::Recv,
                        dst_off: r_off,
                        len: r_len,
                    });
                }
            } else {
                let my_reg = if len > 0 {
                    let reg = b.reg();
                    b.push(Step::Expose {
                        slot: Slot::Send,
                        reg,
                    });
                    Some(reg)
                } else {
                    None
                };
                b.emit_sm_gather(root, has_token, my_reg);
            }
            b.emit_sm_bcast(root, SmContent::Empty);
        }
        GatherAlgo::ThrottledWrite { k } => {
            let reg = b.reg();
            if me == root {
                b.push(Step::Expose {
                    slot: Slot::Recv,
                    reg,
                });
                b.emit_sm_bcast(root, SmContent::Token(reg));
                root_self_copy(&mut b);
                for v in (1..p).filter(|v| v + k > p - 1) {
                    b.push(Step::WaitNotify {
                        from: unvrank(v, root, p),
                        tag: tag_done,
                    });
                }
            } else {
                b.emit_sm_bcast(root, SmContent::Token(reg));
                let v = vrank(me, root, p);
                if v > k {
                    b.push(Step::WaitNotify {
                        from: unvrank(v - k, root, p),
                        tag: tag_chain,
                    });
                }
                if len > 0 {
                    b.push(Step::CmaWrite {
                        token: reg,
                        remote_off: off,
                        src: Slot::Send,
                        src_off: 0,
                        len,
                    });
                }
                if v + k < p {
                    b.push(Step::Notify {
                        to: unvrank(v + k, root, p),
                        tag: tag_chain,
                    });
                } else {
                    b.push(Step::Notify {
                        to: root,
                        tag: tag_done,
                    });
                }
            }
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------

/// Compile one rank's broadcast plan. Binding: [`Slot::Send`] = the data
/// buffer on every rank. Callers must have validated `p > 1`,
/// `count > 0`, and `radix >= 2` for k-nomial.
pub fn compile_bcast(
    algo: BcastAlgo,
    p: usize,
    rank: usize,
    count: usize,
    root: usize,
) -> Schedule {
    let mut b = Builder::new(p, rank, class::BCAST);
    let tag_data = Tag::internal(class::BCAST, 0);
    let tag_read_done = Tag::internal(class::BCAST, 1);
    let me = rank;

    match algo {
        BcastAlgo::DirectRead => {
            let reg = b.reg();
            if me == root {
                b.push(Step::Expose {
                    slot: Slot::Send,
                    reg,
                });
                b.emit_sm_bcast(root, SmContent::Token(reg));
            } else {
                b.emit_sm_bcast(root, SmContent::Token(reg));
                b.push(Step::CmaRead {
                    token: reg,
                    remote_off: 0,
                    dst: Slot::Send,
                    dst_off: 0,
                    len: count,
                });
            }
            b.emit_sm_gather(root, |_| false, None);
        }
        BcastAlgo::DirectWrite => {
            let has_token = |r: usize| r != root;
            if me == root {
                let map = b
                    .emit_sm_gather(root, has_token, None)
                    .expect("root receives the gather map");
                for v in 1..p {
                    let r = unvrank(v, root, p);
                    let token = map[r].expect("peer exposed a token");
                    b.push(Step::CmaWrite {
                        token,
                        remote_off: 0,
                        src: Slot::Send,
                        src_off: 0,
                        len: count,
                    });
                }
            } else {
                let reg = b.reg();
                b.push(Step::Expose {
                    slot: Slot::Send,
                    reg,
                });
                b.emit_sm_gather(root, has_token, Some(reg));
            }
            b.emit_sm_bcast(root, SmContent::Empty);
        }
        BcastAlgo::KNomial { radix } => {
            let k = radix;
            let v = vrank(me, root, p);
            if v != 0 {
                // Join the tree: receive the parent's token, pull, ack.
                let mut kpow = 1usize;
                while kpow * k <= v {
                    kpow *= k;
                }
                let parent = unvrank(v % kpow, root, p);
                let preg = b.reg();
                b.push(Step::CtrlRecv {
                    from: parent,
                    tag: tag_data,
                    into: RecvInto::Token(preg),
                });
                b.push(Step::CmaRead {
                    token: preg,
                    remote_off: 0,
                    dst: Slot::Send,
                    dst_off: 0,
                    len: count,
                });
                b.push(Step::Notify {
                    to: parent,
                    tag: tag_read_done,
                });
            }
            // Serve our own children, bounded k-1 readers per level.
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Send,
                reg,
            });
            let mut kpow = 1usize;
            while kpow <= v {
                kpow *= k;
            }
            while kpow < p {
                let children: Vec<usize> = (1..k)
                    .map(|m| v + m * kpow)
                    .filter(|&c| c < p)
                    .map(|c| unvrank(c, root, p))
                    .collect();
                for &c in &children {
                    b.push(Step::CtrlSend {
                        to: c,
                        tag: tag_data,
                        payload: Payload::Token(reg),
                    });
                }
                for &c in &children {
                    b.push(Step::WaitNotify {
                        from: c,
                        tag: tag_read_done,
                    });
                }
                kpow *= k;
            }
        }
        BcastAlgo::ScatterAllgather => {
            let step_tag = Tag::internal(class::BCAST, 2);
            let chunk = count.div_ceil(p);
            let chunk_range = |i: usize| {
                let off = i * chunk;
                (off, count.saturating_sub(off).min(chunk))
            };
            let v = vrank(me, root, p);
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Send,
                reg,
            });
            let toks = b.emit_sm_allgather(reg);

            // Phase A: root scatters chunk i to virtual rank i.
            if v == 0 {
                for i in 1..p {
                    let (off, len) = chunk_range(i);
                    if len == 0 {
                        continue;
                    }
                    let dst = unvrank(i, root, p);
                    b.push(Step::CmaWrite {
                        token: toks[dst],
                        remote_off: off,
                        src: Slot::Send,
                        src_off: off,
                        len,
                    });
                }
            }
            b.emit_sm_bcast(root, SmContent::Empty);

            // Phase B: ring allgather of the chunks, reading from the
            // left neighbour, gated by step notifications.
            let left = unvrank((v + p - 1) % p, root, p);
            let right = unvrank((v + 1) % p, root, p);
            if v == 0 {
                for _ in 2..p {
                    b.push(Step::Notify {
                        to: right,
                        tag: step_tag,
                    });
                }
            } else {
                for t in 1..p {
                    if t > 1 {
                        b.push(Step::WaitNotify {
                            from: left,
                            tag: step_tag,
                        });
                    }
                    let src_v = (v + p - t) % p;
                    let (off, len) = chunk_range(src_v);
                    if len > 0 {
                        b.push(Step::CmaRead {
                            token: toks[left],
                            remote_off: off,
                            dst: Slot::Send,
                            dst_off: off,
                            len,
                        });
                    }
                    if t < p - 1 && right != unvrank(0, root, p) {
                        b.push(Step::Notify {
                            to: right,
                            tag: step_tag,
                        });
                    }
                }
            }
            b.emit_sm_barrier();
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------

/// Compile one rank's allgather plan. Bindings: [`Slot::Send`] = this
/// rank's contribution (optional; when absent the contribution already
/// sits at `recvbuf[rank*count..]`), [`Slot::Recv`] = the full receive
/// buffer. Callers must have validated `p > 1`, `count > 0`, and for
/// `RingNeighbor` must pass the stride already reduced mod `p` and
/// coprime with `p`.
pub fn compile_allgather(
    algo: AllgatherAlgo,
    p: usize,
    rank: usize,
    count: usize,
    has_sendbuf: bool,
) -> Schedule {
    let mut b = Builder::new(p, rank, class::ALLGATHER);
    let tag_ring = Tag::internal(class::ALLGATHER, 0);
    let me = rank;

    let place_own = |b: &mut Builder| {
        if has_sendbuf {
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: 0,
                dst: Slot::Recv,
                dst_off: me * count,
                len: count,
            });
        }
    };

    match algo {
        AllgatherAlgo::RingNeighbor { j } => {
            let j = j % p;
            place_own(&mut b);
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Recv,
                reg,
            });
            let toks = b.emit_sm_allgather(reg);
            let left = (me + p - j) % p;
            let right = (me + j) % p;
            b.push(Step::Notify {
                to: right,
                tag: tag_ring,
            });
            for i in 1..p {
                let block = (me + p - (i * j) % p) % p;
                b.push(Step::WaitNotify {
                    from: left,
                    tag: tag_ring,
                });
                b.push(Step::CmaRead {
                    token: toks[left],
                    remote_off: block * count,
                    dst: Slot::Recv,
                    dst_off: block * count,
                    len: count,
                });
                if i < p - 1 {
                    b.push(Step::Notify {
                        to: right,
                        tag: tag_ring,
                    });
                }
            }
            b.emit_sm_barrier();
        }
        AllgatherAlgo::RingSourceRead | AllgatherAlgo::RingSourceWrite => {
            let write = matches!(algo, AllgatherAlgo::RingSourceWrite);
            place_own(&mut b);
            let reg = b.reg();
            // Readers pull from the peer's contribution buffer when one
            // exists (offset 0), else from its slot in recvbuf.
            let read_from_slot = if !write && has_sendbuf {
                b.push(Step::Expose {
                    slot: Slot::Send,
                    reg,
                });
                false
            } else {
                b.push(Step::Expose {
                    slot: Slot::Recv,
                    reg,
                });
                true
            };
            let toks = b.emit_sm_allgather(reg);
            for i in 1..p {
                if write {
                    let dst = (me + i) % p;
                    b.push(Step::CmaWrite {
                        token: toks[dst],
                        remote_off: me * count,
                        src: Slot::Recv,
                        src_off: me * count,
                        len: count,
                    });
                } else {
                    let src = (me + p - i) % p;
                    let remote_off = if read_from_slot { src * count } else { 0 };
                    b.push(Step::CmaRead {
                        token: toks[src],
                        remote_off,
                        dst: Slot::Recv,
                        dst_off: src * count,
                        len: count,
                    });
                }
            }
            b.emit_sm_barrier();
        }
        AllgatherAlgo::RecursiveDoubling => {
            place_own(&mut b);
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Recv,
                reg,
            });
            let toks = b.emit_sm_allgather(reg);

            // Simulate every rank's have-set to compile-time-predict the
            // exchanged bitmaps; the compiled schedule sends our
            // round-start snapshot and *verifies* the partner's, which
            // is byte-identical to the legacy exchange.
            let mut have: Vec<Vec<bool>> =
                (0..p).map(|r| (0..p).map(|bk| bk == r).collect()).collect();
            let mut dist = 1usize;
            let mut round = 0u32;
            while dist < p {
                let snapshot = have.clone();
                let tag = Tag::internal(class::ALLGATHER, 16 + round);
                let partner = me ^ dist;
                if partner < p {
                    let mine: Vec<u8> = snapshot[me].iter().map(|&h| h as u8).collect();
                    let theirs: Vec<u8> = snapshot[partner].iter().map(|&h| h as u8).collect();
                    b.push(Step::CtrlSend {
                        to: partner,
                        tag,
                        payload: Payload::Bytes(mine),
                    });
                    b.push(Step::CtrlRecv {
                        from: partner,
                        tag,
                        into: RecvInto::Verify(theirs),
                    });
                    for bk in 0..p {
                        if snapshot[partner][bk] && !have[me][bk] {
                            b.push(Step::CmaRead {
                                token: toks[partner],
                                remote_off: bk * count,
                                dst: Slot::Recv,
                                dst_off: bk * count,
                                len: count,
                            });
                        }
                    }
                }
                // Advance the global simulation for every rank.
                for (r, mine) in have.iter_mut().enumerate() {
                    let pr = r ^ dist;
                    if pr < p {
                        for bk in 0..p {
                            if snapshot[pr][bk] {
                                mine[bk] = true;
                            }
                        }
                    }
                }
                dist <<= 1;
                round += 1;
            }
            // Non-power-of-two stragglers: pull any still-missing block
            // straight from its owner.
            for bk in 0..p {
                if !have[me][bk] {
                    b.push(Step::CmaRead {
                        token: toks[bk],
                        remote_off: bk * count,
                        dst: Slot::Recv,
                        dst_off: bk * count,
                        len: count,
                    });
                }
            }
            b.emit_sm_barrier();
        }
        AllgatherAlgo::Bruck => {
            let temp = b.temp(p * count);
            if has_sendbuf {
                b.push(Step::CopyLocal {
                    src: Slot::Send,
                    src_off: 0,
                    dst: temp,
                    dst_off: 0,
                    len: count,
                });
            } else {
                b.push(Step::CopyLocal {
                    src: Slot::Recv,
                    src_off: me * count,
                    dst: temp,
                    dst_off: 0,
                    len: count,
                });
            }
            let reg = b.reg();
            b.push(Step::Expose { slot: temp, reg });
            let toks = b.emit_sm_allgather(reg);

            let mut filled = 1usize;
            let mut dist = 1usize;
            let mut round = 0u32;
            while dist < p {
                let src = (me + dist) % p;
                let dst = (me + p - dist) % p;
                let tag = Tag::internal(class::ALLGATHER, 32 + round);
                let take = dist.min(p - filled);
                b.push(Step::Notify { to: dst, tag });
                b.push(Step::WaitNotify { from: src, tag });
                b.push(Step::CmaRead {
                    token: toks[src],
                    remote_off: 0,
                    dst: temp,
                    dst_off: filled * count,
                    len: take * count,
                });
                filled += take;
                dist <<= 1;
                round += 1;
            }
            // Rotate temp (blocks in (me+s) mod p order) into place.
            for s in 0..p {
                b.push(Step::CopyLocal {
                    src: temp,
                    src_off: s * count,
                    dst: Slot::Recv,
                    dst_off: ((me + s) % p) * count,
                    len: count,
                });
            }
            b.emit_sm_barrier();
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------

/// Compile one rank's alltoall plan. Bindings: [`Slot::Send`] = the
/// outgoing blocks (`p·count` bytes; the wrapper stages `MPI_IN_PLACE`
/// into a hidden temporary bound here), [`Slot::Recv`] = the receive
/// buffer. Callers must have validated `p > 1` and `count > 0`.
pub fn compile_alltoall(algo: AlltoallAlgo, p: usize, rank: usize, count: usize) -> Schedule {
    let mut b = Builder::new(p, rank, class::ALLTOALL);
    let me = rank;

    match algo {
        AlltoallAlgo::Pairwise => {
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: me * count,
                dst: Slot::Recv,
                dst_off: me * count,
                len: count,
            });
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Send,
                reg,
            });
            let toks = b.emit_sm_allgather(reg);
            for i in 1..p {
                // Distinct sources per step: XOR pairing for power-of-two
                // p, rotation otherwise (§IV-C1).
                let src = if p.is_power_of_two() {
                    me ^ i
                } else {
                    (me + p - i) % p
                };
                b.push(Step::CmaRead {
                    token: toks[src],
                    remote_off: me * count,
                    dst: Slot::Recv,
                    dst_off: src * count,
                    len: count,
                });
            }
            // Source buffers must stay valid until everyone has read.
            b.emit_sm_barrier();
        }
        AlltoallAlgo::PairwiseWrite => {
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: me * count,
                dst: Slot::Recv,
                dst_off: me * count,
                len: count,
            });
            let reg = b.reg();
            b.push(Step::Expose {
                slot: Slot::Recv,
                reg,
            });
            let toks = b.emit_sm_allgather(reg);
            for i in 1..p {
                let dst = if p.is_power_of_two() {
                    me ^ i
                } else {
                    (me + i) % p
                };
                b.push(Step::CmaWrite {
                    token: toks[dst],
                    remote_off: me * count,
                    src: Slot::Send,
                    src_off: dst * count,
                    len: count,
                });
            }
            b.emit_sm_barrier();
        }
        AlltoallAlgo::Bruck => {
            // Phase 1 — local rotation: temp[j] = send block (me+j) mod p.
            let temp = b.temp(p * count);
            for j in 0..p {
                let blk = (me + j) % p;
                b.push(Step::CopyLocal {
                    src: Slot::Send,
                    src_off: blk * count,
                    dst: temp,
                    dst_off: j * count,
                    len: count,
                });
            }
            let reg = b.reg();
            b.push(Step::Expose { slot: temp, reg });
            let toks = b.emit_sm_allgather(reg);
            let scratch = b.temp(p * count);

            // Phase 2 — log₂ p rounds: slots with bit k set travel +2^k
            // ranks; barriers isolate read-set from write-set per round.
            let mut dist = 1usize;
            while dist < p {
                let src = (me + p - dist) % p;
                b.emit_sm_barrier();
                for j in (0..p).filter(|j| j & dist != 0) {
                    b.push(Step::CmaRead {
                        token: toks[src],
                        remote_off: j * count,
                        dst: scratch,
                        dst_off: j * count,
                        len: count,
                    });
                }
                b.emit_sm_barrier();
                for j in (0..p).filter(|j| j & dist != 0) {
                    b.push(Step::CopyLocal {
                        src: scratch,
                        src_off: j * count,
                        dst: temp,
                        dst_off: j * count,
                        len: count,
                    });
                }
                dist <<= 1;
            }

            // Phase 3 — inverse rotation into the receive slots.
            for j in 0..p {
                let slot = (me + p - j) % p;
                b.push(Step::CopyLocal {
                    src: temp,
                    src_off: j * count,
                    dst: Slot::Recv,
                    dst_off: slot * count,
                    len: count,
                });
            }
            b.emit_sm_barrier();
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------

/// Compile one rank's reduce plan. Bindings: [`Slot::Send`] = this
/// rank's contribution, [`Slot::Recv`] = the root's receive buffer
/// (only referenced by the root's plan). Callers must have validated
/// `p > 1`, `count > 0`, lane alignment, and `radix >= 2` for the tree.
#[allow(clippy::too_many_arguments)]
pub fn compile_reduce(
    algo: ReduceAlgo,
    p: usize,
    rank: usize,
    count: usize,
    dtype: Dtype,
    op: ReduceOp,
    root: usize,
) -> Schedule {
    let mut b = Builder::new(p, rank, class::REDUCE);
    let tag_ready = Tag::internal(class::REDUCE, 0);
    let tag_done = Tag::internal(class::REDUCE, 1);
    let me = rank;

    // Shared shape of one contribution pull: receive the child's token,
    // single-copy its partial into scratch, charge the arithmetic pass
    // like a local copy (legacy `pull_and_combine`), fold, acknowledge.
    let pull_and_combine = |b: &mut Builder, from: usize, scratch: Slot, acc: Slot| {
        let treg = b.reg();
        b.push(Step::CtrlRecv {
            from,
            tag: tag_ready,
            into: RecvInto::Token(treg),
        });
        b.push(Step::CmaRead {
            token: treg,
            remote_off: 0,
            dst: scratch,
            dst_off: 0,
            len: count,
        });
        b.push(Step::CopyLocal {
            src: scratch,
            src_off: 0,
            dst: scratch,
            dst_off: 0,
            len: count,
        });
        b.push(Step::Reduce {
            op,
            dtype,
            acc,
            acc_off: 0,
            src: scratch,
            src_off: 0,
            len: count,
        });
        b.push(Step::Notify {
            to: from,
            tag: tag_done,
        });
    };
    // The leaf/non-root side of the same handshake.
    let offer = |b: &mut Builder, to: usize, buf: Slot| {
        let treg = b.reg();
        b.push(Step::Expose {
            slot: buf,
            reg: treg,
        });
        b.push(Step::CtrlSend {
            to,
            tag: tag_ready,
            payload: Payload::Token(treg),
        });
        b.push(Step::WaitNotify {
            from: to,
            tag: tag_done,
        });
    };

    match algo {
        ReduceAlgo::SequentialRead => {
            if me == root {
                b.push(Step::CopyLocal {
                    src: Slot::Send,
                    src_off: 0,
                    dst: Slot::Recv,
                    dst_off: 0,
                    len: count,
                });
                let scratch = b.temp(count);
                // Contributions fold in virtual-rank order (commutative-
                // associative per MPI's requirements on Op).
                for v in 1..p {
                    pull_and_combine(&mut b, unvrank(v, root, p), scratch, Slot::Recv);
                }
            } else {
                offer(&mut b, root, Slot::Send);
            }
        }
        ReduceAlgo::KNomialTree { radix: k } => {
            let v = vrank(me, root, p);
            // Accumulate into a private partial (the root uses recvbuf).
            let acc = if v == 0 { Slot::Recv } else { b.temp(count) };
            b.push(Step::CopyLocal {
                src: Slot::Send,
                src_off: 0,
                dst: acc,
                dst_off: 0,
                len: count,
            });
            let scratch = b.temp(count);

            // The bcast k-nomial tree run in reverse: children v + m·s
            // for every k-power stride s in [first_pow_gt(v), p), m ∈ 1..k.
            let mut join_stride = 1usize;
            while join_stride * k <= v {
                join_stride *= k;
            }
            let mut s = 1usize;
            while s <= v {
                s *= k;
            }
            while s < p {
                for m in 1..k {
                    let child = v + m * s;
                    if child < p {
                        pull_and_combine(&mut b, unvrank(child, root, p), scratch, acc);
                    }
                }
                s *= k;
            }

            if v != 0 {
                let parent = unvrank(v % join_stride, root, p);
                offer(&mut b, parent, acc);
            }
        }
    }
    b.finish()
}

// ---------------------------------------------------------------------
// Membership: agreement rounds and survivor remapping
// ---------------------------------------------------------------------

/// The agreement tag for one `(epoch, round)` pair: masks from different
/// shrink epochs or agreement rounds can never be confused.
pub(crate) fn agree_tag(epoch: u32, round: u32) -> Tag {
    Tag::internal(class::MEMBERSHIP, ((epoch & 0xF) << 8) | (round & 0xFF))
}

/// Compile one all-survivor agreement round: every member sends its
/// `width`-byte wire-encoded suspected-dead [`kacc_comm::MemberMask`] to
/// every other member, then receives every other member's mask. The
/// plan is compiled in the *parent* communicator's numbering (`p`/`me`
/// are parent values), so it executes directly on the parent endpoints
/// with no subgroup plumbing. `width` is
/// [`kacc_comm::MemberMask::wire_len`]`(p)` — a byte vector, not a
/// single word, so membership is unbounded.
///
/// All sends are issued before any receive. Mailbox deposits are
/// non-blocking and persist after a waiter gives up, so a member
/// arriving late still finds every earlier deposit; a member that died
/// simply never deposits, and the tolerant watchdog times the receive
/// out — the zero-filled slot then fails the mask's magic check, which
/// is how the fold identifies the non-responder (by content, with no
/// side-channel suspect bookkeeping).
///
/// `Slot::Send` holds this rank's mask at offset 0; the mask of the
/// member at position `i` of the sorted `members` list lands in
/// `Slot::Recv` at offset `width * i` (the caller pre-fills its own
/// position, which the plan never touches).
pub fn compile_agree(
    p: usize,
    me: usize,
    members: &[usize],
    epoch: u32,
    round: u32,
    width: usize,
) -> Schedule {
    let mut b = Builder::new(p, me, class::MEMBERSHIP);
    let tag = agree_tag(epoch, round);
    for &m in members {
        if m != me {
            b.push(Step::ShmSend {
                to: m,
                tag,
                src: Slot::Send,
                off: 0,
                len: width,
            });
        }
    }
    for (i, &m) in members.iter().enumerate() {
        if m != me {
            b.push(Step::ShmRecv {
                from: m,
                tag,
                dst: Slot::Recv,
                off: width * i,
                len: width,
            });
        }
    }
    b.finish()
}

/// Split form of [`compile_agree`] for per-slot receive deadlines: the
/// first plan sends this rank's mask to every other member and then
/// receives from the members *not* in `suspects` (live slots, executed
/// under the wide adaptive window); the second receives only from
/// suspected members, to be executed under a capped window. Mailbox
/// deposits queue, so a suspect's refutation that already arrived is
/// still taken instantly under the cap — the cap only bounds how long
/// a *genuinely dead* slot can burn, which is what keeps the
/// per-failure agreement price linear instead of compounding one full
/// window per dead slot per round. Tags, offsets, and fold semantics
/// are identical to the unsplit plan.
pub(crate) fn compile_agree_split(
    p: usize,
    me: usize,
    members: &[usize],
    epoch: u32,
    round: u32,
    width: usize,
    suspects: &kacc_comm::MemberMask,
) -> (Schedule, Schedule) {
    let tag = agree_tag(epoch, round);
    let mut live = Builder::new(p, me, class::MEMBERSHIP);
    let mut susp = Builder::new(p, me, class::MEMBERSHIP);
    for &m in members {
        if m != me {
            live.push(Step::ShmSend {
                to: m,
                tag,
                src: Slot::Send,
                off: 0,
                len: width,
            });
        }
    }
    for (i, &m) in members.iter().enumerate() {
        if m != me {
            let part = if suspects.get(m) {
                &mut susp
            } else {
                &mut live
            };
            part.push(Step::ShmRecv {
                from: m,
                tag,
                dst: Slot::Recv,
                off: width * i,
                len: width,
            });
        }
    }
    (live.finish(), susp.finish())
}

/// Translate a Pack entry list's subgroup rank labels to parent ranks.
fn remap_pack(
    entries: &[(u32, Option<TokenReg>)],
    members: &[usize],
) -> Vec<(u32, Option<TokenReg>)> {
    entries
        .iter()
        .map(|&(r, reg)| (members[r as usize] as u32, reg))
        .collect()
}

/// Re-address a plan compiled for the survivor subgroup onto the parent
/// communicator: peer ranks translate through `members` (subgroup rank
/// `i` → parent rank `members[i]`), internal tags move into the shrink
/// epoch's namespace so in-flight traffic from before the shrink can
/// never be consumed by the re-execution, and the plan's identity
/// becomes the parent `(p, rank)` so the executor's shape check passes
/// on the parent endpoint.
///
/// Every compiled collective keeps its internal sub-tags below `0x1000`,
/// which leaves one hex nibble of the 16-bit sub-tag for the epoch; both
/// bounds are asserted, as is `sched.p == members.len()`.
pub fn remap_for_members(
    sched: &Schedule,
    members: &[usize],
    epoch: u32,
    parent_p: usize,
) -> Schedule {
    assert!(
        (1..=0xF).contains(&epoch),
        "shrink epoch {epoch} outside 1..=15"
    );
    assert_eq!(
        sched.p,
        members.len(),
        "plan shape does not match the survivor list"
    );
    let to_parent = |local: usize| members[local];
    let retag = |t: Tag| match t.class() {
        None => t,
        Some(cls) => {
            let sub = (t.0 - Tag::USER_MAX) & 0xFFFF;
            assert!(
                sub < 0x1000,
                "sub-tag {sub:#x} leaves no room for the epoch nibble"
            );
            Tag::internal(cls, (epoch << 12) | sub)
        }
    };
    let steps = sched
        .steps
        .iter()
        .map(|s| match s {
            Step::CtrlSend { to, tag, payload } => Step::CtrlSend {
                to: to_parent(*to),
                tag: retag(*tag),
                payload: match payload {
                    Payload::Pack(entries) => Payload::Pack(remap_pack(entries, members)),
                    other => other.clone(),
                },
            },
            Step::CtrlRecv { from, tag, into } => Step::CtrlRecv {
                from: to_parent(*from),
                tag: retag(*tag),
                into: match into {
                    RecvInto::Pack(entries) => RecvInto::Pack(remap_pack(entries, members)),
                    other => other.clone(),
                },
            },
            Step::Notify { to, tag } => Step::Notify {
                to: to_parent(*to),
                tag: retag(*tag),
            },
            Step::WaitNotify { from, tag } => Step::WaitNotify {
                from: to_parent(*from),
                tag: retag(*tag),
            },
            Step::ShmSend {
                to,
                tag,
                src,
                off,
                len,
            } => Step::ShmSend {
                to: to_parent(*to),
                tag: retag(*tag),
                src: *src,
                off: *off,
                len: *len,
            },
            Step::ShmRecv {
                from,
                tag,
                dst,
                off,
                len,
            } => Step::ShmRecv {
                from: to_parent(*from),
                tag: retag(*tag),
                dst: *dst,
                off: *off,
                len: *len,
            },
            other => other.clone(),
        })
        .collect();
    Schedule {
        p: parent_p,
        rank: members[sched.rank],
        token_regs: sched.token_regs,
        temps: sched.temps.clone(),
        steps,
        class: sched.class,
    }
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// Cache key: everything that shapes a compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanKey {
    /// Scatter plan identity.
    Scatter {
        /// Algorithm variant.
        algo: ScatterAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Per-rank byte counts.
        counts: Vec<usize>,
        /// Explicit displacements, if any.
        displs: Option<Vec<usize>>,
        /// Root rank.
        root: usize,
        /// Whether a receive buffer is bound.
        has_recvbuf: bool,
    },
    /// Gather plan identity.
    Gather {
        /// Algorithm variant.
        algo: GatherAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Per-rank byte counts.
        counts: Vec<usize>,
        /// Explicit displacements, if any.
        displs: Option<Vec<usize>>,
        /// Root rank.
        root: usize,
        /// Whether a send buffer is bound.
        has_sendbuf: bool,
    },
    /// Broadcast plan identity.
    Bcast {
        /// Algorithm variant.
        algo: BcastAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Message bytes.
        count: usize,
        /// Root rank.
        root: usize,
    },
    /// Allgather plan identity.
    Allgather {
        /// Algorithm variant (ring stride already reduced mod `p`).
        algo: AllgatherAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Per-rank block bytes.
        count: usize,
        /// Whether a separate contribution buffer is bound.
        has_sendbuf: bool,
    },
    /// Alltoall plan identity.
    Alltoall {
        /// Algorithm variant.
        algo: AlltoallAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Per-peer block bytes.
        count: usize,
    },
    /// Reduce plan identity.
    Reduce {
        /// Algorithm variant.
        algo: ReduceAlgo,
        /// Rank count.
        p: usize,
        /// Compiling rank.
        rank: usize,
        /// Contribution bytes.
        count: usize,
        /// Element type.
        dtype: Dtype,
        /// Combining operator.
        op: ReduceOp,
        /// Root rank.
        root: usize,
    },
    /// Survivor-remapped plan identity: `inner` describes the plan in
    /// the subgroup's shape, remapped onto the parent communicator for
    /// the given shrink epoch and member list.
    Member {
        /// Shrink epoch the plan was remapped for (1..=15).
        epoch: u32,
        /// Sorted surviving parent ranks.
        members: Vec<usize>,
        /// Plan identity in the subgroup's `(p, rank)` shape.
        inner: Box<PlanKey>,
    },
}

/// Hit/miss/eviction counters for the plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

struct CacheInner {
    map: HashMap<PlanKey, (Arc<Schedule>, u64)>,
    tick: u64,
    stats: PlanCacheStats,
}

/// LRU cache of compiled schedules, keyed by [`PlanKey`].
///
/// The collective entry points consult the process-wide instance
/// ([`PlanCache::global`]) so repeated same-shape calls skip the compile
/// phase entirely. Capacity is bounded; the least-recently-used plan is
/// evicted on overflow.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl PlanCache {
    /// Default capacity of [`PlanCache::global`]. Plans are per-rank, so
    /// this comfortably holds several concurrent collective shapes even
    /// at high rank counts.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a cache bounded to `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        assert!(capacity > 0, "plan cache capacity must be positive");
        PlanCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: PlanCacheStats::default(),
            }),
            capacity,
        }
    }

    /// The process-wide cache used by the collective entry points.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(Self::DEFAULT_CAPACITY))
    }

    /// Look up `key`, compiling (and inserting) with `compile` on miss.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Schedule,
    ) -> Arc<Schedule> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((plan, used)) = inner.map.get_mut(&key) {
            *used = tick;
            let plan = Arc::clone(plan);
            inner.stats.hits += 1;
            return plan;
        }
        inner.stats.misses += 1;
        let plan = Arc::new(compile());
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(key, (Arc::clone(&plan), tick));
        plan
    }

    /// Counters since creation (or the last [`clear`](Self::clear)).
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every survivor-remapped plan older than `epoch`. A shrink
    /// advancing the membership epoch makes plans remapped for earlier
    /// memberships unreachable — their keys embed a stale epoch — so
    /// holding them only wastes capacity and can evict live plans.
    /// Returns the number of plans dropped.
    pub fn invalidate_members_before(&self, epoch: u32) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let before = inner.map.len();
        inner
            .map
            .retain(|k, _| !matches!(k, PlanKey::Member { epoch: e, .. } if *e < epoch));
        before - inner.map.len()
    }

    /// Drop every cached plan and reset the counters (bench/test hook).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.clear();
        inner.stats = PlanCacheStats::default();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn even_layout(p: usize, count: usize) -> Vec<(usize, usize)> {
        (0..p).map(|r| (r * count, count)).collect()
    }

    #[test]
    fn scatter_parallel_read_shape() {
        let p = 8;
        let layout = even_layout(p, 64);
        let root_plan = compile_scatter(ScatterAlgo::ParallelRead, p, 0, &layout, 0, true);
        assert_eq!(root_plan.count_cma(), (0, 0));
        assert!(root_plan
            .steps
            .iter()
            .any(|s| matches!(s, Step::Expose { .. })));
        for r in 1..p {
            let plan = compile_scatter(ScatterAlgo::ParallelRead, p, r, &layout, 0, true);
            assert_eq!(plan.count_cma(), (1, 0), "rank {r} does exactly one read");
        }
    }

    #[test]
    fn scatter_sequential_write_root_writes_all() {
        let p = 6;
        let layout = even_layout(p, 32);
        let plan = compile_scatter(ScatterAlgo::SequentialWrite, p, 2, &layout, 2, true);
        assert_eq!(plan.count_cma(), (0, p - 1));
    }

    #[test]
    fn gather_mirrors_scatter_direction() {
        let p = 5;
        let layout = even_layout(p, 16);
        let peer = compile_gather(GatherAlgo::ParallelWrite, p, 3, &layout, 0, true);
        assert_eq!(peer.count_cma(), (0, 1));
        let root = compile_gather(GatherAlgo::SequentialRead, p, 0, &layout, 0, true);
        assert_eq!(root.count_cma(), (p - 1, 0));
    }

    #[test]
    fn bcast_knomial_children_bounded_by_radix() {
        let p = 16;
        let plan = compile_bcast(BcastAlgo::KNomial { radix: 4 }, p, 0, 128, 0);
        // Root serves at most (radix-1) children per level: count sends.
        let sends = plan
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Step::CtrlSend {
                        payload: Payload::Token(_),
                        ..
                    }
                )
            })
            .count();
        assert!(sends > 0 && sends < p);
    }

    #[test]
    fn allgather_bruck_uses_temp_and_rotates() {
        let p = 6;
        let count = 8;
        let plan = compile_allgather(AllgatherAlgo::Bruck, p, 1, count, true);
        assert_eq!(plan.temps, vec![p * count]);
        let copies = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::CopyLocal { .. }))
            .count();
        // 1 seed copy + p rotation copies.
        assert_eq!(copies, 1 + p);
    }

    #[test]
    fn allgather_recursive_doubling_covers_all_blocks() {
        for p in [2usize, 3, 4, 6, 7, 8] {
            for me in 0..p {
                let plan = compile_allgather(AllgatherAlgo::RecursiveDoubling, p, me, 4, true);
                let mut covered = vec![false; p];
                covered[me] = true;
                for s in &plan.steps {
                    if let Step::CmaRead { dst_off, len, .. } = s {
                        assert_eq!(len % 4, 0);
                        let first = dst_off / 4;
                        for c in covered.iter_mut().skip(first).take(len / 4) {
                            *c = true;
                        }
                    }
                }
                assert!(covered.iter().all(|&c| c), "p={p} me={me} misses a block");
            }
        }
    }

    #[test]
    fn plan_cache_lru_hits_and_evicts() {
        let cache = PlanCache::new(2);
        let key = |count: usize| PlanKey::Bcast {
            algo: BcastAlgo::DirectRead,
            p: 4,
            rank: 0,
            count,
            root: 0,
        };
        let compile = |count: usize| move || compile_bcast(BcastAlgo::DirectRead, 4, 0, count, 0);

        let a = cache.get_or_compile(key(8), compile(8));
        let a2 = cache.get_or_compile(key(8), compile(8));
        assert!(Arc::ptr_eq(&a, &a2), "hit returns the cached plan");
        cache.get_or_compile(key(16), compile(16));
        // Touch key(8) so key(16) is the LRU victim.
        cache.get_or_compile(key(8), compile(8));
        cache.get_or_compile(key(32), compile(32));
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }

    #[test]
    fn sm_gather_pack_order_matches_subtree() {
        // The pack an intermediate rank forwards must list itself first,
        // then each child subtree in bit order — smcoll's exact layout.
        assert_eq!(
            Builder::binomial_subtree(0, 8),
            vec![0, 1, 2, 3, 4, 5, 6, 7]
        );
        assert_eq!(Builder::binomial_subtree(2, 8), vec![2, 3]);
        assert_eq!(Builder::binomial_subtree(4, 8), vec![4, 5, 6, 7]);
    }

    #[test]
    fn agree_plan_sends_before_receiving_every_member() {
        let members = [0usize, 2, 5, 7];
        let width = kacc_comm::MemberMask::wire_len(8);
        let plan = compile_agree(8, 2, &members, 1, 0, width);
        assert_eq!((plan.p, plan.rank), (8, 2));
        assert_eq!(plan.class, Some(class::MEMBERSHIP));
        // 3 sends to the other members, then 3 receives from them, with
        // each member's mask landing at its list position.
        assert_eq!(plan.steps.len(), 6);
        let tag = agree_tag(1, 0);
        for (i, s) in plan.steps.iter().take(3).enumerate() {
            let want = [0usize, 5, 7][i];
            assert_eq!(
                *s,
                Step::ShmSend {
                    to: want,
                    tag,
                    src: Slot::Send,
                    off: 0,
                    len: width
                }
            );
        }
        let recvs: Vec<_> = plan.steps[3..]
            .iter()
            .map(|s| match s {
                Step::ShmRecv { from, off, .. } => (*from, *off),
                other => panic!("expected ShmRecv, got {other:?}"),
            })
            .collect();
        assert_eq!(recvs, vec![(0, 0), (5, 2 * width), (7, 3 * width)]);
    }

    #[test]
    fn agree_plan_width_scales_past_64_ranks() {
        // p = 128: two rank-bit words plus the header word → 24-byte
        // slots. The plan must address every member's slot at its full
        // wire width (the p > 63 cap is gone).
        let members: Vec<usize> = (0..128).collect();
        let width = kacc_comm::MemberMask::wire_len(128);
        assert_eq!(width, 24);
        let plan = compile_agree(128, 100, &members, 2, 1, width);
        assert_eq!(plan.steps.len(), 2 * 127);
        for s in &plan.steps {
            match s {
                Step::ShmSend { len, .. } | Step::ShmRecv { len, .. } => {
                    assert_eq!(*len, width)
                }
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn agree_tags_separate_epochs_and_rounds() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..=0xF {
            for round in 0..2 {
                let t = agree_tag(epoch, round);
                assert!(seen.insert(t.0), "tag collision at ({epoch}, {round})");
                assert_eq!(t.class(), Some(class::MEMBERSHIP));
            }
        }
    }

    #[test]
    fn remap_translates_peers_tags_and_identity() {
        // Compile a bcast for the 3-survivor subgroup {0, 2, 3} of p=5
        // as seen by survivor index 1 (parent rank 2), then remap.
        let members = [0usize, 2, 3];
        let sub = compile_bcast(BcastAlgo::KNomial { radix: 2 }, 3, 1, 64, 0);
        let remapped = remap_for_members(&sub, &members, 1, 5);
        assert_eq!((remapped.p, remapped.rank), (5, 2));
        assert_eq!(remapped.steps.len(), sub.steps.len());
        for (orig, new) in sub.steps.iter().zip(&remapped.steps) {
            let peer_pair = |s: &Step| match s {
                Step::CtrlSend { to, tag, .. }
                | Step::Notify { to, tag }
                | Step::ShmSend { to, tag, .. } => Some((*to, *tag)),
                Step::CtrlRecv { from, tag, .. }
                | Step::WaitNotify { from, tag }
                | Step::ShmRecv { from, tag, .. } => Some((*from, *tag)),
                _ => None,
            };
            match (peer_pair(orig), peer_pair(new)) {
                (Some((po, to)), Some((pn, tn))) => {
                    assert_eq!(pn, members[po], "peer remapped through the member list");
                    assert_eq!(tn.class(), to.class(), "tag class preserved");
                    let sub_of = |t: Tag| (t.0 - Tag::USER_MAX) & 0xFFFF;
                    assert_eq!(
                        sub_of(tn),
                        (1 << 12) | sub_of(to),
                        "sub-tag moved into the epoch-1 namespace"
                    );
                }
                (None, None) => assert_eq!(orig, new, "peerless steps are untouched"),
                other => panic!("step shape changed under remap: {other:?}"),
            }
        }
    }

    #[test]
    fn member_plans_invalidate_below_the_epoch() {
        let cache = PlanCache::new(16);
        let inner = |rank: usize| {
            Box::new(PlanKey::Bcast {
                algo: BcastAlgo::DirectRead,
                p: 3,
                rank,
                count: 8,
                root: 0,
            })
        };
        let compile = || compile_bcast(BcastAlgo::DirectRead, 3, 0, 8, 0);
        for epoch in 1..=3u32 {
            cache.get_or_compile(
                PlanKey::Member {
                    epoch,
                    members: vec![0, 1, 2],
                    inner: inner(0),
                },
                compile,
            );
        }
        cache.get_or_compile(
            PlanKey::Bcast {
                algo: BcastAlgo::DirectRead,
                p: 3,
                rank: 0,
                count: 8,
                root: 0,
            },
            compile,
        );
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.invalidate_members_before(3), 2);
        // The epoch-3 member plan and the plain plan survive.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.invalidate_members_before(3), 0);
    }
}
