//! All-to-all personalized communication: MPI_Alltoall (§IV-C).
//!
//! The public entry point is a thin compile+execute wrapper over
//! [`crate::schedule::compile_alltoall`] (memoized in the global
//! [`PlanCache`]); `alltoall_legacy` keeps the original direct
//! implementation for the traffic-equivalence tests.

use crate::class;
use crate::exec::{execute, Bindings, ScheduleReport};
use crate::schedule::{compile_alltoall, PlanCache, PlanKey};
use kacc_comm::{smcoll, BufId, Comm, CommError, RemoteToken, Result, Tag};

/// Alltoall algorithm selection (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlltoallAlgo {
    /// §IV-C1: pairwise exchange. p−1 steps; in step `i` each rank reads
    /// from a distinct source (`rank ⊕ i` for power-of-two p, `rank − i`
    /// otherwise), so the page-lock never contends.
    Pairwise,
    /// §IV-C1 write variant: step `i` *writes* the outgoing block into
    /// peer `rank ⊕ i` / `rank + i`'s receive buffer. The model treats
    /// read and write bandwidth identically (§II), so this mirrors
    /// [`AlltoallAlgo::Pairwise`]; it exists because the paper evaluates
    /// both directions throughout.
    PairwiseWrite,
    /// §IV-C2: Bruck's algorithm — ⌈log₂ p⌉ rounds at the price of extra
    /// local copies; competitive only for small messages.
    Bruck,
}

const TAG_ROUND: Tag = Tag::internal(class::ALLTOALL, 0);

/// MPI_Alltoall: rank `i` sends its `count`-byte block `j` (from
/// `sendbuf[j·count..]`) to rank `j`, which stores it at
/// `recvbuf[i·count..]`. Both buffers hold `p·count` bytes.
///
/// `sendbuf = None` means `MPI_IN_PLACE`: `recvbuf` initially holds the
/// outgoing blocks and is overwritten with the incoming ones (staged
/// through a hidden temporary, as racing in-place reads would be
/// incorrect).
pub fn alltoall<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AlltoallAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    alltoall_with_report(comm, algo, sendbuf, recvbuf, count).map(|_| ())
}

/// [`alltoall`] returning the executor's per-step accounting. `None`
/// when the call was satisfied without a schedule (single rank or zero
/// count).
pub fn alltoall_with_report<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AlltoallAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<Option<ScheduleReport>> {
    if !prepare(comm, sendbuf, recvbuf, count)? {
        return Ok(None);
    }
    let p = comm.size();
    let me = comm.rank();
    let (source, staged) = stage_in_place(comm, sendbuf, recvbuf, count)?;
    let plan = PlanCache::global().get_or_compile(
        PlanKey::Alltoall {
            algo,
            p,
            rank: me,
            count,
        },
        || compile_alltoall(algo, p, me, count),
    );
    let result = execute(
        comm,
        &plan,
        &Bindings {
            send: Some(source),
            recv: Some(recvbuf),
        },
    );
    if let Some(tmp) = staged {
        comm.free(tmp)?;
    }
    result.map(Some)
}

/// Validation and degenerate-case handling shared by the compiled and
/// legacy paths. Returns `false` when nothing is left to do.
fn prepare<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<bool> {
    let p = comm.size();
    let need = p * count;
    let cap = comm.buf_len(recvbuf)?;
    if cap < need {
        return Err(CommError::OutOfRange {
            buf: recvbuf.0,
            off: 0,
            len: need,
            cap,
        });
    }
    if let Some(sb) = sendbuf {
        let scap = comm.buf_len(sb)?;
        if scap < need {
            return Err(CommError::OutOfRange {
                buf: sb.0,
                off: 0,
                len: need,
                cap: scap,
            });
        }
    }
    if count == 0 {
        return Ok(false);
    }
    if p == 1 {
        if let Some(sb) = sendbuf {
            comm.copy_local(sb, 0, recvbuf, 0, count)?;
        }
        return Ok(false);
    }
    Ok(true)
}

/// MPI_IN_PLACE: stage the outgoing blocks so concurrent peers never
/// observe half-overwritten source data.
fn stage_in_place<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<(BufId, Option<BufId>)> {
    match sendbuf {
        Some(sb) => Ok((sb, None)),
        None => {
            let need = comm.size() * count;
            let tmp = comm.alloc(need);
            comm.copy_local(recvbuf, 0, tmp, 0, need)?;
            Ok((tmp, Some(tmp)))
        }
    }
}

/// Original direct implementation, kept verbatim so tests can assert the
/// compiled schedules are traffic- and result-identical to it.
#[doc(hidden)]
pub fn alltoall_legacy<C: Comm + ?Sized>(
    comm: &mut C,
    algo: AlltoallAlgo,
    sendbuf: Option<BufId>,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    if !prepare(comm, sendbuf, recvbuf, count)? {
        return Ok(());
    }
    let (source, staged) = stage_in_place(comm, sendbuf, recvbuf, count)?;
    let result = match algo {
        AlltoallAlgo::Pairwise => pairwise(comm, source, recvbuf, count),
        AlltoallAlgo::PairwiseWrite => pairwise_write(comm, source, recvbuf, count),
        AlltoallAlgo::Bruck => bruck(comm, source, recvbuf, count),
    };
    if let Some(tmp) = staged {
        comm.free(tmp)?;
    }
    result
}

fn pairwise<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    // Own block moves locally.
    comm.copy_local(sendbuf, me * count, recvbuf, me * count, count)?;
    let token = comm.expose(sendbuf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    for i in 1..p {
        // Peer choice guarantees distinct sources per step: XOR pairing
        // for power-of-two p, rotation otherwise (§IV-C1).
        let src = if p.is_power_of_two() {
            me ^ i
        } else {
            (me + p - i) % p
        };
        let tok = RemoteToken::from_bytes(&tokens[src])
            .ok_or(CommError::Protocol("bad alltoall token".into()))?;
        comm.cma_read(tok, me * count, recvbuf, src * count, count)?;
    }
    // Source buffers must stay valid until everyone has read from them.
    smcoll::sm_barrier(comm)?;
    Ok(())
}

/// Write-direction pairwise exchange: everyone exposes its receive
/// buffer; in step `i` each rank deposits its block for the peer
/// directly. Distinct targets per step keep the page locks
/// contention-free, mirroring the read variant.
fn pairwise_write<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();
    comm.copy_local(sendbuf, me * count, recvbuf, me * count, count)?;
    let token = comm.expose(recvbuf)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    for i in 1..p {
        let dst = if p.is_power_of_two() {
            me ^ i
        } else {
            (me + i) % p
        };
        let tok = RemoteToken::from_bytes(&tokens[dst])
            .ok_or(CommError::Protocol("bad alltoall token".into()))?;
        comm.cma_write(tok, me * count, sendbuf, dst * count, count)?;
    }
    // Receive buffers must not be read by the caller until every writer
    // has deposited its block.
    smcoll::sm_barrier(comm)?;
    Ok(())
}

fn bruck<C: Comm + ?Sized>(
    comm: &mut C,
    sendbuf: BufId,
    recvbuf: BufId,
    count: usize,
) -> Result<()> {
    let p = comm.size();
    let me = comm.rank();

    // Phase 1 — local rotation: temp[j] = send block (me + j) mod p.
    let temp = comm.alloc(p * count);
    for j in 0..p {
        let b = (me + j) % p;
        comm.copy_local(sendbuf, b * count, temp, j * count, count)?;
    }
    let token = comm.expose(temp)?;
    let tokens = smcoll::sm_allgather(comm, &token.to_bytes())?;
    let scratch = comm.alloc(p * count);

    // Phase 2 — log₂ p rounds: slots with bit k set travel +2^k ranks.
    // In the read formulation each rank pulls those slots from
    // rank − 2^k. Barriers isolate read-set from write-set per round.
    let mut round = 0u32;
    let mut dist = 1usize;
    while dist < p {
        let src = (me + p - dist) % p;
        let src_tok = RemoteToken::from_bytes(&tokens[src])
            .ok_or(CommError::Protocol("bad bruck token".into()))?;
        smcoll::sm_barrier(comm)?;
        for j in (0..p).filter(|j| j & dist != 0) {
            comm.cma_read(src_tok, j * count, scratch, j * count, count)?;
        }
        smcoll::sm_barrier(comm)?;
        for j in (0..p).filter(|j| j & dist != 0) {
            comm.copy_local(scratch, j * count, temp, j * count, count)?;
        }
        dist <<= 1;
        round += 1;
    }
    let _ = round;

    // Phase 3 — inverse rotation: block in temp[j] came from rank
    // (me − j) mod p and belongs at that receive slot.
    for j in 0..p {
        let slot = (me + p - j) % p;
        comm.copy_local(temp, j * count, recvbuf, slot * count, count)?;
    }
    smcoll::sm_barrier(comm)?;
    comm.free(scratch)?;
    comm.free(temp)?;
    Ok(())
}

// TAG_ROUND reserved for a notify-chained (barrier-free) Bruck variant.
#[allow(dead_code)]
const _UNUSED: Tag = TAG_ROUND;
