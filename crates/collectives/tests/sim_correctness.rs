//! Correctness of every collective algorithm over the simulated machine:
//! MPI semantics must hold for every algorithm, process count (including
//! non-powers-of-two), root, and message size.

use kacc_collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc_collectives::{
    allgather, alltoall, bcast, gather, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    GatherAlgo, ScatterAlgo,
};
use kacc_comm::{Comm, CommExt};
use kacc_machine::run_team;
use kacc_model::ArchProfile;

fn small_arch() -> ArchProfile {
    // A compact two-socket machine keeps simulated teams fast while
    // still exercising the inter-socket paths.
    let mut a = ArchProfile::broadwell();
    a.name = "TestNode".into();
    a.cores_per_socket = 8;
    a
}

fn check_scatter(p: usize, count: usize, root: usize, algo: ScatterAlgo) {
    let arch = small_arch();
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        if me == root {
            let sb = comm.alloc_with(&scatter_sendbuf(p, count));
            let rb = comm.alloc(count);
            scatter(comm, algo, Some(sb), Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        } else {
            let rb = comm.alloc(count);
            scatter(comm, algo, None, Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        }
    });
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &scatter_expected(r, count)) {
            panic!("{algo:?} p={p} count={count} root={root} rank {r}: {d}");
        }
    }
    assert_eq!(run.mail_pending, 0, "{algo:?} leaked control messages");
}

fn check_gather(p: usize, count: usize, root: usize, algo: GatherAlgo) {
    let arch = small_arch();
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&contribution(me, count));
        if me == root {
            let rb = comm.alloc(p * count);
            gather(comm, algo, Some(sb), Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        } else {
            gather(comm, algo, Some(sb), None, count, root).unwrap();
            Vec::new()
        }
    });
    if let Some(d) = diff(&results[root], &gather_expected(p, count)) {
        panic!("{algo:?} p={p} count={count} root={root}: {d}");
    }
    assert_eq!(run.mail_pending, 0);
}

fn check_allgather(p: usize, count: usize, algo: AllgatherAlgo) {
    let arch = small_arch();
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&contribution(me, count));
        let rb = comm.alloc(p * count);
        allgather(comm, algo, Some(sb), rb, count).unwrap();
        comm.read_all(rb).unwrap()
    });
    let expected = gather_expected(p, count);
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &expected) {
            panic!("{algo:?} p={p} count={count} rank {r}: {d}");
        }
    }
    assert_eq!(run.mail_pending, 0);
}

fn check_alltoall(p: usize, count: usize, algo: AlltoallAlgo, in_place: bool) {
    let arch = small_arch();
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        if in_place {
            let rb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            alltoall(comm, algo, None, rb, count).unwrap();
            comm.read_all(rb).unwrap()
        } else {
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            alltoall(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        }
    });
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &alltoall_expected(r, p, count)) {
            panic!("{algo:?} p={p} count={count} in_place={in_place} rank {r}: {d}");
        }
    }
    assert_eq!(run.mail_pending, 0);
}

fn check_bcast(p: usize, count: usize, root: usize, algo: BcastAlgo) {
    let arch = small_arch();
    let (run, results) = run_team(&arch, p, move |comm| {
        let me = comm.rank();
        let buf = if me == root {
            comm.alloc_with(&contribution(root, count))
        } else {
            comm.alloc(count)
        };
        bcast(comm, algo, buf, count, root).unwrap();
        comm.read_all(buf).unwrap()
    });
    let expected = contribution(root, count);
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &expected) {
            panic!("{algo:?} p={p} count={count} root={root} rank {r}: {d}");
        }
    }
    assert_eq!(run.mail_pending, 0);
}

// ---- Scatter -------------------------------------------------------------

#[test]
fn scatter_all_algorithms_all_shapes() {
    for p in [2usize, 3, 7, 8, 16] {
        for algo in [
            ScatterAlgo::ParallelRead,
            ScatterAlgo::SequentialWrite,
            ScatterAlgo::ThrottledRead { k: 1 },
            ScatterAlgo::ThrottledRead { k: 3 },
            ScatterAlgo::ThrottledRead { k: p - 1 },
        ] {
            check_scatter(p, 1000, 0, algo);
        }
    }
}

#[test]
fn scatter_nonzero_roots() {
    for root in [1usize, 5] {
        for algo in [
            ScatterAlgo::ParallelRead,
            ScatterAlgo::SequentialWrite,
            ScatterAlgo::ThrottledRead { k: 2 },
        ] {
            check_scatter(6, 4096, root % 6, algo);
        }
    }
}

#[test]
fn scatter_odd_sizes() {
    // Sub-page, page-spanning, and page-misaligned counts.
    for count in [1usize, 4095, 4097, 13000] {
        check_scatter(5, count, 2, ScatterAlgo::ThrottledRead { k: 2 });
    }
}

#[test]
fn scatter_throttle_larger_than_team_is_valid() {
    check_scatter(4, 512, 0, ScatterAlgo::ThrottledRead { k: 64 });
}

#[test]
fn scatter_single_rank() {
    check_scatter(1, 100, 0, ScatterAlgo::ParallelRead);
}

#[test]
fn scatter_zero_count() {
    check_scatter(4, 0, 0, ScatterAlgo::SequentialWrite);
}

// ---- Gather --------------------------------------------------------------

#[test]
fn gather_all_algorithms_all_shapes() {
    for p in [2usize, 3, 7, 8, 16] {
        for algo in [
            GatherAlgo::ParallelWrite,
            GatherAlgo::SequentialRead,
            GatherAlgo::ThrottledWrite { k: 1 },
            GatherAlgo::ThrottledWrite { k: 3 },
        ] {
            check_gather(p, 1000, 0, algo);
        }
    }
}

#[test]
fn gather_nonzero_roots_and_odd_sizes() {
    check_gather(6, 4097, 3, GatherAlgo::ParallelWrite);
    check_gather(6, 1, 5, GatherAlgo::SequentialRead);
    check_gather(9, 8191, 4, GatherAlgo::ThrottledWrite { k: 4 });
}

// ---- Allgather -----------------------------------------------------------

#[test]
fn allgather_all_algorithms_power_of_two() {
    for algo in [
        AllgatherAlgo::RingNeighbor { j: 1 },
        AllgatherAlgo::RingSourceRead,
        AllgatherAlgo::RingSourceWrite,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ] {
        check_allgather(8, 2000, algo);
    }
}

#[test]
fn allgather_all_algorithms_non_power_of_two() {
    for algo in [
        AllgatherAlgo::RingNeighbor { j: 1 },
        AllgatherAlgo::RingSourceRead,
        AllgatherAlgo::RingSourceWrite,
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Bruck,
    ] {
        check_allgather(7, 2000, algo);
        check_allgather(12, 513, algo);
    }
}

#[test]
fn allgather_ring_neighbor_strides() {
    // Any stride coprime with p works; 5 on a 2-socket node is the
    // paper's inter-socket-heavy example.
    check_allgather(8, 1000, AllgatherAlgo::RingNeighbor { j: 3 });
    check_allgather(8, 1000, AllgatherAlgo::RingNeighbor { j: 5 });
    check_allgather(9, 1000, AllgatherAlgo::RingNeighbor { j: 2 });
}

#[test]
fn allgather_ring_neighbor_rejects_bad_stride() {
    let arch = small_arch();
    let (_, results) = run_team(&arch, 8, |comm| {
        let sb = comm.alloc(16);
        let rb = comm.alloc(8 * 16);
        // gcd(2, 8) != 1 — every rank must reject it identically.
        allgather(comm, AllgatherAlgo::RingNeighbor { j: 2 }, Some(sb), rb, 16).is_err()
    });
    assert!(results.iter().all(|&r| r));
}

#[test]
fn allgather_single_rank_and_zero_count() {
    check_allgather(1, 64, AllgatherAlgo::RingSourceRead);
    check_allgather(4, 0, AllgatherAlgo::Bruck);
}

// ---- Alltoall ------------------------------------------------------------

#[test]
fn alltoall_pairwise_pow2_and_odd() {
    check_alltoall(8, 700, AlltoallAlgo::Pairwise, false);
    check_alltoall(7, 700, AlltoallAlgo::Pairwise, false);
    check_alltoall(2, 5000, AlltoallAlgo::Pairwise, false);
}

#[test]
fn alltoall_pairwise_write_pow2_and_odd() {
    check_alltoall(8, 700, AlltoallAlgo::PairwiseWrite, false);
    check_alltoall(7, 700, AlltoallAlgo::PairwiseWrite, false);
    check_alltoall(6, 1200, AlltoallAlgo::PairwiseWrite, true);
}

#[test]
fn alltoall_bruck_pow2_and_odd() {
    check_alltoall(8, 300, AlltoallAlgo::Bruck, false);
    check_alltoall(6, 300, AlltoallAlgo::Bruck, false);
    check_alltoall(5, 1, AlltoallAlgo::Bruck, false);
}

#[test]
fn alltoall_in_place() {
    check_alltoall(6, 800, AlltoallAlgo::Pairwise, true);
    check_alltoall(8, 350, AlltoallAlgo::Bruck, true);
}

// ---- Bcast ---------------------------------------------------------------

#[test]
fn bcast_all_algorithms_various_p() {
    for p in [2usize, 3, 8, 13] {
        for algo in [
            BcastAlgo::DirectRead,
            BcastAlgo::DirectWrite,
            BcastAlgo::KNomial { radix: 2 },
            BcastAlgo::KNomial { radix: 4 },
            BcastAlgo::ScatterAllgather,
        ] {
            check_bcast(p, 3000, 0, algo);
        }
    }
}

#[test]
fn bcast_nonzero_roots() {
    for algo in [
        BcastAlgo::DirectRead,
        BcastAlgo::KNomial { radix: 3 },
        BcastAlgo::ScatterAllgather,
    ] {
        check_bcast(9, 5000, 4, algo);
    }
}

#[test]
fn bcast_message_smaller_than_team() {
    // Scatter-allgather with η < p exercises zero-length chunks.
    check_bcast(16, 5, 0, BcastAlgo::ScatterAllgather);
}

#[test]
fn bcast_knomial_radix_wider_than_team() {
    check_bcast(4, 1000, 1, BcastAlgo::KNomial { radix: 16 });
}

#[test]
fn bcast_invalid_radix_rejected() {
    let arch = small_arch();
    let (_, results) = run_team(&arch, 2, |comm| {
        let b = comm.alloc(8);
        bcast(comm, BcastAlgo::KNomial { radix: 1 }, b, 8, 0).is_err()
    });
    assert!(results.iter().all(|&r| r));
}
