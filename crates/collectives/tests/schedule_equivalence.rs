//! Compiled schedules must be result- and traffic-identical to the
//! legacy direct implementations. On the deterministic simulator the
//! strongest possible check is free: identical charged operations in
//! identical order give the *exact same virtual end time*, so the tests
//! assert `end_ns` equality (not a tolerance) alongside payload
//! equality. The thread-transport runs cover the same pairing on a real
//! concurrent transport where only the payloads are deterministic.

use kacc_collectives::alltoall::alltoall_legacy;
use kacc_collectives::reduce::{expected_u64, reduce_legacy};
use kacc_collectives::scatter::scatterv_legacy;
use kacc_collectives::verify::{alltoall_expected, alltoall_sendbuf, diff, scatter_sendbuf};
use kacc_collectives::{
    alltoall, reduce, scatterv, AlltoallAlgo, Dtype, ReduceAlgo, ReduceOp, ScatterAlgo,
};
use kacc_comm::{Comm, CommExt};
use kacc_machine::{run_team, TeamRun};
use kacc_model::ArchProfile;
use kacc_native::run_threads;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "EquivNode".into();
    a.cores_per_socket = 8;
    a
}

/// Run the same closure under the compiled and legacy entry points and
/// assert payloads and the simulator's virtual end time match exactly.
fn assert_sim_equivalent<R, F>(p: usize, what: &str, f: F) -> (TeamRun, Vec<R>)
where
    R: PartialEq + std::fmt::Debug + Send + 'static,
    F: Fn(&mut dyn Comm, bool) -> R + Send + Sync + Copy + 'static,
{
    let arch = small_arch();
    let (run_new, res_new) = run_team(&arch, p, move |comm| f(comm, false));
    let (run_old, res_old) = run_team(&arch, p, move |comm| f(comm, true));
    assert_eq!(res_new, res_old, "{what}: payloads differ from legacy");
    assert_eq!(
        run_new.end_ns, run_old.end_ns,
        "{what}: compiled schedule changed the virtual end time"
    );
    assert_eq!(run_new.mail_pending, 0, "{what}: leaked control messages");
    (run_new, res_new)
}

// ---------------------------------------------------------------------
// Alltoall
// ---------------------------------------------------------------------

fn alltoall_body(comm: &mut dyn Comm, legacy: bool, algo: AlltoallAlgo, count: usize) -> Vec<u8> {
    let p = comm.size();
    let me = comm.rank();
    let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
    let rb = comm.alloc(p * count);
    if legacy {
        alltoall_legacy(comm, algo, Some(sb), rb, count).unwrap();
    } else {
        alltoall(comm, algo, Some(sb), rb, count).unwrap();
    }
    comm.read_all(rb).unwrap()
}

#[test]
fn alltoall_compiled_matches_legacy_on_sim() {
    for p in [4usize, 6, 8] {
        for algo in [
            AlltoallAlgo::Pairwise,
            AlltoallAlgo::PairwiseWrite,
            AlltoallAlgo::Bruck,
        ] {
            let count = 96;
            let what = format!("alltoall {algo:?} p={p}");
            let (_, results) = assert_sim_equivalent(p, &what, move |comm, legacy| {
                alltoall_body(comm, legacy, algo, count)
            });
            for (r, got) in results.iter().enumerate() {
                if let Some(d) = diff(got, &alltoall_expected(r, p, count)) {
                    panic!("{what} rank {r}: {d}");
                }
            }
        }
    }
}

#[test]
fn alltoall_in_place_compiled_matches_legacy_on_sim() {
    let p = 5;
    let count = 64;
    assert_sim_equivalent(p, "alltoall in-place", move |comm, legacy| {
        let me = comm.rank();
        let rb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
        if legacy {
            alltoall_legacy(comm, AlltoallAlgo::Pairwise, None, rb, count).unwrap();
        } else {
            alltoall(comm, AlltoallAlgo::Pairwise, None, rb, count).unwrap();
        }
        comm.read_all(rb).unwrap()
    });
}

#[test]
fn alltoall_compiled_matches_legacy_on_threads() {
    for algo in [
        AlltoallAlgo::Pairwise,
        AlltoallAlgo::PairwiseWrite,
        AlltoallAlgo::Bruck,
    ] {
        let p = 6;
        let count = 48;
        let run = |legacy: bool| {
            run_threads(p, move |comm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
                let rb = comm.alloc(p * count);
                if legacy {
                    alltoall_legacy(comm, algo, Some(sb), rb, count).unwrap();
                } else {
                    alltoall(comm, algo, Some(sb), rb, count).unwrap();
                }
                comm.read_all(rb).unwrap()
            })
        };
        let compiled = run(false);
        let direct = run(true);
        assert_eq!(compiled, direct, "{algo:?}: thread payloads differ");
        for (r, got) in compiled.iter().enumerate() {
            if let Some(d) = diff(got, &alltoall_expected(r, p, count)) {
                panic!("{algo:?} rank {r}: {d}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------

fn reduce_value(rank: usize, lane: usize) -> u64 {
    (rank as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(lane as u64 * 31)
}

fn reduce_fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| reduce_value(rank, l).to_le_bytes())
        .collect()
}

fn reduce_body(
    comm: &mut dyn Comm,
    legacy: bool,
    algo: ReduceAlgo,
    lanes: usize,
    op: ReduceOp,
    root: usize,
) -> Vec<u8> {
    let me = comm.rank();
    let count = lanes * 8;
    let sb = comm.alloc_with(&reduce_fill(me, lanes));
    let rb = (me == root).then(|| comm.alloc(count));
    if legacy {
        reduce_legacy(comm, algo, sb, rb, count, Dtype::U64, op, root).unwrap();
    } else {
        reduce(comm, algo, sb, rb, count, Dtype::U64, op, root).unwrap();
    }
    rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
}

#[test]
fn reduce_compiled_matches_legacy_on_sim() {
    for (p, root) in [(4usize, 0usize), (7, 0), (8, 3)] {
        for algo in [
            ReduceAlgo::SequentialRead,
            ReduceAlgo::KNomialTree { radix: 2 },
            ReduceAlgo::KNomialTree { radix: 3 },
        ] {
            let lanes = 129;
            let op = ReduceOp::Sum;
            let what = format!("reduce {algo:?} p={p} root={root}");
            let (_, results) = assert_sim_equivalent(p, &what, move |comm, legacy| {
                reduce_body(comm, legacy, algo, lanes, op, root)
            });
            let got: Vec<u64> = results[root]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(got, expected_u64(p, lanes, op, reduce_value), "{what}");
        }
    }
}

#[test]
fn reduce_compiled_matches_legacy_on_threads() {
    for algo in [
        ReduceAlgo::SequentialRead,
        ReduceAlgo::KNomialTree { radix: 2 },
    ] {
        let p = 5;
        let lanes = 64;
        let root = 1;
        let op = ReduceOp::Max;
        let run = |legacy: bool| {
            run_threads(p, move |comm| {
                reduce_body(comm, legacy, algo, lanes, op, root)
            })
        };
        let compiled = run(false);
        let direct = run(true);
        assert_eq!(compiled, direct, "{algo:?}: thread payloads differ");
        let got: Vec<u64> = compiled[root]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(got, expected_u64(p, lanes, op, reduce_value), "{algo:?}");
    }
}

// ---------------------------------------------------------------------
// Scatter (regression anchor for the PR-1 ported collectives)
// ---------------------------------------------------------------------

#[test]
fn scatter_compiled_matches_legacy_on_sim() {
    for algo in [
        ScatterAlgo::ParallelRead,
        ScatterAlgo::SequentialWrite,
        ScatterAlgo::ThrottledRead { k: 2 },
    ] {
        let p = 7;
        let count = 128;
        let what = format!("scatter {algo:?} p={p}");
        assert_sim_equivalent(p, &what, move |comm, legacy| {
            let me = comm.rank();
            let counts = vec![count; p];
            let sb = (me == 0).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            if legacy {
                scatterv_legacy(comm, algo, sb, Some(rb), &counts, None, 0).unwrap();
            } else {
                scatterv(comm, algo, sb, Some(rb), &counts, None, 0).unwrap();
            }
            comm.read_all(rb).unwrap()
        });
    }
}
