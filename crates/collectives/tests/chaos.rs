//! Chaos suite: every collective, under deterministic fault plans, on
//! both the simulated machine and the in-process thread transport.
//!
//! Invariants pinned here:
//!
//! 1. **Recoverable plans recover** — bounded transient failures, short
//!    CMA transfers, and injected delays never change the payload any
//!    rank observes.
//! 2. **Fatal plans fail typed** — peer death and persistent permission
//!    revocation (with the fallback disabled) produce `CommError`s, never
//!    panics, and — with a step timeout installed — never hangs.
//! 3. **Persistent permission loss degrades** — with the fallback
//!    enabled the collective completes through the two-copy path and the
//!    degradation is visible in `RecoveryReport` and the trace.
//! 4. **Zero cost when clean** — an installed injector that never fires
//!    leaves a simulated run bitwise-identical (virtual end time and
//!    payloads) to one with no injector compiled in at all.
//!
//! Every failure message includes the plan seed. Set `KACC_CHAOS_SEED`
//! to add one extra seed to the fixed corpus (the CI chaos step passes a
//! fresh random one and echoes it).

use kacc_collectives::exec::{execute_with_policy, Bindings, RecoveryPolicy};
use kacc_collectives::reduce::expected_u64;
use kacc_collectives::schedule::compile_bcast;
use kacc_collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc_collectives::{
    allgather, alltoall, bcast, gather, reduce, scatter, scatterv_with_report, AllgatherAlgo,
    AlltoallAlgo, BcastAlgo, Dtype, GatherAlgo, ReduceAlgo, ReduceOp, ScatterAlgo, ScheduleReport,
};
use kacc_comm::{Comm, CommExt};
use kacc_fault::{FaultHook, FaultKind, FaultOp, FaultPlan, FaultRule};
use kacc_machine::{run_team, run_team_faulty, run_team_faulty_traced, SimComm};
use kacc_model::ArchProfile;
use kacc_native::run_threads_faulty;
use kacc_trace::{Event, EventKind, Track};
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "ChaosNode".into();
    a.cores_per_socket = 8;
    a
}

/// Fixed reproduction corpus plus an optional fresh seed from the
/// environment (printed in every assertion message on failure).
fn seed_corpus() -> Vec<u64> {
    let mut seeds = vec![1, 0xC0FFEE, 0xDEAD_BEEF, 0x9E37_79B9_7F4A_7C15];
    if let Ok(v) = std::env::var("KACC_CHAOS_SEED") {
        match v.parse::<u64>() {
            Ok(s) => seeds.push(s),
            Err(_) => panic!("KACC_CHAOS_SEED must be a u64, got {v:?}"),
        }
    }
    seeds
}

/// A plan every policy-default execution must survive: short CMA
/// transfers, bounded transient EAGAINs (under the executor's retry
/// budget of 3), and small delays, across all operation kinds.
fn recoverable_hook(seed: u64) -> FaultHook {
    FaultPlan::new(seed)
        .rule(
            FaultRule::new(FaultKind::Truncate { numer: 1, denom: 2 }, 0.15)
                .ops_mask(&[FaultOp::CmaRead, FaultOp::CmaWrite]),
        )
        .rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.05).max(2))
        .rule(FaultRule::new(FaultKind::Delay { ns: 700 }, 0.05).max(4))
        .hook()
}

/// Run collective `pick` (0..6) on `comm` and return the bytes to
/// verify; `expect_chaos` builds the reference payload for a rank.
fn run_pick(comm: &mut dyn Comm, pick: usize, count: usize, root: usize) -> Vec<u8> {
    let p = comm.size();
    let me = comm.rank();
    match pick {
        0 => {
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            scatter(
                comm,
                ScatterAlgo::ThrottledRead { k: 2 },
                sb,
                Some(rb),
                count,
                root,
            )
            .unwrap();
            comm.read_all(rb).unwrap()
        }
        1 => {
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == root).then(|| comm.alloc(p * count));
            gather(comm, GatherAlgo::ParallelWrite, Some(sb), rb, count, root).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        }
        2 => {
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            bcast(comm, BcastAlgo::KNomial { radix: 2 }, buf, count, root).unwrap();
            comm.read_all(buf).unwrap()
        }
        3 => {
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            allgather(comm, AllgatherAlgo::Bruck, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        }
        4 => {
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            alltoall(comm, AlltoallAlgo::Pairwise, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        }
        5 => {
            let lanes = count / 8;
            let sb = comm.alloc_with(&reduce_fill(me, lanes));
            let rb = (me == root).then(|| comm.alloc(lanes * 8));
            reduce(
                comm,
                ReduceAlgo::KNomialTree { radix: 2 },
                sb,
                rb,
                lanes * 8,
                Dtype::U64,
                ReduceOp::Sum,
                root,
            )
            .unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        }
        _ => unreachable!("pick out of range"),
    }
}

fn reduce_value(rank: usize, lane: usize) -> u64 {
    (rank as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(lane as u64 * 31)
}

fn reduce_fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| reduce_value(rank, l).to_le_bytes())
        .collect()
}

fn expected_pick(pick: usize, rank: usize, p: usize, count: usize, root: usize) -> Vec<u8> {
    match pick {
        0 => scatter_expected(rank, count),
        1 if rank == root => gather_expected(p, count),
        1 => Vec::new(),
        2 => contribution(root, count),
        3 => gather_expected(p, count),
        4 => alltoall_expected(rank, p, count),
        5 if rank == root => expected_u64(p, count / 8, ReduceOp::Sum, reduce_value)
            .into_iter()
            .flat_map(u64::to_le_bytes)
            .collect(),
        5 => Vec::new(),
        _ => unreachable!("pick out of range"),
    }
}

const PICK_NAMES: [&str; 6] = [
    "scatter",
    "gather",
    "bcast",
    "allgather",
    "alltoall",
    "reduce",
];

fn check_pick_sim(pick: usize, p: usize, count: usize, root: usize, seed: u64) {
    let arch = small_arch();
    let (run, results) = run_team_faulty(&arch, p, recoverable_hook(seed), move |comm| {
        run_pick(comm, pick, count, root)
    });
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &expected_pick(pick, r, p, count, root)) {
            panic!(
                "sim {} seed={seed} p={p} count={count} root={root} rank {r}: {d}",
                PICK_NAMES[pick]
            );
        }
    }
    assert_eq!(
        run.mail_pending, 0,
        "sim {} seed={seed}: leaked control messages",
        PICK_NAMES[pick]
    );
}

fn check_pick_threads(pick: usize, p: usize, count: usize, root: usize, seed: u64) {
    let results = run_threads_faulty(p, recoverable_hook(seed), move |comm| {
        run_pick(comm, pick, count, root)
    });
    for (r, got) in results.iter().enumerate() {
        if let Some(d) = diff(got, &expected_pick(pick, r, p, count, root)) {
            panic!(
                "threads {} seed={seed} p={p} count={count} root={root} rank {r}: {d}",
                PICK_NAMES[pick]
            );
        }
    }
}

// ---- 1. Recoverable plans recover ----------------------------------------

#[test]
fn chaos_corpus_all_collectives_sim() {
    for &seed in &seed_corpus() {
        for pick in 0..6 {
            check_pick_sim(pick, 8, 1024, 2, seed);
        }
    }
}

#[test]
fn chaos_corpus_odd_team_sim() {
    for &seed in &seed_corpus() {
        for pick in 0..6 {
            check_pick_sim(pick, 7, 4096, 0, seed);
        }
    }
}

#[test]
fn chaos_corpus_all_collectives_threads() {
    for &seed in &seed_corpus()[..2] {
        for pick in 0..6 {
            check_pick_threads(pick, 4, 512, 1, seed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any collective × any recoverable plan completes with the exact
    /// fault-free payload on every rank.
    #[test]
    fn chaos_any_seed_any_collective_sim(
        seed in any::<u64>(),
        pick in 0usize..6,
        p in 2usize..8,
        lanes in 1usize..48,
        rootsel in 0usize..8,
    ) {
        check_pick_sim(pick, p, lanes * 8, rootsel % p, seed);
    }
}

// ---- 2. Fatal plans fail typed, never hang -------------------------------

/// Default recovery with every blocking step bounded (virtual ns on the
/// simulator), so an aborted peer can only cost a timeout, not a hang.
fn bounded_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        step_timeout_ns: Some(2_000_000),
        ..RecoveryPolicy::default()
    }
}

/// Broadcast under a fault plan with every step bounded; returns each
/// rank's payload or the stringified typed error.
fn bounded_bcast(
    p: usize,
    count: usize,
    hook: FaultHook,
) -> Vec<std::result::Result<Vec<u8>, String>> {
    let arch = small_arch();
    let (_, results) = run_team_faulty(&arch, p, hook, move |comm: &mut SimComm| {
        let me = comm.rank();
        let buf = if me == 0 {
            comm.alloc_with(&contribution(0, count))
        } else {
            comm.alloc(count)
        };
        let sched = compile_bcast(BcastAlgo::DirectRead, p, me, count, 0);
        let bind = Bindings {
            send: Some(buf),
            recv: None,
        };
        let tracer = comm.tracer();
        match execute_with_policy(comm, &sched, &bind, &tracer, &bounded_policy()) {
            Ok(_) => Ok(comm.read_all(buf).unwrap()),
            Err(e) => Err(format!("{e:?}")),
        }
    });
    results
}

fn assert_typed(msg: &str, ctx: &str) {
    assert!(
        msg.contains("Os(3)") || msg.contains("Timeout") || msg.contains("PermissionDenied"),
        "{ctx}: expected a typed transport error, got {msg}"
    );
}

#[test]
fn peer_death_yields_typed_errors_not_hangs() {
    let p = 6;
    let count = 1024;
    let dead = 5;
    let hook = FaultPlan::new(3)
        .rule(FaultRule::new(FaultKind::PeerDead { rank: dead }, 1.0))
        .hook();
    let results = bounded_bcast(p, count, hook);
    assert!(
        results[dead].is_err(),
        "the dead rank cannot complete a collective it participates in"
    );
    let expected = contribution(0, count);
    for (r, res) in results.iter().enumerate() {
        match res {
            Ok(payload) => {
                if let Some(d) = diff(payload, &expected) {
                    panic!("rank {r} completed with a corrupt payload: {d}");
                }
            }
            Err(msg) => assert_typed(msg, &format!("rank {r}")),
        }
    }
}

#[test]
fn permission_denied_without_fallback_is_a_typed_error() {
    let p = 5;
    let count = 2048;
    let hook = FaultPlan::new(11)
        .rule(FaultRule::new(FaultKind::PermDenied, 1.0).ops_mask(&[FaultOp::CmaRead]))
        .hook();
    let arch = small_arch();
    let (_, results) = run_team_faulty(&arch, p, hook, move |comm: &mut SimComm| {
        let me = comm.rank();
        let buf = if me == 0 {
            comm.alloc_with(&contribution(0, count))
        } else {
            comm.alloc(count)
        };
        let sched = compile_bcast(BcastAlgo::DirectRead, p, me, count, 0);
        let bind = Bindings {
            send: Some(buf),
            recv: None,
        };
        let policy = RecoveryPolicy {
            cma_fallback: false,
            ..bounded_policy()
        };
        let tracer = comm.tracer();
        execute_with_policy(comm, &sched, &bind, &tracer, &policy).map_err(|e| format!("{e:?}"))
    });
    // Every non-root pulls the payload with one CMA read; with the
    // fallback disabled the persistent denial must surface as-is.
    for (r, res) in results.iter().enumerate().skip(1) {
        let msg = res.as_ref().expect_err("denied CMA read cannot succeed");
        assert!(
            msg.contains("PermissionDenied"),
            "rank {r}: expected PermissionDenied, got {msg}"
        );
    }
    // The root only waits on completion notifications that never come.
    if let Err(msg) = &results[0] {
        assert_typed(msg, "root");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Killing any rank never hangs or panics the team: every rank
    /// either finishes with the correct payload or returns a typed error.
    #[test]
    fn chaos_peer_death_never_hangs(
        seed in any::<u64>(),
        p in 2usize..7,
        deadsel in 0usize..8,
        lanes in 1usize..17,
    ) {
        let dead = deadsel % p;
        let count = lanes * 8;
        let hook = FaultPlan::new(seed)
            .rule(FaultRule::new(FaultKind::PeerDead { rank: dead }, 1.0))
            .hook();
        let results = bounded_bcast(p, count, hook);
        prop_assert!(results[dead].is_err());
        let expected = contribution(0, count);
        for (r, res) in results.iter().enumerate() {
            match res {
                Ok(payload) => prop_assert!(
                    diff(payload, &expected).is_none(),
                    "seed={seed} rank {r}: corrupt payload"
                ),
                Err(msg) => prop_assert!(
                    msg.contains("Os(3)") || msg.contains("Timeout"),
                    "seed={seed} rank {r}: untyped failure {msg}"
                ),
            }
        }
    }
}

// ---- 3. Persistent denial degrades to the two-copy path ------------------

#[test]
fn permission_denied_falls_back_to_shm_and_is_traced() {
    let p = 6;
    let count = 2048;
    let root = 0;
    let hook = FaultPlan::new(42)
        .rule(FaultRule::new(FaultKind::PermDenied, 1.0).ops_mask(&[FaultOp::CmaRead]))
        .hook();
    let arch = small_arch();
    let (_, results, events) = run_team_faulty_traced(&arch, p, hook, move |comm| {
        let me = comm.rank();
        let counts = vec![count; p];
        let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
        let rb = comm.alloc(count);
        let report = scatterv_with_report(
            comm,
            ScatterAlgo::ParallelRead,
            sb,
            Some(rb),
            &counts,
            None,
            root,
        )
        .unwrap()
        .expect("scatter ran a schedule");
        (report, comm.read_all(rb).unwrap())
    });

    for (r, (report, payload)) in results.iter().enumerate() {
        if let Some(d) = diff(payload, &scatter_expected(r, count)) {
            panic!("rank {r}: fallback path corrupted the payload: {d}");
        }
        if r == root {
            // The root serves its own slice with a local copy.
            assert!(report.recovery.is_clean(), "root should not need recovery");
            continue;
        }
        // Every non-root's one CMA read was denied and degraded.
        assert!(report.recovery.denied >= 1, "rank {r}: denial not recorded");
        assert_eq!(
            report.recovery.fallbacks, 1,
            "rank {r}: expected exactly one fallback transfer"
        );
        assert_eq!(
            report.recovery.fallback_bytes, count as u64,
            "rank {r}: fallback moved the wrong byte count"
        );

        // The degradation is visible on the rank's trace track, and the
        // report survives a round-trip through the event stream.
        let mine: Vec<Event> = events
            .iter()
            .filter(|ev| ev.track == Track::Rank(r))
            .cloned()
            .collect();
        assert!(
            mine.iter().any(|ev| {
                ev.name == "fallback:read" && matches!(ev.kind, EventKind::Span { .. })
            }),
            "rank {r}: no fallback:read span in the trace"
        );
        assert_eq!(
            &ScheduleReport::from_events(&mine),
            report,
            "rank {r}: report drifted from its trace"
        );
    }

    // The Chrome export must carry the recovery spans and still satisfy
    // the trace-validate schema.
    let json = kacc_trace::chrome_trace_json(&events);
    assert!(
        json.contains("fallback:read"),
        "chrome export lost the recovery spans"
    );
    kacc_trace::validate::validate_chrome_json(&json).expect("fallback trace fails trace-validate");
}

#[test]
fn truncated_cma_transfers_resume_and_are_recorded() {
    let p = 4;
    let count = 4096;
    let root = 0;
    let hook = FaultPlan::new(5)
        .rule(
            FaultRule::new(FaultKind::Truncate { numer: 1, denom: 2 }, 1.0)
                .ops_mask(&[FaultOp::CmaRead, FaultOp::CmaWrite])
                .max(3),
        )
        .hook();
    let arch = small_arch();
    let (_, results) = run_team_faulty(&arch, p, hook, move |comm| {
        let me = comm.rank();
        let counts = vec![count; p];
        let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
        let rb = comm.alloc(count);
        let report = scatterv_with_report(
            comm,
            ScatterAlgo::ParallelRead,
            sb,
            Some(rb),
            &counts,
            None,
            root,
        )
        .unwrap()
        .expect("scatter ran a schedule");
        (report, comm.read_all(rb).unwrap())
    });
    for (r, (report, payload)) in results.iter().enumerate() {
        if let Some(d) = diff(payload, &scatter_expected(r, count)) {
            panic!("rank {r}: resume path corrupted the payload: {d}");
        }
        if r != root {
            assert!(
                report.recovery.short_resumes >= 1,
                "rank {r}: truncated read was not resumed"
            );
            assert!(
                report.recovery.short_bytes >= 1,
                "rank {r}: salvaged bytes not accounted"
            );
        }
    }
}

// ---- 4. Zero cost when clean ---------------------------------------------

#[test]
fn installed_but_silent_injector_is_bitwise_free() {
    let p = 8;
    let count = 8 * 4096;
    let root = 0;
    let body = move |comm: &mut SimComm| {
        let me = comm.rank();
        let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
        let rb = comm.alloc(count);
        scatter(comm, ScatterAlgo::ParallelRead, sb, Some(rb), count, root).unwrap();
        comm.read_all(rb).unwrap()
    };
    let arch = small_arch();
    let (base_run, base) = run_team(&arch, p, body);
    // No injector installed at all (the FaultHook::off() fast path)…
    let (off_run, off) = run_team_faulty(&arch, p, FaultHook::off(), body);
    // …and an installed plan whose rules never fire.
    let silent = FaultPlan::new(9)
        .rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.0))
        .hook();
    let (silent_run, quiet) = run_team_faulty(&arch, p, silent, body);

    assert_eq!(
        base_run.end_ns, off_run.end_ns,
        "disabled hook changed virtual time"
    );
    assert_eq!(
        base_run.end_ns, silent_run.end_ns,
        "silent injector changed virtual time"
    );
    assert_eq!(base, off, "disabled hook changed payloads");
    assert_eq!(base, quiet, "silent injector changed payloads");
}

// ---- 5. Determinism of the plan itself -----------------------------------

#[test]
fn same_seed_same_faults_same_timeline() {
    // Two identical chaos runs must agree on virtual end time and
    // payloads: decisions are a pure function of (seed, rank, op index).
    let run_once = || {
        let arch = small_arch();
        run_team_faulty(&arch, 6, recoverable_hook(0xAB), move |comm| {
            run_pick(comm, 0, 2048, 0)
        })
    };
    let (run_a, a) = run_once();
    let (run_b, b) = run_once();
    assert_eq!(run_a.end_ns, run_b.end_ns, "chaos run is not deterministic");
    assert_eq!(a, b, "chaos payload outcomes are not deterministic");
}

// ---- 6. Hierarchical collectives ride the same chaos plans ----------------

/// One full hierarchical round (scatter, gather, pipelined gather) on
/// the simulator under the recoverable plan; returns the three payloads
/// each rank observed.
fn check_hier_sim(seed: u64, p: usize, count: usize, root: usize, k: usize) {
    use kacc_collectives::hierarchical::{hier_gather, hier_gather_pipelined, hier_scatter};
    let arch = small_arch();
    let (run, results) = run_team_faulty(
        &arch,
        p,
        recoverable_hook(seed),
        move |comm: &mut SimComm| {
            let me = comm.rank();
            let ssb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let srb = comm.alloc(count);
            hier_scatter(comm, ssb, Some(srb), count, root, k).unwrap();
            let scattered = comm.read_all(srb).unwrap();

            let gsb = comm.alloc_with(&contribution(me, count));
            let grb = (me == root).then(|| comm.alloc(p * count));
            hier_gather(comm, Some(gsb), grb, count, root, k).unwrap();
            let gathered = grb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default();

            let psb = comm.alloc_with(&contribution(me, count));
            let prb = (me == root).then(|| comm.alloc(p * count));
            hier_gather_pipelined(comm, Some(psb), prb, count, root, k).unwrap();
            let pipelined = prb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default();

            (scattered, gathered, pipelined)
        },
    );
    for (r, (scattered, gathered, pipelined)) in results.iter().enumerate() {
        let ctx = format!("hier seed={seed} p={p} count={count} root={root} k={k} rank {r}");
        if let Some(d) = diff(scattered, &scatter_expected(r, count)) {
            panic!("{ctx} scatter: {d}");
        }
        let want_gather = if r == root {
            gather_expected(p, count)
        } else {
            Vec::new()
        };
        if let Some(d) = diff(gathered, &want_gather) {
            panic!("{ctx} gather: {d}");
        }
        if let Some(d) = diff(pipelined, &want_gather) {
            panic!("{ctx} pipelined gather: {d}");
        }
    }
    assert_eq!(
        run.mail_pending, 0,
        "hier seed={seed}: leaked control messages"
    );
}

#[test]
fn chaos_corpus_hierarchical_sim() {
    for &seed in &seed_corpus() {
        check_hier_sim(seed, 8, 1024, 0, 4);
        check_hier_sim(seed, 7, 512, 2, 3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Hierarchical designs survive any recoverable plan with exact
    /// payloads, for any team size, leader-group width, and root.
    #[test]
    fn chaos_any_seed_hierarchical_sim(
        seed in any::<u64>(),
        p in 2usize..9,
        k in 1usize..5,
        rootsel in 0usize..8,
        lanes in 1usize..16,
    ) {
        check_hier_sim(seed, p, lanes * 64, rootsel % p, k);
    }
}
