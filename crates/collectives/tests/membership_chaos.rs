//! Membership chaos suite: kill ranks mid-collective and pin the
//! detect → agree → shrink-and-re-execute loop on both engines.
//!
//! Invariants pinned here:
//!
//! 1. **Kill-k completes over the survivors** — with `k ∈ {1, 2}` ranks
//!    silently killed mid-plan, every survivor finishes with the payload
//!    the collective defines over the shrunken group, and the agreed
//!    survivor list and dead mask are identical on every rank.
//! 2. **Killed ranks fail typed** — a dead rank (and every rank, when
//!    the root dies or quorum is lost) gets a typed `CommError`, never a
//!    hang and never a panic.
//! 3. **Engine equivalence** — the whole recovery path (virtual end
//!    time, per-rank outcomes, payloads) is bitwise-identical between
//!    the blocking-thread engine and the polled engine.
//! 4. **Zero cost when clean** — a fault-free survivable run reports a
//!    clean `MembershipReport` and a clean `RecoveryReport`.
//! 5. **Shrink remapping is sound** — remapped plans are a bijection
//!    onto the survivor list and their retagged sub-tags never collide
//!    with any pre-shrink epoch (property-based).
//!
//! Every failure message includes the plan seed. Set `KACC_CHAOS_SEED`
//! to add one extra seed to the fixed corpus (the CI membership-chaos
//! step passes a fresh random one and echoes it).

use kacc_collectives::schedule::{compile_allgather, compile_bcast};
use kacc_collectives::verify::{
    alltoall_sendbuf, contribution, diff, scatter_expected, scatter_sendbuf,
};
use kacc_collectives::{
    remap_for_members, run_survivable, run_survivable_polled, AllgatherAlgo, AlltoallAlgo,
    BcastAlgo, Dtype, GatherAlgo, MembershipReport, RecoveryPolicy, ScatterAlgo, Schedule, Step,
    SurvivableOp,
};
use kacc_collectives::{ReduceAlgo, ReduceOp};
use kacc_comm::{Comm, CommExt, Tag};
use kacc_fault::{FaultHook, FaultPlan};
use kacc_machine::{run_polled_team_faulty, run_team_faulty, PolledComm, SimComm, TeamRun};
use kacc_model::ArchProfile;
use kacc_native::run_threads;
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "MembershipNode".into();
    a.cores_per_socket = 8;
    a
}

/// Fixed reproduction corpus plus an optional fresh seed from the
/// environment (printed in every assertion message on failure).
fn seed_corpus() -> Vec<u64> {
    let mut seeds = vec![1, 0xC0FFEE, 0xDEAD_BEEF, 0x9E37_79B9_7F4A_7C15];
    if let Ok(v) = std::env::var("KACC_CHAOS_SEED") {
        match v.parse::<u64>() {
            Ok(s) => seeds.push(s),
            Err(_) => panic!("KACC_CHAOS_SEED must be a u64, got {v:?}"),
        }
    }
    seeds
}

/// Silently kill each listed rank after its `after`-th transport
/// operation: every op from then on fails with `ESRCH`, which is
/// exactly what a peer observes of a process that died without a
/// goodbye.
fn silent_kill(seed: u64, dead: &[(usize, u64)]) -> FaultHook {
    let mut plan = FaultPlan::new(seed);
    for &(d, after) in dead {
        plan = plan.silent_kill(d, after);
    }
    plan.hook()
}

fn reduce_value(rank: usize, lane: usize) -> u64 {
    (rank as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(lane as u64 * 31)
}

fn reduce_fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| reduce_value(rank, l).to_le_bytes())
        .collect()
}

const PICK_NAMES: [&str; 6] = [
    "scatter",
    "gather",
    "bcast",
    "allgather",
    "alltoall",
    "reduce",
];

fn op_for(pick: usize, count: usize, root: usize) -> SurvivableOp {
    match pick {
        0 => SurvivableOp::Scatter {
            algo: ScatterAlgo::ThrottledRead { k: 2 },
            count,
            root,
        },
        1 => SurvivableOp::Gather {
            algo: GatherAlgo::ParallelWrite,
            count,
            root,
        },
        2 => SurvivableOp::Bcast {
            algo: BcastAlgo::KNomial { radix: 2 },
            count,
            root,
        },
        3 => SurvivableOp::Allgather {
            algo: AllgatherAlgo::Bruck,
            count,
        },
        4 => SurvivableOp::Alltoall {
            algo: AlltoallAlgo::Pairwise,
            count,
        },
        5 => SurvivableOp::Reduce {
            algo: ReduceAlgo::KNomialTree { radix: 2 },
            count,
            dtype: Dtype::U64,
            op: ReduceOp::Sum,
            root,
        },
        _ => unreachable!("pick out of range"),
    }
}

/// What one rank's survivable run produced: the agreed survivor list,
/// the membership loop's report, whether the final execution's
/// `RecoveryReport` was clean, and the observed payload bytes.
type RankOutcome = std::result::Result<(Vec<usize>, MembershipReport, bool, Vec<u8>), String>;

/// Run survivable collective `pick` on the blocking engine. Buffers are
/// parent-sized; a shrunken result occupies their prefix.
fn survivable_threads(comm: &mut SimComm, pick: usize, count: usize, root: usize) -> RankOutcome {
    let p = comm.size();
    let me = comm.rank();
    let op = op_for(pick, count, root);
    let (sb, rb, out) = match pick {
        0 => {
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            (sb, Some(rb), Some(rb))
        }
        1 => {
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == root).then(|| comm.alloc(p * count));
            (Some(sb), rb, rb)
        }
        2 => {
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            (Some(buf), None, Some(buf))
        }
        3 => {
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            (Some(sb), Some(rb), Some(rb))
        }
        4 => {
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            (Some(sb), Some(rb), Some(rb))
        }
        5 => {
            let sb = comm.alloc_with(&reduce_fill(me, count / 8));
            let rb = (me == root).then(|| comm.alloc(count));
            (Some(sb), rb, rb)
        }
        _ => unreachable!("pick out of range"),
    };
    match run_survivable(comm, &op, sb, rb, &RecoveryPolicy::survivable()) {
        Ok(o) => {
            let payload = out
                .map(|b| comm.read_all(b).expect("read"))
                .unwrap_or_default();
            Ok((
                o.members,
                o.membership,
                o.report.recovery.is_empty(),
                payload,
            ))
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

/// The polled-engine twin of [`survivable_threads`].
async fn survivable_polled(
    comm: &mut PolledComm,
    pick: usize,
    count: usize,
    root: usize,
) -> RankOutcome {
    let p = comm.size();
    let me = comm.rank();
    let op = op_for(pick, count, root);
    let (sb, rb, out) = match pick {
        0 => {
            let sb =
                (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)).expect("alloc"));
            let rb = comm.alloc(count);
            (sb, Some(rb), Some(rb))
        }
        1 => {
            let sb = comm.alloc_with(&contribution(me, count)).expect("alloc");
            let rb = (me == root).then(|| comm.alloc(p * count));
            (Some(sb), rb, rb)
        }
        2 => {
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count)).expect("alloc")
            } else {
                comm.alloc(count)
            };
            (Some(buf), None, Some(buf))
        }
        3 => {
            let sb = comm.alloc_with(&contribution(me, count)).expect("alloc");
            let rb = comm.alloc(p * count);
            (Some(sb), Some(rb), Some(rb))
        }
        4 => {
            let sb = comm
                .alloc_with(&alltoall_sendbuf(me, p, count))
                .expect("alloc");
            let rb = comm.alloc(p * count);
            (Some(sb), Some(rb), Some(rb))
        }
        5 => {
            let sb = comm.alloc_with(&reduce_fill(me, count / 8)).expect("alloc");
            let rb = (me == root).then(|| comm.alloc(count));
            (Some(sb), rb, rb)
        }
        _ => unreachable!("pick out of range"),
    };
    match run_survivable_polled(comm, &op, sb, rb, &RecoveryPolicy::survivable()).await {
        Ok(o) => {
            let payload = out
                .map(|b| comm.read_all(b).expect("read"))
                .unwrap_or_default();
            Ok((
                o.members,
                o.membership,
                o.report.recovery.is_empty(),
                payload,
            ))
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

/// The payload survivor `members[idx]` must observe (only the shrunken
/// prefix of its parent-sized buffer is defined).
fn expected_survivor(
    pick: usize,
    idx: usize,
    members: &[usize],
    parent_p: usize,
    count: usize,
    root: usize,
) -> Vec<u8> {
    let me = members[idx];
    let l = members.len();
    match pick {
        0 => scatter_expected(idx, count),
        1 if me == root => members
            .iter()
            .flat_map(|&m| contribution(m, count))
            .collect(),
        1 => Vec::new(),
        2 => contribution(root, count),
        3 => members
            .iter()
            .flat_map(|&m| contribution(m, count))
            .collect(),
        4 => (0..l)
            .flat_map(|i| {
                let sb = alltoall_sendbuf(members[i], parent_p, count);
                sb[idx * count..(idx + 1) * count].to_vec()
            })
            .collect(),
        5 if me == root => (0..count / 8)
            .flat_map(|lane| {
                members
                    .iter()
                    .fold(0u64, |acc, &m| acc.wrapping_add(reduce_value(m, lane)))
                    .to_le_bytes()
            })
            .collect(),
        5 => Vec::new(),
        _ => unreachable!("pick out of range"),
    }
}

/// A dead or exiled rank must end with a typed error, not a panic or a
/// stringified hang.
fn assert_dead_typed(msg: &str, ctx: &str) {
    assert!(
        msg.contains("PeerDead")
            || msg.contains("Os(3)")
            || msg.contains("Timeout")
            || msg.contains("quorum")
            || msg.contains("shrinks"),
        "{ctx}: expected a typed membership error, got {msg}"
    );
}

/// Low-64 diagnostic mask of a dead set — `MembershipReport::dead_mask`
/// mirrors only ranks 0..64 (gen-2 membership is unbounded; wider ranks
/// are visible through the agreed `members` list instead).
fn mask_of(ranks: &[usize]) -> u64 {
    ranks
        .iter()
        .filter(|&&r| r < 64)
        .fold(0u64, |m, &r| m | 1u64 << r)
}

/// Strict postcondition for a kill-k run: every survivor completed over
/// the agreed shrunken group with the exact payload; every killed rank
/// failed typed.
#[allow(clippy::too_many_arguments)]
fn assert_kill_outcomes(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    deadset: &[usize],
    seed: u64,
    results: &[RankOutcome],
    engine: &str,
) {
    let survivors: Vec<usize> = (0..p).filter(|r| !deadset.contains(r)).collect();
    for (r, res) in results.iter().enumerate() {
        let ctx = format!(
            "{engine} {} seed={seed} p={p} count={count} root={root} dead={deadset:?} rank {r}",
            PICK_NAMES[pick]
        );
        if deadset.contains(&r) {
            match res {
                Ok(_) => panic!("{ctx}: a killed rank cannot complete"),
                Err(msg) => assert_dead_typed(msg, &ctx),
            }
            continue;
        }
        match res {
            Ok((members, mrep, _, payload)) => {
                assert_eq!(members, &survivors, "{ctx}: wrong agreed survivor list");
                assert_eq!(
                    mrep.dead_mask,
                    mask_of(deadset),
                    "{ctx}: wrong agreed dead mask"
                );
                assert!(
                    mrep.epochs >= 1 && mrep.reexecs >= 1,
                    "{ctx}: recovery must shrink and re-execute, got {mrep:?}"
                );
                let idx = members
                    .iter()
                    .position(|&m| m == r)
                    .expect("survivor in members");
                let want = expected_survivor(pick, idx, members, p, count, root);
                assert!(
                    payload.len() >= want.len(),
                    "{ctx}: payload shorter than the shrunken result"
                );
                if let Some(d) = diff(&payload[..want.len()], &want) {
                    panic!("{ctx}: {d}");
                }
            }
            Err(msg) => panic!("{ctx}: survivor must complete after the shrink, got {msg}"),
        }
    }
}

/// The node profile a group size belongs on: the 16-place
/// `small_arch` keeps contention realistic for p ≤ 64, while wide
/// groups run on a KNL-class many-core node (272 hardware places) —
/// oversubscribing 128 ranks 8-to-1 onto 16 places serializes the
/// agreement sweep far past anything the analytic deadline model (one
/// rank per place, like a real MPI pinning) is meant to cover.
fn arch_for_p(p: usize) -> ArchProfile {
    if p <= 64 {
        small_arch()
    } else {
        ArchProfile::knl()
    }
}

fn run_kill_sim(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    dead: Vec<(usize, u64)>,
    seed: u64,
) -> (TeamRun, Vec<RankOutcome>) {
    let arch = arch_for_p(p);
    run_team_faulty(
        &arch,
        p,
        silent_kill(seed, &dead),
        move |comm: &mut SimComm| survivable_threads(comm, pick, count, root),
    )
}

fn run_kill_polled(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    dead: Vec<(usize, u64)>,
    seed: u64,
) -> (TeamRun, Vec<RankOutcome>) {
    let arch = arch_for_p(p);
    run_polled_team_faulty(&arch, p, silent_kill(seed, &dead), move |rank| async move {
        let mut comm = PolledComm::new(rank);
        survivable_polled(&mut comm, pick, count, root).await
    })
}

/// Kill-k on both engines, with strict survivor verification and a
/// bitwise engine-equivalence check over the entire recovery path.
fn check_kill_both_engines(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    dead: &[(usize, u64)],
    seed: u64,
) {
    let deadset: Vec<usize> = dead.iter().map(|d| d.0).collect();
    let (trun, tres) = run_kill_sim(pick, p, count, root, dead.to_vec(), seed);
    assert_kill_outcomes(pick, p, count, root, &deadset, seed, &tres, "sim-threads");
    let (prun, pres) = run_kill_polled(pick, p, count, root, dead.to_vec(), seed);
    assert_kill_outcomes(pick, p, count, root, &deadset, seed, &pres, "sim-polled");
    assert_eq!(
        trun.end_ns, prun.end_ns,
        "{} seed={seed} dead={deadset:?}: engines disagree on the recovery end time",
        PICK_NAMES[pick]
    );
    assert_eq!(
        tres, pres,
        "{} seed={seed} dead={deadset:?}: engines disagree on per-rank outcomes",
        PICK_NAMES[pick]
    );
}

/// Relaxed postcondition for kills landing at *arbitrary* virtual
/// times — possibly inside the membership agreement itself, inside a
/// shrink re-execution, or even after the victim's last own operation
/// (in which case nobody observes the death and the run stays clean).
///
/// Pinned here, for any kill point:
///  * every completing rank reports the *same* agreed membership — no
///    split-brain;
///  * a failing rank is either genuinely killed or *consistently
///    exiled*: unanimously dropped from every completer's agreed group
///    and handed a typed membership error itself. A kill landing
///    mid-agreement can cost a live straggler both refutation windows
///    (it is burning dead-slot timeouts while everyone else votes);
///    ULFM semantics permit that exile as long as it is unanimous and
///    typed — what is *never* permitted is a rank completing while the
///    group thinks it left, or two survivors disagreeing on the group;
///  * a killed rank may complete only by staying in the agreed group
///    (it died strictly after its last own operation);
///  * every completing rank's payload is exactly the collective's
///    result over the agreed group — never torn, never stale.
///
/// Returns the observed-dead set so sweeps can check which recovery
/// window a kill point actually landed in.
#[allow(clippy::too_many_arguments)]
fn assert_anywhere_outcomes(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    deadset: &[usize],
    seed: u64,
    results: &[RankOutcome],
    engine: &str,
) -> Vec<usize> {
    let ctx_of = |r: usize| {
        format!(
            "{engine} {} seed={seed} p={p} count={count} root={root} dead={deadset:?} rank {r}",
            PICK_NAMES[pick]
        )
    };
    let mut agreed: Option<&Vec<usize>> = None;
    for (r, res) in results.iter().enumerate() {
        if let Ok((members, ..)) = res {
            match agreed {
                None => agreed = Some(members),
                Some(m) => assert_eq!(members, m, "{}: membership split-brain", ctx_of(r)),
            }
        }
    }
    let members = agreed.expect("the live ranks must complete");
    let observed_dead: Vec<usize> = (0..p).filter(|r| !members.contains(r)).collect();
    for (r, res) in results.iter().enumerate() {
        if let Err(msg) = res {
            // A failing rank was either killed or consistently exiled:
            // out of *every* completer's agreed group AND handed a
            // typed error. A failure outside both sets would be a live
            // rank dying for no agreed reason.
            assert!(
                deadset.contains(&r) || observed_dead.contains(&r),
                "{}: live rank failed without being exiled: {msg}",
                ctx_of(r)
            );
            assert_dead_typed(msg, &ctx_of(r));
        }
    }
    for &d in &observed_dead {
        // Dropped ranks were killed, or (false suspicion under extreme
        // skew) live but failed with a typed error — never silently
        // dropped while appearing to succeed.
        assert!(
            deadset.contains(&d) || results[d].is_err(),
            "rank {d} dropped from the group but completed as if live"
        );
    }
    for (r, res) in results.iter().enumerate() {
        if let Ok((ms, mrep, _, payload)) = res {
            let ctx = ctx_of(r);
            assert!(
                ms.contains(&r),
                "{ctx}: completed while outside the agreed group"
            );
            assert_eq!(
                mrep.dead_mask,
                mask_of(&observed_dead),
                "{ctx}: wrong agreed dead mask"
            );
            if observed_dead.is_empty() {
                assert!(
                    mrep.is_clean(),
                    "{ctx}: nobody observed a death, yet the run is dirty: {mrep:?}"
                );
            } else {
                assert!(
                    mrep.epochs >= 1 && mrep.reexecs >= 1,
                    "{ctx}: an observed death must shrink and re-execute, got {mrep:?}"
                );
            }
            let idx = ms.iter().position(|&m| m == r).expect("rank in members");
            let want = expected_survivor(pick, idx, ms, p, count, root);
            assert!(
                payload.len() >= want.len(),
                "{ctx}: payload shorter than the agreed-group result"
            );
            if let Some(d) = diff(&payload[..want.len()], &want) {
                panic!("{ctx}: {d}");
            }
        }
    }
    observed_dead
}

/// Kill-anywhere on both engines: relaxed per-rank verification plus
/// the bitwise engine-equivalence check, returning the observed-dead
/// set (identical between engines by the equivalence assert).
fn check_anywhere_both_engines(
    pick: usize,
    p: usize,
    count: usize,
    root: usize,
    dead: &[(usize, u64)],
    seed: u64,
) -> Vec<usize> {
    let deadset: Vec<usize> = dead.iter().map(|d| d.0).collect();
    let (trun, tres) = run_kill_sim(pick, p, count, root, dead.to_vec(), seed);
    let observed =
        assert_anywhere_outcomes(pick, p, count, root, &deadset, seed, &tres, "sim-threads");
    let (prun, pres) = run_kill_polled(pick, p, count, root, dead.to_vec(), seed);
    assert_anywhere_outcomes(pick, p, count, root, &deadset, seed, &pres, "sim-polled");
    assert_eq!(
        trun.end_ns, prun.end_ns,
        "{} seed={seed} dead={dead:?}: engines disagree on the recovery end time",
        PICK_NAMES[pick]
    );
    assert_eq!(
        tres, pres,
        "{} seed={seed} dead={dead:?}: engines disagree on per-rank outcomes",
        PICK_NAMES[pick]
    );
    observed
}

// ---- 1. Kill-k completes over the survivors (both engines) ----------------

#[test]
fn membership_kill_one_all_collectives_both_engines() {
    for pick in 0..6 {
        // Rank 5 dies after a few ops; root 2 survives.
        check_kill_both_engines(pick, 8, 256, 2, &[(5, 3)], 1);
    }
}

#[test]
fn membership_kill_one_immediately_sim() {
    for &seed in &seed_corpus() {
        for pick in 0..6 {
            let (_, res) = run_kill_sim(pick, 8, 256, 0, vec![(6, 0)], seed);
            assert_kill_outcomes(pick, 8, 256, 0, &[6], seed, &res, "sim-threads");
        }
    }
}

#[test]
fn membership_kill_two_all_collectives_sim() {
    for pick in 0..6 {
        // Two ranks die at different points; quorum (6/8) holds.
        let dead = vec![(3, 2), (7, 5)];
        let (_, res) = run_kill_sim(pick, 8, 256, 0, dead, 0xC0FFEE);
        assert_kill_outcomes(pick, 8, 256, 0, &[3, 7], 0xC0FFEE, &res, "sim-threads");
    }
}

#[test]
fn membership_kill_two_polled() {
    for pick in 0..6 {
        let dead = vec![(3, 2), (7, 5)];
        let (_, res) = run_kill_polled(pick, 8, 256, 0, dead, 0xC0FFEE);
        assert_kill_outcomes(pick, 8, 256, 0, &[3, 7], 0xC0FFEE, &res, "sim-polled");
    }
}

// ---- 2. Dead roots and lost quorums fail typed on every rank --------------

#[test]
fn membership_dead_root_fails_typed_everywhere() {
    for pick in [0usize, 1, 2, 5] {
        let (_, res) = run_kill_sim(pick, 8, 256, 4, vec![(4, 0)], 7);
        for (r, out) in res.iter().enumerate() {
            let ctx = format!("{} dead-root rank {r}", PICK_NAMES[pick]);
            let msg = out
                .as_ref()
                .err()
                .unwrap_or_else(|| panic!("{ctx}: no rank may complete without the root"));
            assert_dead_typed(msg, &ctx);
        }
    }
}

#[test]
fn membership_quorum_loss_is_a_typed_protocol_error() {
    // p = 4, two dead: 2 survivors cannot hold a majority of 4.
    let (_, res) = run_kill_sim(3, 4, 256, 0, vec![(1, 0), (3, 0)], 11);
    for (r, out) in res.iter().enumerate() {
        let msg = out
            .as_ref()
            .err()
            .unwrap_or_else(|| panic!("rank {r}: completed without quorum"));
        if r == 0 || r == 2 {
            assert!(
                msg.contains("quorum"),
                "survivor {r}: expected a quorum error, got {msg}"
            );
        } else {
            assert_dead_typed(msg, &format!("dead rank {r}"));
        }
    }
}

// ---- 3. Determinism: same seed, same run, bitwise ------------------------

#[test]
fn membership_recovery_is_deterministic_per_seed() {
    for &seed in &seed_corpus()[..2] {
        let a = run_kill_sim(3, 8, 512, 0, vec![(5, 3)], seed);
        let b = run_kill_sim(3, 8, 512, 0, vec![(5, 3)], seed);
        assert_eq!(a.0.end_ns, b.0.end_ns, "seed={seed}: end time drifted");
        assert_eq!(
            a.0.finish_ns, b.0.finish_ns,
            "seed={seed}: finish times drifted"
        );
        assert_eq!(a.1, b.1, "seed={seed}: outcomes drifted");
    }
}

// ---- 4. Zero cost when clean ---------------------------------------------

#[test]
fn membership_fault_free_is_clean_on_both_engines() {
    let p = 8;
    let count = 256;
    let all: Vec<usize> = (0..p).collect();
    for pick in 0..6 {
        let (trun, tres) = run_kill_sim(pick, p, count, 1, vec![], 0);
        let (prun, pres) = run_kill_polled(pick, p, count, 1, vec![], 0);
        for (r, out) in tres.iter().enumerate() {
            let (members, mrep, recovery_clean, payload) = out
                .as_ref()
                .unwrap_or_else(|e| panic!("sim rank {r} pick {pick}: {e}"));
            assert_eq!(members, &all, "rank {r}: fault-free run shrank");
            assert!(mrep.is_clean(), "rank {r}: dirty membership {mrep:?}");
            assert!(*recovery_clean, "rank {r}: dirty recovery report");
            let want = expected_survivor(pick, r, &all, p, count, 1);
            if let Some(d) = diff(&payload[..want.len()], &want) {
                panic!("rank {r} pick {pick}: {d}");
            }
        }
        assert_eq!(
            trun.end_ns, prun.end_ns,
            "pick {pick}: engines diverge clean"
        );
        assert_eq!(tres, pres, "pick {pick}: engines diverge clean");
    }
}

#[test]
fn membership_fault_free_native_threads_smoke() {
    // Wall-clock engine: only the fault-free path is timing-safe to pin.
    let p = 4;
    let count = 128;
    let all: Vec<usize> = (0..p).collect();
    for pick in 0..6 {
        let results = run_threads(p, move |comm| {
            let me = comm.rank();
            let op = op_for(pick, count, 0);
            let (sb, rb, out) = match pick {
                0 => {
                    let sb = (me == 0).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
                    let rb = comm.alloc(count);
                    (sb, Some(rb), Some(rb))
                }
                1 => {
                    let sb = comm.alloc_with(&contribution(me, count));
                    let rb = (me == 0).then(|| comm.alloc(p * count));
                    (Some(sb), rb, rb)
                }
                2 => {
                    let buf = if me == 0 {
                        comm.alloc_with(&contribution(0, count))
                    } else {
                        comm.alloc(count)
                    };
                    (Some(buf), None, Some(buf))
                }
                3 => {
                    let sb = comm.alloc_with(&contribution(me, count));
                    let rb = comm.alloc(p * count);
                    (Some(sb), Some(rb), Some(rb))
                }
                4 => {
                    let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
                    let rb = comm.alloc(p * count);
                    (Some(sb), Some(rb), Some(rb))
                }
                5 => {
                    let sb = comm.alloc_with(&reduce_fill(me, count / 8));
                    let rb = (me == 0).then(|| comm.alloc(count));
                    (Some(sb), rb, rb)
                }
                _ => unreachable!(),
            };
            let o = run_survivable(comm, &op, sb, rb, &RecoveryPolicy::survivable())
                .expect("fault-free survivable");
            let payload = out
                .map(|b| comm.read_all(b).expect("read"))
                .unwrap_or_default();
            (o.members, o.membership, payload)
        });
        for (r, (members, mrep, payload)) in results.iter().enumerate() {
            assert_eq!(members, &all, "native rank {r} pick {pick}: shrank");
            assert!(mrep.is_clean(), "native rank {r} pick {pick}: {mrep:?}");
            let want = expected_survivor(pick, r, &all, p, count, 0);
            if let Some(d) = diff(&payload[..want.len()], &want) {
                panic!("native rank {r} pick {pick}: {d}");
            }
        }
    }
}

// ---- 5. Property: any kill point, never a hang, never a panic -------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Killing any non-root rank at any point in any collective either
    /// completes every survivor over the agreed group with the exact
    /// shrunken payload, or fails typed — the simulator run always
    /// terminates (a hang would deadlock the virtual clock and fail the
    /// harness, not this assertion).
    #[test]
    fn membership_any_kill_point_terminates(
        seed in any::<u64>(),
        pick in 0usize..6,
        deadsel in 1usize..8,
        after in 0u64..12,
    ) {
        let p = 8;
        let root = 0;
        let dead = deadsel; // 1..8: never the root
        let (_, res) = run_kill_sim(pick, p, 256, root, vec![(dead, after)], seed);
        assert_kill_outcomes(pick, p, 256, root, &[dead], seed, &res, "sim-threads");
    }
}

// ---- 5b. Kill-anywhere: agreement and shrink re-exec windows --------------

/// Rank 5 dies early (forcing detection and a membership agreement),
/// then rank 6's kill point is swept across the op-index band where
/// that agreement runs — the second failure lands inside the protocol
/// trying to agree on the first, exercising the fold-in-and-restart
/// path. Across the sweep at least one kill point must be observed
/// (both ranks dropped), proving the band reaches past the data plan.
#[test]
fn membership_kill_during_agreement_both_engines() {
    for &seed in &seed_corpus() {
        let mut saw_second = false;
        for after in [7u64, 9, 11, 14, 18] {
            let observed = check_anywhere_both_engines(3, 8, 256, 0, &[(5, 2), (6, after)], seed);
            assert!(
                observed.contains(&5),
                "seed={seed} after={after}: first kill unobserved"
            );
            saw_second |= observed.contains(&6);
        }
        assert!(
            saw_second,
            "seed={seed}: no kill point in the agreement band was ever observed"
        );
    }
}

/// Same shape, but rank 6 survives the first agreement and dies in the
/// band where the shrunken plan re-executes — a second failure during
/// recovery's re-execution must trigger a nested detect → agree →
/// shrink round, never a hang and never a torn payload.
#[test]
fn membership_kill_during_shrink_reexec_both_engines() {
    for &seed in &seed_corpus() {
        let mut saw_second = false;
        for after in [24u64, 30, 36, 44, 52] {
            let observed = check_anywhere_both_engines(3, 8, 256, 0, &[(5, 2), (6, after)], seed);
            assert!(
                observed.contains(&5),
                "seed={seed} after={after}: first kill unobserved"
            );
            saw_second |= observed.contains(&6);
        }
        assert!(
            saw_second,
            "seed={seed}: no kill point in the re-exec band was ever observed"
        );
    }
}

// ---- 5c. Wide groups: past the old 64-rank mask ceiling -------------------

/// p = 128 exercises the multi-word `MemberMask` end to end: rank 100
/// (past the old single-word ceiling) dies mid-plan, and recovery must
/// agree, shrink, and re-execute bitwise-identically on both engines.
#[test]
fn membership_kill_wide_group_both_engines() {
    for pick in [2usize, 3] {
        check_kill_both_engines(pick, 128, 64, 0, &[(100, 3)], 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// At p = 128, killing any non-root rank at any virtual time never
    /// hangs the group and never yields a wrong payload: every
    /// completing rank agrees on one membership and carries that
    /// membership's exact bytes (threads engine; the fixed wide-group
    /// test above pins engine equivalence).
    #[test]
    fn membership_wide_group_any_kill_point_terminates(
        seed in any::<u64>(),
        dead in 1usize..128,
        after in 0u64..80,
        pick in 2usize..4,
    ) {
        let (_, res) = run_kill_sim(pick, 128, 64, 0, vec![(dead, after)], seed);
        assert_anywhere_outcomes(pick, 128, 64, 0, &[dead], seed, &res, "sim-threads");
    }
}

// ---- 6. Property: shrink remapping is a bijection with fresh tags ---------

/// Collect (peer, tag) references from every step of a schedule.
fn step_refs(s: &Schedule) -> Vec<(Option<usize>, Option<Tag>)> {
    s.steps
        .iter()
        .map(|st| match *st {
            Step::CtrlSend { to, tag, .. } => (Some(to), Some(tag)),
            Step::CtrlRecv { from, tag, .. } => (Some(from), Some(tag)),
            Step::Notify { to, tag } => (Some(to), Some(tag)),
            Step::WaitNotify { from, tag } => (Some(from), Some(tag)),
            Step::ShmSend { to, tag, .. } => (Some(to), Some(tag)),
            Step::ShmRecv { from, tag, .. } => (Some(from), Some(tag)),
            _ => (None, None),
        })
        .collect()
}

fn sub_of(tag: Tag) -> u32 {
    tag.0 & 0xFFFF
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// For any survivor subset and shrink epoch, the remapped plan (a)
    /// maps subgroup peers bijectively onto the survivor list, (b)
    /// keeps every tag's class, and (c) retags sub-tags into an
    /// epoch-unique namespace disjoint from every earlier epoch.
    #[test]
    fn shrink_remap_is_a_bijection_with_unique_tags(
        parent_p in 3usize..12,
        keep_seed in any::<u64>(),
        epoch in 1u32..=15,
        variant in 0usize..2,
        count_lanes in 1usize..8,
    ) {
        // Deterministically pick a survivor subset of size >= 2.
        let mut members: Vec<usize> = (0..parent_p)
            .filter(|&r| (keep_seed >> (r % 64)) & 1 == 0)
            .collect();
        if members.len() < 2 {
            members = vec![0, parent_p - 1];
        }
        let l = members.len();
        let count = count_lanes * 64;
        for (idx, &me) in members.iter().enumerate() {
            let sub = match variant {
                0 => compile_bcast(BcastAlgo::KNomial { radix: 2 }, l, idx, count, 0),
                _ => compile_allgather(AllgatherAlgo::Bruck, l, idx, count, true),
            };
            let remapped = remap_for_members(&sub, &members, epoch, parent_p);
            prop_assert_eq!(remapped.p, parent_p);
            prop_assert_eq!(remapped.rank, me);
            let before = step_refs(&sub);
            let after = step_refs(&remapped);
            prop_assert_eq!(before.len(), after.len());
            for ((bp, bt), (ap, at)) in before.iter().zip(after.iter()) {
                // (a) peers map through the survivor list — a bijection
                // since `members` is sorted and duplicate-free.
                prop_assert_eq!(*ap, bp.map(|q| members[q]));
                if let (Some(bt), Some(at)) = (bt, at) {
                    // (b) the tag class survives the retag.
                    prop_assert_eq!(at.class(), bt.class());
                    // (c) sub-tags move into the epoch's namespace:
                    // epoch e stamps bits 12.. with e, so two different
                    // epochs (and epoch 0, which never sets them) can
                    // never collide.
                    prop_assert_eq!(sub_of(*at), (epoch << 12) | sub_of(*bt));
                    prop_assert!(sub_of(*bt) < 0x1000);
                }
            }
            // (c) continued: the retagged set is disjoint from every
            // earlier epoch's set for the same plan shape.
            for earlier in 0..epoch {
                let prior = if earlier == 0 {
                    sub.clone()
                } else {
                    remap_for_members(&sub, &members, earlier, parent_p)
                };
                let prior_tags: std::collections::HashSet<u32> = step_refs(&prior)
                    .iter()
                    .filter_map(|(_, t)| t.map(|t| t.0))
                    .collect();
                for (_, t) in step_refs(&remapped) {
                    if let Some(t) = t {
                        prop_assert!(
                            !prior_tags.contains(&t.0),
                            "epoch {} tag {:#x} collides with epoch {}",
                            epoch, t.0, earlier
                        );
                    }
                }
            }
        }
    }
}
