//! Reduce / Allreduce correctness and shape over the simulated machine.

use kacc_collectives::reduce::{
    allreduce, expected_u64, reduce, reduce_scatter_block, AllreduceAlgo, Dtype, ReduceAlgo,
    ReduceOp,
};
use kacc_collectives::BcastAlgo;
use kacc_comm::{Comm, CommExt};
use kacc_machine::run_team;
use kacc_model::ArchProfile;

fn value_of(rank: usize, lane: usize) -> u64 {
    (rank as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(lane as u64 * 31)
}

fn fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| value_of(rank, l).to_le_bytes())
        .collect()
}

fn check_reduce(p: usize, lanes: usize, root: usize, op: ReduceOp, algo: ReduceAlgo) {
    let count = lanes * 8;
    let (run, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&fill(me, lanes));
        let rb = (me == root).then(|| comm.alloc(count));
        reduce(comm, algo, sb, rb, count, Dtype::U64, op, root).unwrap();
        rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
    });
    let got: Vec<u64> = results[root]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(
        got,
        expected_u64(p, lanes, op, value_of),
        "{algo:?} {op:?} p={p} lanes={lanes} root={root}"
    );
    assert_eq!(run.mail_pending, 0);
}

#[test]
fn reduce_all_algorithms_ops_and_shapes() {
    for p in [2usize, 3, 7, 8, 13] {
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            for algo in [
                ReduceAlgo::SequentialRead,
                ReduceAlgo::KNomialTree { radix: 2 },
                ReduceAlgo::KNomialTree { radix: 4 },
            ] {
                check_reduce(p, 257, 0, op, algo);
            }
        }
    }
}

#[test]
fn reduce_nonzero_root_and_single_rank() {
    check_reduce(
        6,
        100,
        4,
        ReduceOp::Sum,
        ReduceAlgo::KNomialTree { radix: 3 },
    );
    check_reduce(1, 10, 0, ReduceOp::Max, ReduceAlgo::SequentialRead);
}

#[test]
fn reduce_rejects_misaligned_count() {
    let (_, results) = run_team(&ArchProfile::broadwell(), 2, |comm| {
        let sb = comm.alloc(10); // not a multiple of 8
        let rb = comm.alloc(10);
        reduce(
            comm,
            ReduceAlgo::SequentialRead,
            sb,
            Some(rb),
            10,
            Dtype::U64,
            ReduceOp::Sum,
            0,
        )
        .is_err()
    });
    assert!(results.iter().all(|&e| e));
}

#[test]
fn reduce_f64_sums_match() {
    let p = 5;
    let lanes = 64;
    let (_, results) = run_team(&ArchProfile::knl(), p, move |comm| {
        let me = comm.rank();
        let data: Vec<u8> = (0..lanes)
            .flat_map(|l| ((me * 10 + l) as f64 * 0.5).to_le_bytes())
            .collect();
        let sb = comm.alloc_with(&data);
        let rb = (me == 0).then(|| comm.alloc(lanes * 8));
        reduce(
            comm,
            ReduceAlgo::KNomialTree { radix: 2 },
            sb,
            rb,
            lanes * 8,
            Dtype::F64,
            ReduceOp::Sum,
            0,
        )
        .unwrap();
        rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
    });
    for (l, chunk) in results[0].chunks_exact(8).enumerate() {
        let got = f64::from_le_bytes(chunk.try_into().unwrap());
        let expect: f64 = (0..p).map(|r| (r * 10 + l) as f64 * 0.5).sum();
        assert!((got - expect).abs() < 1e-9, "lane {l}: {got} vs {expect}");
    }
}

#[test]
fn allreduce_delivers_everywhere() {
    let p = 9;
    let lanes = 123;
    let count = lanes * 8;
    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&fill(me, lanes));
        let rb = comm.alloc(count);
        allreduce(
            comm,
            AllreduceAlgo::ReduceBcast {
                reduce: ReduceAlgo::KNomialTree { radix: 3 },
                bcast: BcastAlgo::KNomial { radix: 3 },
            },
            sb,
            rb,
            count,
            Dtype::U64,
            ReduceOp::Sum,
        )
        .unwrap();
        comm.read_all(rb).unwrap()
    });
    let expect: Vec<u8> = expected_u64(p, lanes, ReduceOp::Sum, value_of)
        .into_iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    for (r, got) in results.iter().enumerate() {
        assert_eq!(got, &expect, "rank {r}");
    }
}

#[test]
fn reduce_scatter_block_folds_correct_chunks() {
    let p = 7;
    let lanes = 40; // per destination block
    let count = lanes * 8;
    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
        let me = comm.rank();
        // Block j of rank me carries value_of(me, j·lanes + l).
        let data: Vec<u8> = (0..p * lanes)
            .flat_map(|i| value_of(me, i).to_le_bytes())
            .collect();
        let sb = comm.alloc_with(&data);
        let rb = comm.alloc(count);
        reduce_scatter_block(comm, sb, rb, count, Dtype::U64, ReduceOp::Sum).unwrap();
        comm.read_all(rb).unwrap()
    });
    for (me, got) in results.iter().enumerate() {
        let got: Vec<u64> = got
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = (0..lanes)
            .map(|l| {
                (0..p)
                    .map(|r| value_of(r, me * lanes + l))
                    .fold(0u64, |a, v| a.wrapping_add(v))
            })
            .collect();
        assert_eq!(got, expect, "rank {me}");
    }
}

#[test]
fn rabenseifner_allreduce_matches_reduce_bcast() {
    let p = 9;
    let lanes = 200;
    let count = lanes * 8;
    let go = move |algo: AllreduceAlgo| {
        let (run, results) = run_team(&ArchProfile::knl(), p, move |comm| {
            let me = comm.rank();
            let sb = comm.alloc_with(&fill(me, lanes));
            let rb = comm.alloc(count);
            allreduce(comm, algo, sb, rb, count, Dtype::U64, ReduceOp::Sum).unwrap();
            comm.read_all(rb).unwrap()
        });
        (run.end_ns, results)
    };
    let (_, a) = go(AllreduceAlgo::ReduceScatterAllgather);
    let (_, b) = go(AllreduceAlgo::ReduceBcast {
        reduce: ReduceAlgo::KNomialTree { radix: 2 },
        bcast: BcastAlgo::KNomial { radix: 2 },
    });
    let expect: Vec<u8> = expected_u64(p, lanes, ReduceOp::Sum, value_of)
        .into_iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    for r in 0..p {
        assert_eq!(a[r], expect, "rabenseifner rank {r}");
        assert_eq!(b[r], expect, "reduce+bcast rank {r}");
    }
}

#[test]
fn rabenseifner_wins_large_messages() {
    // The textbook result: reduce-scatter + allgather moves ~2η per
    // rank, beating tree reduce + bcast (~2·log-depth·η) at scale.
    let arch = ArchProfile::knl();
    let p = 32;
    let count = 1 << 20;
    let latency = |algo: AllreduceAlgo| {
        let (run, _) = run_team(&arch, p, move |comm| {
            let sb = comm.alloc(count);
            let rb = comm.alloc(count);
            allreduce(comm, algo, sb, rb, count, Dtype::U64, ReduceOp::Sum).unwrap();
        });
        run.end_ns
    };
    let rab = latency(AllreduceAlgo::ReduceScatterAllgather);
    let tree = latency(AllreduceAlgo::ReduceBcast {
        reduce: ReduceAlgo::KNomialTree { radix: 4 },
        bcast: BcastAlgo::KNomial { radix: 4 },
    });
    assert!(
        rab < tree,
        "rabenseifner {rab} should beat reduce+bcast {tree}"
    );
}

#[test]
fn tree_reduce_beats_sequential_at_scale() {
    // The point of the extension: parallel combining wins once the
    // message is large enough that the root's serial fold dominates.
    let arch = ArchProfile::knl();
    let p = 32;
    let count = 512 * 1024;
    let latency = |algo: ReduceAlgo| {
        let (run, _) = run_team(&arch, p, move |comm| {
            let sb = comm.alloc(count);
            let rb = (comm.rank() == 0).then(|| comm.alloc(count));
            reduce(comm, algo, sb, rb, count, Dtype::U64, ReduceOp::Sum, 0).unwrap();
        });
        run.end_ns
    };
    let seq = latency(ReduceAlgo::SequentialRead);
    let tree = latency(ReduceAlgo::KNomialTree { radix: 4 });
    assert!(tree < seq, "tree {tree} should beat sequential {seq}");
}
