//! Engine-equivalence suite: every collective, clean and under
//! deterministic chaos plans, produces **bitwise-identical** runs on the
//! thread-per-rank engine ([`kacc_machine::run_team`] +
//! [`kacc_machine::SimComm`]) and the thread-free polled engine
//! ([`kacc_machine::run_polled_team`] + [`kacc_machine::PolledComm`]).
//!
//! "Bitwise" means all of:
//!
//! * the team's virtual end time and per-rank finish times,
//! * every rank's payload bytes,
//! * every rank's [`ScheduleReport`] — step stats *and* recovery
//!   actions (retries, backoffs, short-CMA resumes, fallbacks),
//! * the Chrome-trace JSON export, byte for byte.
//!
//! This is the contract that lets `repro --engine polled` substitute for
//! `--engine threads` on any figure: if these pass, the engines are
//! interchangeable for artifacts and only differ in wall-clock cost.

use kacc_collectives::verify::{alltoall_sendbuf, contribution, scatter_sendbuf};
use kacc_collectives::{
    allgather_polled, allgather_with_report, alltoall_polled, alltoall_with_report, bcast_polled,
    bcast_with_report, gatherv_polled, gatherv_with_report, reduce_polled, reduce_with_report,
    scatterv_polled, scatterv_with_report, AllgatherAlgo, AlltoallAlgo, BcastAlgo, Dtype,
    GatherAlgo, ReduceAlgo, ReduceOp, ScatterAlgo, ScheduleReport,
};
use kacc_comm::{Comm, CommExt};
use kacc_fault::{FaultHook, FaultKind, FaultOp, FaultPlan, FaultRule};
use kacc_machine::{
    run_polled_team, run_polled_team_faulty, run_polled_team_faulty_traced, run_polled_team_traced,
    run_team, run_team_faulty, run_team_faulty_traced, run_team_traced, PolledComm, SimComm,
    TeamRun,
};
use kacc_model::ArchProfile;
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "EquivNode".into();
    a.cores_per_socket = 8;
    a
}

/// Fixed reproduction corpus plus an optional fresh seed from the
/// environment (printed in every assertion message on failure).
fn seed_corpus() -> Vec<u64> {
    let mut seeds = vec![1, 0xC0FFEE, 0xDEAD_BEEF, 0x9E37_79B9_7F4A_7C15];
    if let Ok(v) = std::env::var("KACC_CHAOS_SEED") {
        match v.parse::<u64>() {
            Ok(s) => seeds.push(s),
            Err(_) => panic!("KACC_CHAOS_SEED must be a u64, got {v:?}"),
        }
    }
    seeds
}

/// The chaos suite's recoverable plan: short CMA transfers, bounded
/// transient EAGAINs, small delays. Both engines must take the exact
/// same recovery path through it.
fn recoverable_hook(seed: u64) -> FaultHook {
    FaultPlan::new(seed)
        .rule(
            FaultRule::new(FaultKind::Truncate { numer: 1, denom: 2 }, 0.15)
                .ops_mask(&[FaultOp::CmaRead, FaultOp::CmaWrite]),
        )
        .rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.05).max(2))
        .rule(FaultRule::new(FaultKind::Delay { ns: 700 }, 0.05).max(4))
        .hook()
}

fn reduce_fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| {
            (rank as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(l as u64 * 31)
                .to_le_bytes()
        })
        .collect()
}

const PICK_NAMES: [&str; 6] = [
    "scatter",
    "gather",
    "bcast",
    "allgather",
    "alltoall",
    "reduce",
];

type RankOut = (Option<ScheduleReport>, Vec<u8>);

/// Run collective `pick` (0..6) on the threads engine and return
/// (report, observed payload) — the reference behaviour.
fn run_pick_threads(comm: &mut SimComm, pick: usize, count: usize, root: usize) -> RankOut {
    let p = comm.size();
    let me = comm.rank();
    match pick {
        0 => {
            let counts = vec![count; p];
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            let rep = scatterv_with_report(
                comm,
                ScatterAlgo::ThrottledRead { k: 2 },
                sb,
                Some(rb),
                &counts,
                None,
                root,
            )
            .expect("scatter");
            (rep, comm.read_all(rb).expect("read"))
        }
        1 => {
            let counts = vec![count; p];
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == root).then(|| comm.alloc(p * count));
            let rep = gatherv_with_report(
                comm,
                GatherAlgo::ParallelWrite,
                Some(sb),
                rb,
                &counts,
                None,
                root,
            )
            .expect("gather");
            (
                rep,
                rb.map(|b| comm.read_all(b).expect("read"))
                    .unwrap_or_default(),
            )
        }
        2 => {
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            let rep = bcast_with_report(comm, BcastAlgo::KNomial { radix: 2 }, buf, count, root)
                .expect("bcast");
            (rep, comm.read_all(buf).expect("read"))
        }
        3 => {
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            let rep = allgather_with_report(comm, AllgatherAlgo::Bruck, Some(sb), rb, count)
                .expect("allgather");
            (rep, comm.read_all(rb).expect("read"))
        }
        4 => {
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            let rep = alltoall_with_report(comm, AlltoallAlgo::Pairwise, Some(sb), rb, count)
                .expect("alltoall");
            (rep, comm.read_all(rb).expect("read"))
        }
        5 => {
            let lanes = count / 8;
            let sb = comm.alloc_with(&reduce_fill(me, lanes));
            let rb = (me == root).then(|| comm.alloc(lanes * 8));
            let rep = reduce_with_report(
                comm,
                ReduceAlgo::KNomialTree { radix: 2 },
                sb,
                rb,
                lanes * 8,
                Dtype::U64,
                ReduceOp::Sum,
                root,
            )
            .expect("reduce");
            (
                rep,
                rb.map(|b| comm.read_all(b).expect("read"))
                    .unwrap_or_default(),
            )
        }
        _ => unreachable!("pick out of range"),
    }
}

/// The same collective on the polled engine — must match bitwise.
async fn run_pick_polled(comm: &mut PolledComm, pick: usize, count: usize, root: usize) -> RankOut {
    let p = comm.size();
    let me = comm.rank();
    match pick {
        0 => {
            let counts = vec![count; p];
            let sb =
                (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)).expect("alloc"));
            let rb = comm.alloc(count);
            let rep = scatterv_polled(
                comm,
                ScatterAlgo::ThrottledRead { k: 2 },
                sb,
                Some(rb),
                &counts,
                None,
                root,
            )
            .await
            .expect("scatter");
            (rep, comm.read_all(rb).expect("read"))
        }
        1 => {
            let counts = vec![count; p];
            let sb = comm.alloc_with(&contribution(me, count)).expect("alloc");
            let rb = (me == root).then(|| comm.alloc(p * count));
            let rep = gatherv_polled(
                comm,
                GatherAlgo::ParallelWrite,
                Some(sb),
                rb,
                &counts,
                None,
                root,
            )
            .await
            .expect("gather");
            (
                rep,
                rb.map(|b| comm.read_all(b).expect("read"))
                    .unwrap_or_default(),
            )
        }
        2 => {
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count)).expect("alloc")
            } else {
                comm.alloc(count)
            };
            let rep = bcast_polled(comm, BcastAlgo::KNomial { radix: 2 }, buf, count, root)
                .await
                .expect("bcast");
            (rep, comm.read_all(buf).expect("read"))
        }
        3 => {
            let sb = comm.alloc_with(&contribution(me, count)).expect("alloc");
            let rb = comm.alloc(p * count);
            let rep = allgather_polled(comm, AllgatherAlgo::Bruck, Some(sb), rb, count)
                .await
                .expect("allgather");
            (rep, comm.read_all(rb).expect("read"))
        }
        4 => {
            let sb = comm
                .alloc_with(&alltoall_sendbuf(me, p, count))
                .expect("alloc");
            let rb = comm.alloc(p * count);
            let rep = alltoall_polled(comm, AlltoallAlgo::Pairwise, Some(sb), rb, count)
                .await
                .expect("alltoall");
            (rep, comm.read_all(rb).expect("read"))
        }
        5 => {
            let lanes = count / 8;
            let sb = comm.alloc_with(&reduce_fill(me, lanes)).expect("alloc");
            let rb = (me == root).then(|| comm.alloc(lanes * 8));
            let rep = reduce_polled(
                comm,
                ReduceAlgo::KNomialTree { radix: 2 },
                sb,
                rb,
                lanes * 8,
                Dtype::U64,
                ReduceOp::Sum,
                root,
            )
            .await
            .expect("reduce");
            (
                rep,
                rb.map(|b| comm.read_all(b).expect("read"))
                    .unwrap_or_default(),
            )
        }
        _ => unreachable!("pick out of range"),
    }
}

/// Assert two TeamRuns agree on everything that reaches an artifact.
fn assert_runs_equal(a: &TeamRun, b: &TeamRun, ctx: &str) {
    assert_eq!(a.end_ns, b.end_ns, "{ctx}: end_ns differs");
    assert_eq!(a.finish_ns, b.finish_ns, "{ctx}: finish_ns differs");
    assert_eq!(a.stats, b.stats, "{ctx}: per-rank stats differ");
    assert_eq!(
        a.mail_pending, b.mail_pending,
        "{ctx}: mail_pending differs"
    );
}

fn check_clean(pick: usize, p: usize, count: usize, root: usize) {
    let arch = small_arch();
    let (t_run, t_res) = run_team(&arch, p, move |comm| {
        run_pick_threads(comm, pick, count, root)
    });
    let arch2 = small_arch();
    let (p_run, p_res) = run_polled_team(&arch2, p, move |rank| async move {
        let mut comm = PolledComm::new(rank);
        run_pick_polled(&mut comm, pick, count, root).await
    });
    let ctx = format!("clean {} p={p} count={count}", PICK_NAMES[pick]);
    assert_runs_equal(&t_run, &p_run, &ctx);
    assert_eq!(t_res, p_res, "{ctx}: per-rank (report, payload) differ");
}

fn check_faulty(pick: usize, p: usize, count: usize, root: usize, seed: u64) {
    let arch = small_arch();
    let (t_run, t_res) = run_team_faulty(&arch, p, recoverable_hook(seed), move |comm| {
        run_pick_threads(comm, pick, count, root)
    });
    let arch2 = small_arch();
    let (p_run, p_res) =
        run_polled_team_faulty(&arch2, p, recoverable_hook(seed), move |rank| async move {
            let mut comm = PolledComm::new(rank);
            run_pick_polled(&mut comm, pick, count, root).await
        });
    let ctx = format!(
        "faulty {} seed={seed} p={p} count={count}",
        PICK_NAMES[pick]
    );
    assert_runs_equal(&t_run, &p_run, &ctx);
    assert_eq!(
        t_res, p_res,
        "{ctx}: per-rank (report, payload) differ — recovery paths diverged"
    );
}

// ---- 1. Clean runs: all six collectives, bitwise ------------------------

#[test]
fn clean_all_collectives_bitwise() {
    for pick in 0..6 {
        check_clean(pick, 8, 4096, 2);
        check_clean(pick, 7, 1024, 0);
    }
}

// ---- 2. Chaos runs: same faults, same recovery, bitwise -----------------

#[test]
fn faulty_all_collectives_bitwise() {
    for &seed in &seed_corpus() {
        for pick in 0..6 {
            check_faulty(pick, 8, 1024, 2, seed);
        }
    }
}

// ---- 3. Traces: the Chrome export is byte-identical ---------------------

#[test]
fn clean_traces_bitwise() {
    for (pick, name) in PICK_NAMES.iter().enumerate() {
        let (p, count, root) = (6, 2048, 1);
        let arch = small_arch();
        let (t_run, t_res, t_events) = run_team_traced(&arch, p, move |comm| {
            run_pick_threads(comm, pick, count, root)
        });
        let arch2 = small_arch();
        let (p_run, p_res, p_events) = run_polled_team_traced(&arch2, p, move |rank| async move {
            let mut comm = PolledComm::new(rank);
            run_pick_polled(&mut comm, pick, count, root).await
        });
        let ctx = format!("traced {name}");
        assert_runs_equal(&t_run, &p_run, &ctx);
        assert_eq!(t_res, p_res, "{ctx}: results differ");
        assert_eq!(
            kacc_trace::chrome_trace_json(&t_events),
            kacc_trace::chrome_trace_json(&p_events),
            "{ctx}: Chrome-trace JSON differs between engines"
        );
    }
}

#[test]
fn faulty_traces_bitwise() {
    // Recovery spans (fault:*, retry:backoff, fallback:*) must land at
    // the same virtual times in the same order on both engines.
    let (p, count, root, seed) = (6, 2048, 0, 0xC0FFEE);
    for (pick, name) in PICK_NAMES.iter().enumerate() {
        let arch = small_arch();
        let (t_run, t_res, t_events) =
            run_team_faulty_traced(&arch, p, recoverable_hook(seed), move |comm| {
                run_pick_threads(comm, pick, count, root)
            });
        let arch2 = small_arch();
        let (p_run, p_res, p_events) = run_polled_team_faulty_traced(
            &small_arch(),
            p,
            recoverable_hook(seed),
            move |rank| async move {
                let mut comm = PolledComm::new(rank);
                run_pick_polled(&mut comm, pick, count, root).await
            },
        );
        let _ = arch2;
        let ctx = format!("faulty-traced {name} seed={seed}");
        assert_runs_equal(&t_run, &p_run, &ctx);
        assert_eq!(t_res, p_res, "{ctx}: results differ");
        assert_eq!(
            kacc_trace::chrome_trace_json(&t_events),
            kacc_trace::chrome_trace_json(&p_events),
            "{ctx}: Chrome-trace JSON differs between engines"
        );
        let _ = arch;
    }
}

// ---- 4. Any seed, any collective: property form -------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Arbitrary recoverable chaos plans never make the engines diverge.
    #[test]
    fn engines_agree_under_any_recoverable_plan(
        seed in any::<u64>(),
        pick in 0usize..6,
        p in 2usize..8,
        lanes in 1usize..32,
        rootsel in 0usize..8,
    ) {
        check_faulty(pick, p, lanes * 8, rootsel % p, seed);
    }
}
