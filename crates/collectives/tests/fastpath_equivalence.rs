//! The kernel's direct-handoff fast path (DESIGN.md §11.2) is a pure
//! scheduling optimization: it may only skip the park/unpark round-trip
//! when the blocking thread's own wake is strictly the next event. It
//! must never change *which* thread runs next or *when* (in virtual
//! time) anything happens.
//!
//! This suite pins that claim property-style across all six collectives:
//! the same closure under [`run_team`] (fast path on, the default) and
//! [`run_team_no_fastpath`] must produce bitwise-identical [`TeamRun`]s —
//! `end_ns`, per-rank `finish_ns`, step accounting, peak concurrency,
//! event count — and identical payload bytes on every rank.

use kacc_collectives::verify::{
    alltoall_expected, alltoall_sendbuf, contribution, diff, gather_expected, scatter_expected,
    scatter_sendbuf,
};
use kacc_collectives::{
    allgather, alltoall, bcast, gather, reduce, scatter, AllgatherAlgo, AlltoallAlgo, BcastAlgo,
    Dtype, GatherAlgo, ReduceAlgo, ReduceOp, ScatterAlgo,
};
use kacc_comm::{Comm, CommExt};
use kacc_machine::{run_team, run_team_no_fastpath};
use kacc_model::ArchProfile;
use proptest::prelude::*;

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "FastPathNode".into();
    a.cores_per_socket = 8;
    a
}

/// Run collective `pick` (0..6), algorithm variant `var` (0..3), and
/// return the payload bytes this rank should verify.
fn run_pick(comm: &mut dyn Comm, pick: usize, var: usize, count: usize, root: usize) -> Vec<u8> {
    let p = comm.size();
    let me = comm.rank();
    match pick {
        0 => {
            let algo = [
                ScatterAlgo::ParallelRead,
                ScatterAlgo::SequentialWrite,
                ScatterAlgo::ThrottledRead { k: 2 },
            ][var];
            let sb = (me == root).then(|| comm.alloc_with(&scatter_sendbuf(p, count)));
            let rb = comm.alloc(count);
            scatter(comm, algo, sb, Some(rb), count, root).unwrap();
            comm.read_all(rb).unwrap()
        }
        1 => {
            let algo = [
                GatherAlgo::ParallelWrite,
                GatherAlgo::SequentialRead,
                GatherAlgo::ThrottledWrite { k: 2 },
            ][var];
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = (me == root).then(|| comm.alloc(p * count));
            gather(comm, algo, Some(sb), rb, count, root).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        }
        2 => {
            let algo = [
                BcastAlgo::DirectRead,
                BcastAlgo::KNomial { radix: 2 },
                BcastAlgo::ScatterAllgather,
            ][var];
            let buf = if me == root {
                comm.alloc_with(&contribution(root, count))
            } else {
                comm.alloc(count)
            };
            bcast(comm, algo, buf, count, root).unwrap();
            comm.read_all(buf).unwrap()
        }
        3 => {
            let algo = [
                AllgatherAlgo::RingNeighbor { j: 1 },
                AllgatherAlgo::RecursiveDoubling,
                AllgatherAlgo::Bruck,
            ][var];
            let sb = comm.alloc_with(&contribution(me, count));
            let rb = comm.alloc(p * count);
            allgather(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        }
        4 => {
            let algo = [
                AlltoallAlgo::Pairwise,
                AlltoallAlgo::PairwiseWrite,
                AlltoallAlgo::Bruck,
            ][var];
            let sb = comm.alloc_with(&alltoall_sendbuf(me, p, count));
            let rb = comm.alloc(p * count);
            alltoall(comm, algo, Some(sb), rb, count).unwrap();
            comm.read_all(rb).unwrap()
        }
        5 => {
            let algo = [
                ReduceAlgo::SequentialRead,
                ReduceAlgo::KNomialTree { radix: 2 },
                ReduceAlgo::KNomialTree { radix: 3 },
            ][var];
            let lanes = count / 8;
            let sb = comm.alloc_with(&reduce_fill(me, lanes));
            let rb = (me == root).then(|| comm.alloc(lanes * 8));
            reduce(
                comm,
                algo,
                sb,
                rb,
                lanes * 8,
                Dtype::U64,
                ReduceOp::Sum,
                root,
            )
            .unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        }
        _ => unreachable!("pick out of range"),
    }
}

fn reduce_value(rank: usize, lane: usize) -> u64 {
    (rank as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(lane as u64 * 31)
}

fn reduce_fill(rank: usize, lanes: usize) -> Vec<u8> {
    (0..lanes)
        .flat_map(|l| reduce_value(rank, l).to_le_bytes())
        .collect()
}

fn expected_pick(pick: usize, rank: usize, p: usize, count: usize, root: usize) -> Vec<u8> {
    match pick {
        0 => scatter_expected(rank, count),
        1 if rank == root => gather_expected(p, count),
        1 => Vec::new(),
        2 => contribution(root, count),
        3 => gather_expected(p, count),
        4 => alltoall_expected(rank, p, count),
        5 if rank == root => {
            kacc_collectives::reduce::expected_u64(p, count / 8, ReduceOp::Sum, reduce_value)
                .into_iter()
                .flat_map(u64::to_le_bytes)
                .collect()
        }
        5 => Vec::new(),
        _ => unreachable!("pick out of range"),
    }
}

const PICK_NAMES: [&str; 6] = [
    "scatter",
    "gather",
    "bcast",
    "allgather",
    "alltoall",
    "reduce",
];

/// The core check: fast path on vs off must be bitwise-identical.
fn check_equivalent(pick: usize, var: usize, p: usize, count: usize, root: usize) {
    let arch = small_arch();
    let what = format!(
        "{} var={var} p={p} count={count} root={root}",
        PICK_NAMES[pick]
    );
    let (mut run_fast, res_fast) =
        run_team(&arch, p, move |comm| run_pick(comm, pick, var, count, root));
    let (mut run_slow, res_slow) =
        run_team_no_fastpath(&arch, p, move |comm| run_pick(comm, pick, var, count, root));
    // The fast path replaces queue traffic with direct handoffs, so the
    // queue-mechanics observability counters legitimately differ between
    // the two runs; the semantic result (timing, payloads, stats) and the
    // machine-layer metrics must still match bitwise.
    run_fast.sim = Default::default();
    run_slow.sim = Default::default();
    assert_eq!(
        run_fast, run_slow,
        "{what}: fast path changed the TeamRun (end_ns {} vs {})",
        run_fast.end_ns, run_slow.end_ns
    );
    assert_eq!(res_fast, res_slow, "{what}: fast path changed payloads");
    for (r, got) in res_fast.iter().enumerate() {
        if let Some(d) = diff(got, &expected_pick(pick, r, p, count, root)) {
            panic!("{what} rank {r}: {d}");
        }
    }
    assert_eq!(run_fast.mail_pending, 0, "{what}: leaked control messages");
}

/// Fixed corpus: every collective × every algorithm variant, two team
/// shapes (even with an off-center root, odd with root 0).
#[test]
fn fastpath_corpus_all_collectives_all_algos() {
    for pick in 0..6 {
        for var in 0..3 {
            check_equivalent(pick, var, 8, 1024, 2);
            check_equivalent(pick, var, 5, 512, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any collective, any algorithm variant, any small team and message
    /// size: the fast path never changes a single virtual timestamp.
    #[test]
    fn fastpath_equivalent_for_any_point(
        pick in 0usize..6,
        var in 0usize..3,
        p in 2usize..9,
        lanes in 1usize..33,
        rootsel in 0usize..8,
    ) {
        check_equivalent(pick, var, p, lanes * 8, rootsel % p);
    }
}
