//! Pinned accounting invariants of a traced simulated run.
//!
//! The machine layer emits its phase spans with the *same* `f64` values
//! it adds to `RankStats`, in the same order, and the executor records
//! `ScheduleReport` and `step:*` spans through one shared path — so a
//! traced run's events must reproduce both accounting structures
//! **exactly** (bitwise `f64` equality and `==` on the reports, not a
//! tolerance). Any drift between the trace and the accounting is a bug
//! in the single-recording-path invariant.

use kacc_collectives::{gatherv_with_report, scatter, GatherAlgo, ScatterAlgo, ScheduleReport};
use kacc_comm::{Comm, CommExt};
use kacc_machine::run_team_traced;
use kacc_model::ArchProfile;
use kacc_trace::{Breakdown, Event, EventKind, Track};

fn small_arch() -> ArchProfile {
    let mut a = ArchProfile::broadwell();
    a.name = "TraceNode".into();
    a.cores_per_socket = 16;
    a
}

/// Sum the durations of spans named `name` on `track`, in emission order
/// (the order the machine layer accumulated them into `RankStats`).
fn span_sum(events: &[Event], track: Track, name: &str) -> f64 {
    let mut total = 0.0f64;
    for ev in events {
        if ev.track == track && ev.name == name {
            if let EventKind::Span { dur, .. } = ev.kind {
                total += dur;
            }
        }
    }
    total
}

#[test]
fn contended_gather_spans_reproduce_stats_exactly() {
    let p = 12;
    let count = 16 * 4096; // multiple pin batches per transfer
    let root = 0;
    let arch = small_arch();
    let (run, reports, events) = run_team_traced(&arch, p, move |comm| {
        let me = comm.rank();
        let counts = vec![count; p];
        let sb = comm.alloc_with(&vec![me as u8; count]);
        let rb = (me == root).then(|| comm.alloc(p * count));
        gatherv_with_report(
            comm,
            GatherAlgo::ParallelWrite,
            Some(sb),
            rb,
            &counts,
            None,
            root,
        )
        .unwrap()
        .expect("gather ran a schedule")
    });

    // 1. Per-rank phase-span sums are bitwise equal to RankStats.
    for (r, stats) in run.stats.iter().enumerate() {
        let t = Track::Rank(r);
        assert_eq!(
            span_sum(&events, t, "syscall"),
            stats.syscall_ns,
            "rank {r} syscall"
        );
        assert_eq!(
            span_sum(&events, t, "check"),
            stats.check_ns,
            "rank {r} check"
        );
        assert_eq!(span_sum(&events, t, "lock"), stats.lock_ns, "rank {r} lock");
        assert_eq!(span_sum(&events, t, "pin"), stats.pin_ns, "rank {r} pin");
        assert_eq!(span_sum(&events, t, "copy"), stats.copy_ns, "rank {r} copy");
    }

    // 2. The trace covers the whole run: the latest event timestamp is
    // the simulator's virtual end time (the final dispatch of the
    // last-finishing rank happens at its finish time).
    let max_ts = events.iter().map(Event::ts).max().unwrap();
    assert_eq!(max_ts, run.end_ns);

    // 3. The executor's step spans rebuild each rank's ScheduleReport
    // exactly — report and spans flow through one recording path.
    for (r, report) in reports.iter().enumerate() {
        let mine: Vec<Event> = events
            .iter()
            .filter(|ev| ev.track == Track::Rank(r))
            .cloned()
            .collect();
        assert_eq!(
            &ScheduleReport::from_events(&mine),
            report,
            "rank {r} report drifted from its trace"
        );
    }

    // 4. The contended root lock server published queue-depth counters,
    // and the contention actually materialized (depth > 1).
    let depth_peak = events
        .iter()
        .filter(|ev| ev.track == Track::LockServer(root) && ev.name == "queue_depth")
        .filter_map(|ev| match ev.kind {
            EventKind::Counter { value, .. } => Some(value),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    assert!(
        depth_peak > 1.0,
        "parallel-write gather should pile up on the root's lock server, peak {depth_peak}"
    );
}

#[test]
fn contended_scatter_lock_share_grows_superlinearly() {
    // Fig 2 methodology: all-parallel readers pile up on the root's
    // page-lock server, so total lock time grows *faster* than the
    // reader count — the breakdown aggregated from the trace must show
    // the same superlinear trend the paper measures with ftrace.
    let count = 8 * 4096;
    let lock_total = |p: usize| -> f64 {
        let arch = small_arch();
        let (_, _, events) = run_team_traced(&arch, p, move |comm| {
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc_with(&vec![1u8; p * count]));
            let rb = comm.alloc(count);
            scatter(comm, ScatterAlgo::ParallelRead, sb, Some(rb), count, 0).unwrap();
        });
        let b = Breakdown::from_events(&events);
        assert!(b.share("lock") > 0.0, "p={p}: no lock time recorded");
        b.get("lock").map(|s| s.total_ns).unwrap()
    };
    let l4 = lock_total(4);
    let l8 = lock_total(8);
    let l16 = lock_total(16);
    assert!(
        l8 > 2.0 * l4 && l16 > 2.0 * l8,
        "lock time should grow superlinearly with readers: {l4} -> {l8} -> {l16}"
    );
}
