//! Variable-count collectives (MPI_Scatterv / MPI_Gatherv) over the
//! simulated machine.

use kacc_collectives::verify::{contribution, diff};
use kacc_collectives::{gatherv, scatterv, GatherAlgo, ScatterAlgo};
use kacc_comm::{Comm, CommExt};
use kacc_machine::run_team;
use kacc_model::ArchProfile;

/// Rank r contributes/receives `base + 37·r` bytes (rank 2 gets zero to
/// exercise empty slices).
fn counts(p: usize, base: usize) -> Vec<usize> {
    (0..p)
        .map(|r| if r == 2 && p > 2 { 0 } else { base + 37 * r })
        .collect()
}

fn packed(counts: &[usize]) -> Vec<u8> {
    counts
        .iter()
        .enumerate()
        .flat_map(|(r, &len)| contribution(r, len))
        .collect()
}

#[test]
fn scatterv_delivers_ragged_slices() {
    for algo in [
        ScatterAlgo::ParallelRead,
        ScatterAlgo::SequentialWrite,
        ScatterAlgo::ThrottledRead { k: 2 },
    ] {
        for p in [2usize, 6, 9] {
            let cts = counts(p, 1000);
            let root = p - 1;
            let cts2 = cts.clone();
            let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                let me = comm.rank();
                let sb = (me == root).then(|| comm.alloc_with(&packed(&cts2)));
                let rb = comm.alloc(cts2[me].max(1));
                scatterv(comm, algo, sb, Some(rb), &cts2, None, root).unwrap();
                let mut out = vec![0u8; cts2[me]];
                comm.read_local(rb, 0, &mut out).unwrap();
                out
            });
            for (r, got) in results.iter().enumerate() {
                if let Some(d) = diff(got, &contribution(r, cts[r])) {
                    panic!("{algo:?} p={p} rank {r}: {d}");
                }
            }
        }
    }
}

#[test]
fn gatherv_assembles_ragged_slices() {
    for algo in [
        GatherAlgo::ParallelWrite,
        GatherAlgo::SequentialRead,
        GatherAlgo::ThrottledWrite { k: 3 },
    ] {
        for p in [2usize, 7] {
            let cts = counts(p, 800);
            let cts2 = cts.clone();
            let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
                let me = comm.rank();
                let sb = comm.alloc_with(&contribution(me, cts2[me]));
                let total: usize = cts2.iter().sum();
                let rb = (me == 0).then(|| comm.alloc(total));
                gatherv(comm, algo, Some(sb), rb, &cts2, None, 0).unwrap();
                rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
            });
            if let Some(d) = diff(&results[0], &packed(&cts)) {
                panic!("{algo:?} p={p}: {d}");
            }
        }
    }
}

#[test]
fn gatherv_with_explicit_displacements_and_gaps() {
    // Slices placed with 16-byte guard gaps between them; the gaps must
    // stay untouched.
    let p = 5;
    let cts: Vec<usize> = (0..p).map(|r| 100 + r * 10).collect();
    let displs: Vec<usize> = {
        let mut at = 0;
        cts.iter()
            .map(|&c| {
                let here = at;
                at += c + 16;
                here
            })
            .collect()
    };
    let total = displs.last().unwrap() + cts.last().unwrap() + 16;
    let cts2 = cts.clone();
    let displs2 = displs.clone();
    let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
        let me = comm.rank();
        let sb = comm.alloc_with(&contribution(me, cts2[me]));
        let rb = (me == 0).then(|| comm.alloc(total));
        gatherv(
            comm,
            GatherAlgo::ThrottledWrite { k: 2 },
            Some(sb),
            rb,
            &cts2,
            Some(&displs2),
            0,
        )
        .unwrap();
        rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
    });
    let got = &results[0];
    for r in 0..p {
        let slice = &got[displs[r]..displs[r] + cts[r]];
        assert!(diff(slice, &contribution(r, cts[r])).is_none(), "slice {r}");
        // Guard gap after each slice stays zeroed.
        let gap = &got[displs[r] + cts[r]..displs[r] + cts[r] + 16];
        assert!(gap.iter().all(|&b| b == 0), "gap after slice {r} corrupted");
    }
}

#[test]
fn zero_count_ranks_may_omit_buffers() {
    // A rank with a zero-sized slice passes no buffer at all; every
    // algorithm (including the sequential ones, which expose buffers on
    // the non-root side) must tolerate it.
    let p = 5;
    let cts: Vec<usize> = (0..p).map(|r| if r == 3 { 0 } else { 500 }).collect();
    for salgo in [
        ScatterAlgo::ParallelRead,
        ScatterAlgo::SequentialWrite,
        ScatterAlgo::ThrottledRead { k: 2 },
    ] {
        let cts2 = cts.clone();
        let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
            let me = comm.rank();
            let sb = (me == 0).then(|| comm.alloc_with(&packed(&cts2)));
            let rb = (cts2[me] > 0 || me == 0).then(|| comm.alloc(cts2[me].max(1)));
            scatterv(comm, salgo, sb, rb, &cts2, None, 0).unwrap();
            rb.map(|b| {
                let mut out = vec![0u8; cts2[me]];
                comm.read_local(b, 0, &mut out).unwrap();
                out
            })
            .unwrap_or_default()
        });
        for (r, got) in results.iter().enumerate() {
            assert!(
                diff(got, &contribution(r, cts[r])).is_none(),
                "{salgo:?} rank {r}"
            );
        }
    }
    for galgo in [
        GatherAlgo::ParallelWrite,
        GatherAlgo::SequentialRead,
        GatherAlgo::ThrottledWrite { k: 2 },
    ] {
        let cts2 = cts.clone();
        let (_, results) = run_team(&ArchProfile::broadwell(), p, move |comm| {
            let me = comm.rank();
            let sb = (cts2[me] > 0).then(|| comm.alloc_with(&contribution(me, cts2[me])));
            let total: usize = cts2.iter().sum();
            let rb = (me == 0).then(|| comm.alloc(total));
            gatherv(comm, galgo, sb, rb, &cts2, None, 0).unwrap();
            rb.map(|b| comm.read_all(b).unwrap()).unwrap_or_default()
        });
        assert!(diff(&results[0], &packed(&cts)).is_none(), "{galgo:?}");
    }
}

#[test]
fn vcoll_rejects_bad_metadata() {
    let (_, results) = run_team(&ArchProfile::broadwell(), 3, |comm| {
        let sb = comm.alloc(100);
        let rb = comm.alloc(100);
        // counts of the wrong length must fail identically everywhere.
        let bad = scatterv(
            comm,
            ScatterAlgo::ParallelRead,
            Some(sb),
            Some(rb),
            &[10, 20],
            None,
            0,
        )
        .is_err();
        let bad2 = gatherv(
            comm,
            GatherAlgo::ParallelWrite,
            Some(sb),
            Some(rb),
            &[10, 20, 30],
            Some(&[0, 10]),
            0,
        )
        .is_err();
        bad && bad2
    });
    assert!(results.iter().all(|&b| b));
}
