//! Deterministic, seeded fault injection for kacc transports.
//!
//! The paper's premise is that the kernel-assisted (CMA) copy path is the
//! *fragile* fast path: real `process_vm_readv`/`writev` calls can return
//! short counts, `EAGAIN`, `EPERM` (ptrace scope), or `ESRCH` (peer death),
//! and production MPI stacks survive by degrading to the two-copy
//! shared-memory path. This crate injects exactly those failure modes into
//! every kacc transport so the executor's recovery machinery
//! (`kacc-collectives::exec::RecoveryPolicy`) can be exercised
//! deterministically in CI.
//!
//! # Architecture
//!
//! - [`FaultSite`] describes one transport operation about to happen
//!   (initiating rank, peer, operation kind, byte length).
//! - A [`FaultInjector`] maps each site to a [`FaultDecision`]: let it
//!   proceed, truncate it, fail it with a typed [`CommError`], or delay it.
//! - [`FaultHook`] is the transport-side handle, a newtype over
//!   `Option<Arc<dyn FaultInjector>>` mirroring `kacc_trace::Tracer`: the
//!   disabled state costs a single branch per call site and allocates
//!   nothing, which is what keeps the fault-free path bitwise-identical to
//!   a build without the hook (the `recovery_overhead` bench enforces it).
//! - [`FaultPlan`] is the built-in injector: a seed plus an ordered list of
//!   declarative [`FaultRule`]s. Decisions are a pure function of
//!   `(seed, rule index, rank, per-rank op counter)` via a splitmix64 hash,
//!   so a plan replays identically regardless of thread interleaving —
//!   each rank sees its own deterministic fault stream.
//!
//! # Reproducibility
//!
//! `max_triggers` budgets are tracked **per (rule, initiating rank)**. On a
//! nondeterministically-interleaved transport (`ThreadComm`, `NativeComm`) a
//! shared global budget would make *which* rank eats the fault depend on
//! scheduling; per-rank budgets keep every rank's stream independent of the
//! others, so chaos failures reproduce from the printed seed alone.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use kacc_comm::CommError;

/// Transport operation kinds a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Kernel-assisted read from a peer (`process_vm_readv` analogue).
    CmaRead,
    /// Kernel-assisted write to a peer (`process_vm_writev` analogue).
    CmaWrite,
    /// Control-message send.
    CtrlSend,
    /// Control-message receive.
    CtrlRecv,
    /// Two-copy shared-memory data send.
    ShmSend,
    /// Two-copy shared-memory data receive.
    ShmRecv,
    /// Buffer exposure (registration for kernel-assisted access).
    Expose,
    /// Two-copy fallback read used when CMA degrades.
    FallbackRead,
    /// Two-copy fallback write used when CMA degrades.
    FallbackWrite,
}

impl FaultOp {
    /// Every operation kind, in a fixed order (used by `ops=*`).
    pub const ALL: [FaultOp; 9] = [
        FaultOp::CmaRead,
        FaultOp::CmaWrite,
        FaultOp::CtrlSend,
        FaultOp::CtrlRecv,
        FaultOp::ShmSend,
        FaultOp::ShmRecv,
        FaultOp::Expose,
        FaultOp::FallbackRead,
        FaultOp::FallbackWrite,
    ];

    /// Stable lowercase name used by the plan-file format.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::CmaRead => "cma_read",
            FaultOp::CmaWrite => "cma_write",
            FaultOp::CtrlSend => "ctrl_send",
            FaultOp::CtrlRecv => "ctrl_recv",
            FaultOp::ShmSend => "shm_send",
            FaultOp::ShmRecv => "shm_recv",
            FaultOp::Expose => "expose",
            FaultOp::FallbackRead => "fallback_read",
            FaultOp::FallbackWrite => "fallback_write",
        }
    }

    /// Inverse of [`FaultOp::name`].
    pub fn parse(s: &str) -> Option<FaultOp> {
        FaultOp::ALL.into_iter().find(|op| op.name() == s)
    }

    /// True for the kernel-assisted single-copy operations, the only sites
    /// where a partial (resumable) transfer is meaningful.
    pub fn is_cma(self) -> bool {
        matches!(self, FaultOp::CmaRead | FaultOp::CmaWrite)
    }
}

/// One transport operation about to be attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Rank initiating the operation.
    pub rank: usize,
    /// Remote rank involved, if any (the CMA target, message peer, …).
    pub peer: Option<usize>,
    /// Operation kind.
    pub op: FaultOp,
    /// Payload length in bytes (0 for length-less operations).
    pub len: usize,
}

/// What the injector wants done with an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Allow,
    /// Move only `got` bytes (strictly fewer than requested), then report
    /// `CommError::Truncated`. Only meaningful on resumable CMA sites.
    Truncate {
        /// Bytes actually moved before the cut.
        got: usize,
    },
    /// Fail the operation outright with this typed error.
    Fail(CommError),
    /// Delay the operation by `ns` nanoseconds, then proceed normally.
    Delay {
        /// Injected latency in nanoseconds (virtual ns on `SimComm`).
        ns: u64,
    },
}

impl FaultDecision {
    /// Coerce a partial-transfer decision into a transient failure for
    /// sites that cannot resume mid-operation (control messages, exposure,
    /// shared-memory path). `Allow`/`Fail`/`Delay` pass through.
    pub fn no_partial(self) -> FaultDecision {
        match self {
            FaultDecision::Truncate { .. } => {
                FaultDecision::Fail(CommError::Os(11 /* EAGAIN */))
            }
            other => other,
        }
    }
}

/// Maps transport operations to fault decisions. Implementations must be
/// deterministic per rank to keep chaos runs reproducible.
pub trait FaultInjector: Send + Sync {
    /// Decide the fate of one operation. Called once per transport attempt
    /// (retries of a failed operation are new attempts and new sites).
    fn decide(&self, site: &FaultSite) -> FaultDecision;
}

/// Transport-side handle to an optional injector.
///
/// Mirrors `kacc_trace::Tracer`: the disabled state ([`FaultHook::off`],
/// also the `Default`) is a `None`, so every injection site costs one
/// branch and no allocation when faults are off.
#[derive(Clone, Default)]
pub struct FaultHook(Option<Arc<dyn FaultInjector>>);

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "FaultHook(on)"
        } else {
            "FaultHook(off)"
        })
    }
}

impl FaultHook {
    /// A disabled hook: every [`FaultHook::decide`] is a single branch.
    pub fn off() -> Self {
        FaultHook(None)
    }

    /// A hook consulting the given injector.
    pub fn new(injector: Arc<dyn FaultInjector>) -> Self {
        FaultHook(Some(injector))
    }

    /// True when an injector is installed. Use to skip *building* a
    /// `FaultSite` when the construction itself is costly.
    #[inline]
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// Consult the injector; [`FaultDecision::Allow`] when disabled.
    #[inline]
    pub fn decide(&self, site: &FaultSite) -> FaultDecision {
        match &self.0 {
            Some(inj) => inj.decide(site),
            None => FaultDecision::Allow,
        }
    }
}

/// The failure mode a [`FaultRule`] injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut a CMA transfer short: move `len * numer / denom` bytes (clamped
    /// to `len - 1`) and report `Truncated`. On non-CMA sites this is
    /// coerced to a transient `EAGAIN` by the transport.
    Truncate {
        /// Fraction numerator.
        numer: usize,
        /// Fraction denominator (must be nonzero).
        denom: usize,
    },
    /// Fail with `CommError::Os(errno)` — transient, retryable.
    Transient {
        /// The errno to surface (11 = EAGAIN is the classic).
        errno: i32,
    },
    /// Fail with `CommError::PermissionDenied` (exposure revoked / ptrace
    /// scope). Persistent from the executor's point of view: triggers the
    /// CMA→SHM fallback rather than retries.
    PermDenied,
    /// Rank `rank` is dead: every operation initiated by it or targeting
    /// it fails with `CommError::Os(3)` (`ESRCH`). Fires unconditionally
    /// on match — death is not probabilistic.
    PeerDead {
        /// The dead rank.
        rank: usize,
    },
    /// Delay the operation by `ns` nanoseconds, then let it proceed.
    Delay {
        /// Injected latency in nanoseconds.
        ns: u64,
    },
}

/// One declarative injection rule. Empty `ops`/`ranks`/`peers` vectors are
/// wildcards. Rules are evaluated in plan order; the first rule that both
/// matches and fires decides the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation kinds this rule applies to (empty = all).
    pub ops: Vec<FaultOp>,
    /// Initiating ranks this rule applies to (empty = all).
    pub ranks: Vec<usize>,
    /// Peer ranks this rule applies to (empty = all, including no peer).
    pub peers: Vec<usize>,
    /// Firing probability in parts-per-million (1_000_000 = always).
    /// Ignored by [`FaultKind::PeerDead`], which always fires on match.
    pub prob_ppm: u32,
    /// What to inject when the rule fires.
    pub kind: FaultKind,
    /// Cap on firings per initiating rank (`None` = unlimited). Per-rank,
    /// not global, so budgets are schedule-interleaving independent.
    pub max_triggers: Option<u32>,
    /// Activation threshold on the initiating rank's op index: the rule
    /// is inert for a rank's first `after` operations and eligible from
    /// op `after` on. Because each rank has its own deterministic op
    /// stream, this kills (or degrades) a rank *at a seeded virtual
    /// time* — each rank crosses its own threshold independently of the
    /// interleaving. `0` (the default) means active from the start.
    pub after: u64,
}

impl FaultRule {
    /// A rule injecting `kind` with probability `prob` (0.0–1.0) on every
    /// site. Restrict with [`ops`](Self::ops_mask) /
    /// [`ranks`](Self::ranks_mask) / [`peers`](Self::peers_mask) and bound
    /// with [`max`](Self::max).
    pub fn new(kind: FaultKind, prob: f64) -> Self {
        FaultRule {
            ops: Vec::new(),
            ranks: Vec::new(),
            peers: Vec::new(),
            prob_ppm: (prob.clamp(0.0, 1.0) * 1_000_000.0).round() as u32,
            kind,
            max_triggers: None,
            after: 0,
        }
    }

    /// Restrict the rule to these operation kinds.
    pub fn ops_mask(mut self, ops: &[FaultOp]) -> Self {
        self.ops = ops.to_vec();
        self
    }

    /// Restrict the rule to these initiating ranks.
    pub fn ranks_mask(mut self, ranks: &[usize]) -> Self {
        self.ranks = ranks.to_vec();
        self
    }

    /// Restrict the rule to these peer ranks.
    pub fn peers_mask(mut self, peers: &[usize]) -> Self {
        self.peers = peers.to_vec();
        self
    }

    /// Cap firings at `n` per initiating rank.
    pub fn max(mut self, n: u32) -> Self {
        self.max_triggers = Some(n);
        self
    }

    /// Keep the rule inert until the initiating rank's `n`-th operation.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    fn matches(&self, site: &FaultSite) -> bool {
        if !self.ops.is_empty() && !self.ops.contains(&site.op) {
            return false;
        }
        // PeerDead matches by involvement, not by the ranks/peers masks:
        // a dead rank poisons both directions.
        if let FaultKind::PeerDead { rank } = self.kind {
            return site.rank == rank || site.peer == Some(rank);
        }
        if !self.ranks.is_empty() && !self.ranks.contains(&site.rank) {
            return false;
        }
        if !self.peers.is_empty() {
            match site.peer {
                Some(p) => {
                    if !self.peers.contains(&p) {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    fn decision(&self, site: &FaultSite) -> FaultDecision {
        match self.kind {
            FaultKind::Truncate { numer, denom } => {
                if site.len == 0 || denom == 0 {
                    return FaultDecision::Allow;
                }
                let got = (site.len * numer / denom).min(site.len - 1);
                FaultDecision::Truncate { got }
            }
            FaultKind::Transient { errno } => FaultDecision::Fail(CommError::Os(errno)),
            FaultKind::PermDenied => FaultDecision::Fail(CommError::PermissionDenied),
            FaultKind::PeerDead { .. } => FaultDecision::Fail(CommError::Os(3 /* ESRCH */)),
            FaultKind::Delay { ns } => FaultDecision::Delay { ns },
        }
    }
}

#[derive(Default)]
struct PlanCounters {
    /// Per-rank operation index: position of the next op in that rank's
    /// deterministic stream.
    op_idx: HashMap<usize, u64>,
    /// Firings so far, per (rule index, initiating rank).
    triggers: HashMap<(usize, usize), u32>,
}

/// A seeded, declarative fault plan: the built-in [`FaultInjector`].
///
/// Decisions are a pure function of `(seed, rule index, rank, that rank's
/// op counter)`, so two runs over the same per-rank operation sequences
/// fault identically even when ranks interleave differently.
pub struct FaultPlan {
    /// RNG seed; printed by chaos harnesses for reproduction.
    pub seed: u64,
    /// Ordered rules; first match that fires wins.
    pub rules: Vec<FaultRule>,
    counters: Mutex<PlanCounters>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules)
            .finish_non_exhaustive()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn draw_ppm(seed: u64, rule_idx: usize, rank: usize, op_idx: u64) -> u32 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ rule_idx as u64);
    h = splitmix64(h ^ rank as u64);
    h = splitmix64(h ^ op_idx);
    (h % 1_000_000) as u32
}

impl FaultPlan {
    /// An empty plan (no rules — every decision is `Allow`, but the hook
    /// still goes through the full bookkeeping; useful as a zero-cost
    /// control in end-to-end determinism tests).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            counters: Mutex::new(PlanCounters::default()),
        }
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Append a *silent kill* of `rank` at op index `after` (builder
    /// style): every transport operation the rank initiates from its
    /// `after`-th onward fails with `ESRCH`, which is exactly what a
    /// peer observes of a process that died without a goodbye. Because
    /// `after` counts the victim's own operations, the kill can be
    /// scheduled into any phase of a survivable collective — the data
    /// plan, the membership agreement, or a shrink re-execution — which
    /// is what the kill-anywhere chaos corpus uses it for.
    pub fn silent_kill(self, rank: usize, after: u64) -> Self {
        self.rule(
            FaultRule::new(FaultKind::Transient { errno: 3 }, 1.0)
                .ranks_mask(&[rank])
                .after(after),
        )
    }

    /// Wrap this plan in a transport hook.
    pub fn hook(self) -> FaultHook {
        FaultHook::new(Arc::new(self))
    }

    /// Reset op counters and trigger budgets, so the same plan value can
    /// drive a second identical run.
    pub fn reset(&self) {
        let mut c = self.lock();
        c.op_idx.clear();
        c.triggers.clear();
    }

    fn lock(&self) -> MutexGuard<'_, PlanCounters> {
        self.counters.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serialize to the line-based plan-file format accepted by
    /// [`FaultPlan::parse`].
    pub fn format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {}", self.seed);
        for r in &self.rules {
            let _ = write!(out, "rule ops=");
            if r.ops.is_empty() {
                out.push('*');
            } else {
                let names: Vec<&str> = r.ops.iter().map(|o| o.name()).collect();
                out.push_str(&names.join(","));
            }
            let _ = write!(out, " ranks={}", fmt_list(&r.ranks));
            let _ = write!(out, " peers={}", fmt_list(&r.peers));
            let _ = write!(out, " prob={}", r.prob_ppm as f64 / 1_000_000.0);
            if let Some(m) = r.max_triggers {
                let _ = write!(out, " max={m}");
            }
            if r.after > 0 {
                let _ = write!(out, " after={}", r.after);
            }
            match r.kind {
                FaultKind::Truncate { numer, denom } => {
                    let _ = write!(out, " kind=truncate frac={numer}/{denom}");
                }
                FaultKind::Transient { errno } => {
                    let _ = write!(out, " kind=transient errno={errno}");
                }
                FaultKind::PermDenied => {
                    let _ = write!(out, " kind=perm_denied");
                }
                FaultKind::PeerDead { rank } => {
                    let _ = write!(out, " kind=peer_dead rank={rank}");
                }
                FaultKind::Delay { ns } => {
                    let _ = write!(out, " kind=delay ns={ns}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parse the line-based plan-file format:
    ///
    /// ```text
    /// # comment
    /// seed 42
    /// rule ops=cma_read,cma_write ranks=* peers=* prob=0.05 max=2 kind=transient errno=11
    /// rule ops=cma_read ranks=1,3 peers=* prob=1 kind=truncate frac=1/2
    /// rule ops=* ranks=* peers=* prob=0 kind=peer_dead rank=3
    /// ```
    ///
    /// `ops`/`ranks`/`peers` accept `*` or comma lists; `prob` is 0.0–1.0;
    /// `max` (optional) caps firings per initiating rank; `after`
    /// (optional) keeps the rule inert until the initiating rank's N-th
    /// operation — a seeded kill-at-virtual-time switch; `kind` selects
    /// the failure mode with its own parameters (`frac=N/D`, `errno=E`,
    /// `rank=R`, `ns=N`).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut seed: Option<u64> = None;
        let mut rules = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| format!("fault plan line {}: {msg}", lineno + 1);
            if let Some(rest) = line.strip_prefix("seed ") {
                seed = Some(
                    rest.trim()
                        .parse::<u64>()
                        .map_err(|e| err(format!("bad seed: {e}")))?,
                );
            } else if let Some(rest) = line.strip_prefix("rule ") {
                rules.push(parse_rule(rest).map_err(err)?);
            } else {
                return Err(err(format!("unrecognized directive: {line:?}")));
            }
        }
        Ok(FaultPlan {
            seed: seed.ok_or_else(|| "fault plan: missing `seed <n>` line".to_string())?,
            rules,
            counters: Mutex::new(PlanCounters::default()),
        })
    }
}

fn fmt_list(xs: &[usize]) -> String {
    if xs.is_empty() {
        "*".to_string()
    } else {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_usize_list(v: &str, what: &str) -> Result<Vec<usize>, String> {
    if v == "*" {
        return Ok(Vec::new());
    }
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad {what} entry {s:?}: {e}"))
        })
        .collect()
}

fn parse_rule(rest: &str) -> Result<FaultRule, String> {
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for tok in rest.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
        if kv.insert(k, v).is_some() {
            return Err(format!("duplicate key {k:?}"));
        }
    }
    let take = |k: &str| kv.get(k).copied();

    let ops = match take("ops") {
        None | Some("*") => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|s| FaultOp::parse(s.trim()).ok_or_else(|| format!("unknown op {:?}", s.trim())))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let ranks = parse_usize_list(take("ranks").unwrap_or("*"), "rank")?;
    let peers = parse_usize_list(take("peers").unwrap_or("*"), "peer")?;
    let prob: f64 = take("prob")
        .unwrap_or("1")
        .parse()
        .map_err(|e| format!("bad prob: {e}"))?;
    if !(0.0..=1.0).contains(&prob) {
        return Err(format!("prob {prob} outside [0, 1]"));
    }
    let max_triggers = match take("max") {
        None => None,
        Some(v) => Some(v.parse::<u32>().map_err(|e| format!("bad max: {e}"))?),
    };
    let after = match take("after") {
        None => 0,
        Some(v) => v.parse::<u64>().map_err(|e| format!("bad after: {e}"))?,
    };
    let kind = match take("kind").ok_or("missing kind=")? {
        "truncate" => {
            let frac = take("frac").ok_or("truncate needs frac=N/D")?;
            let (n, d) = frac.split_once('/').ok_or("frac must be N/D")?;
            let numer = n.parse::<usize>().map_err(|e| format!("bad frac: {e}"))?;
            let denom = d.parse::<usize>().map_err(|e| format!("bad frac: {e}"))?;
            if denom == 0 {
                return Err("frac denominator must be nonzero".to_string());
            }
            FaultKind::Truncate { numer, denom }
        }
        "transient" => FaultKind::Transient {
            errno: take("errno")
                .unwrap_or("11")
                .parse()
                .map_err(|e| format!("bad errno: {e}"))?,
        },
        "perm_denied" => FaultKind::PermDenied,
        "peer_dead" => FaultKind::PeerDead {
            rank: take("rank")
                .ok_or("peer_dead needs rank=R")?
                .parse()
                .map_err(|e| format!("bad rank: {e}"))?,
        },
        "delay" => FaultKind::Delay {
            ns: take("ns")
                .ok_or("delay needs ns=N")?
                .parse()
                .map_err(|e| format!("bad ns: {e}"))?,
        },
        other => return Err(format!("unknown kind {other:?}")),
    };
    Ok(FaultRule {
        ops,
        ranks,
        peers,
        prob_ppm: (prob * 1_000_000.0).round() as u32,
        kind,
        max_triggers,
        after,
    })
}

impl FaultInjector for FaultPlan {
    fn decide(&self, site: &FaultSite) -> FaultDecision {
        let mut c = self.lock();
        let idx = c.op_idx.entry(site.rank).or_insert(0);
        let op_idx = *idx;
        *idx += 1;
        for (rule_idx, rule) in self.rules.iter().enumerate() {
            if op_idx < rule.after {
                continue;
            }
            if !rule.matches(site) {
                continue;
            }
            // Death is unconditional; everything else rolls the seeded die.
            let fires = matches!(rule.kind, FaultKind::PeerDead { .. })
                || draw_ppm(self.seed, rule_idx, site.rank, op_idx) < rule.prob_ppm;
            if !fires {
                continue;
            }
            if let Some(cap) = rule.max_triggers {
                let n = c.triggers.entry((rule_idx, site.rank)).or_insert(0);
                if *n >= cap {
                    continue;
                }
                *n += 1;
            }
            return rule.decision(site);
        }
        FaultDecision::Allow
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn site(rank: usize, peer: usize, op: FaultOp, len: usize) -> FaultSite {
        FaultSite {
            rank,
            peer: Some(peer),
            op,
            len,
        }
    }

    #[test]
    fn off_hook_always_allows() {
        let h = FaultHook::off();
        assert!(!h.on());
        assert_eq!(
            h.decide(&site(0, 1, FaultOp::CmaRead, 4096)),
            FaultDecision::Allow
        );
        assert_eq!(format!("{h:?}"), "FaultHook(off)");
    }

    #[test]
    fn empty_plan_allows_everything() {
        let h = FaultPlan::new(7).hook();
        assert!(h.on());
        for op in FaultOp::ALL {
            assert_eq!(h.decide(&site(0, 1, op, 64)), FaultDecision::Allow);
        }
    }

    #[test]
    fn per_rank_streams_are_interleaving_independent() {
        // Decisions for rank 0's k-th op must not depend on how many ops
        // other ranks issued in between.
        let mk =
            || FaultPlan::new(42).rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.3));
        let a = mk();
        let b = mk();
        let s0 = site(0, 1, FaultOp::CmaRead, 128);
        let s9 = site(9, 0, FaultOp::CmaWrite, 128);
        // Plan a: rank 0 ops back to back. Plan b: rank 9 noise interleaved.
        let seq_a: Vec<_> = (0..32).map(|_| a.decide(&s0)).collect();
        let mut seq_b = Vec::new();
        for _ in 0..32 {
            for _ in 0..3 {
                let _ = b.decide(&s9);
            }
            seq_b.push(b.decide(&s0));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn seeds_change_the_stream() {
        let p1 = FaultPlan::new(1).rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.5));
        let p2 = FaultPlan::new(2).rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.5));
        let s = site(0, 1, FaultOp::CmaRead, 128);
        let a: Vec<_> = (0..64).map(|_| p1.decide(&s)).collect();
        let b: Vec<_> = (0..64).map(|_| p2.decide(&s)).collect();
        assert_ne!(a, b);
        // And probability is roughly honored.
        let hits = a.iter().filter(|d| **d != FaultDecision::Allow).count();
        assert!((10..=54).contains(&hits), "hits={hits}");
    }

    #[test]
    fn max_triggers_is_per_rank() {
        let p =
            FaultPlan::new(3).rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 1.0).max(2));
        for rank in 0..3 {
            let s = site(rank, (rank + 1) % 3, FaultOp::CtrlSend, 8);
            let fails = (0..10)
                .map(|_| p.decide(&s))
                .filter(|d| *d != FaultDecision::Allow)
                .count();
            assert_eq!(fails, 2, "rank {rank} budget");
        }
    }

    #[test]
    fn truncate_moves_strictly_fewer_bytes() {
        let p = FaultPlan::new(4).rule(
            FaultRule::new(FaultKind::Truncate { numer: 1, denom: 2 }, 1.0)
                .ops_mask(&[FaultOp::CmaRead]),
        );
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CmaRead, 100)),
            FaultDecision::Truncate { got: 50 }
        );
        // len=1 clamps to got=0; len=0 is a no-op.
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CmaRead, 1)),
            FaultDecision::Truncate { got: 0 }
        );
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CmaRead, 0)),
            FaultDecision::Allow
        );
        // Non-matching op untouched.
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CtrlSend, 100)),
            FaultDecision::Allow
        );
        // no_partial coerces for non-resumable sites.
        assert_eq!(
            FaultDecision::Truncate { got: 5 }.no_partial(),
            FaultDecision::Fail(CommError::Os(11))
        );
    }

    #[test]
    fn peer_dead_fires_on_both_directions_unconditionally() {
        let p = FaultPlan::new(5).rule(FaultRule::new(FaultKind::PeerDead { rank: 2 }, 0.0));
        let dead = FaultDecision::Fail(CommError::Os(3));
        assert_eq!(p.decide(&site(2, 0, FaultOp::CtrlSend, 8)), dead);
        assert_eq!(p.decide(&site(0, 2, FaultOp::CmaRead, 64)), dead);
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CmaRead, 64)),
            FaultDecision::Allow
        );
        // Initiator with no peer at all survives.
        let nop = FaultSite {
            rank: 1,
            peer: None,
            op: FaultOp::Expose,
            len: 0,
        };
        assert_eq!(p.decide(&nop), FaultDecision::Allow);
    }

    #[test]
    fn first_matching_firing_rule_wins() {
        let p = FaultPlan::new(6)
            .rule(FaultRule::new(FaultKind::PermDenied, 1.0).ops_mask(&[FaultOp::CmaRead]))
            .rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 1.0));
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CmaRead, 8)),
            FaultDecision::Fail(CommError::PermissionDenied)
        );
        assert_eq!(
            p.decide(&site(0, 1, FaultOp::CtrlSend, 8)),
            FaultDecision::Fail(CommError::Os(11))
        );
    }

    #[test]
    fn reset_replays_identically() {
        let p =
            FaultPlan::new(11).rule(FaultRule::new(FaultKind::Transient { errno: 11 }, 0.4).max(5));
        let s = site(0, 1, FaultOp::ShmSend, 256);
        let a: Vec<_> = (0..40).map(|_| p.decide(&s)).collect();
        p.reset();
        let b: Vec<_> = (0..40).map(|_| p.decide(&s)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn after_threshold_activates_per_rank_streams() {
        let p =
            FaultPlan::new(8).rule(FaultRule::new(FaultKind::Transient { errno: 3 }, 1.0).after(3));
        // Each rank's first three ops pass; from the fourth on, the rule
        // fires unconditionally — independently per rank.
        for rank in 0..2 {
            let s = site(rank, (rank + 1) % 2, FaultOp::CtrlSend, 8);
            for i in 0..6 {
                let d = p.decide(&s);
                if i < 3 {
                    assert_eq!(d, FaultDecision::Allow, "rank {rank} op {i}");
                } else {
                    assert_eq!(
                        d,
                        FaultDecision::Fail(CommError::Os(3)),
                        "rank {rank} op {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn after_round_trips_through_plan_files() {
        let plan = FaultPlan::new(77)
            .rule(FaultRule::new(FaultKind::Transient { errno: 3 }, 1.0).after(12))
            .rule(FaultRule::new(FaultKind::PeerDead { rank: 1 }, 0.0).after(40));
        let text = plan.format();
        assert!(text.contains("after=12"), "missing after in {text}");
        let parsed = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan.rules, parsed.rules);
        assert_eq!(parsed.rules[1].after, 40);
        // Absent `after` defaults to 0 (always active).
        let old = FaultPlan::parse("seed 1\nrule kind=transient errno=11").unwrap();
        assert_eq!(old.rules[0].after, 0);
        assert!(FaultPlan::parse("seed 1\nrule after=x kind=perm_denied").is_err());
    }

    #[test]
    fn parse_format_round_trip() {
        let text = "\
# chaos corpus entry 0
seed 1234

rule ops=cma_read,cma_write ranks=* peers=* prob=0.05 max=2 kind=transient errno=11
rule ops=cma_read ranks=1,3 peers=0 prob=1 kind=truncate frac=1/2
rule ops=* ranks=* peers=* prob=0 kind=peer_dead rank=3
rule ops=ctrl_send ranks=* peers=* prob=0.25 kind=delay ns=5000
rule ops=expose ranks=2 peers=* prob=0.5 kind=perm_denied
";
        let p = FaultPlan::parse(text).unwrap();
        assert_eq!(p.seed, 1234);
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.rules[0].kind, FaultKind::Transient { errno: 11 });
        assert_eq!(p.rules[0].max_triggers, Some(2));
        assert_eq!(p.rules[0].prob_ppm, 50_000);
        assert_eq!(p.rules[1].ranks, vec![1, 3]);
        assert_eq!(p.rules[1].peers, vec![0]);
        assert_eq!(p.rules[3].kind, FaultKind::Delay { ns: 5000 });
        // format -> parse -> same rules.
        let p2 = FaultPlan::parse(&p.format()).unwrap();
        assert_eq!(p.seed, p2.seed);
        assert_eq!(p.rules, p2.rules);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("rule kind=transient").is_err()); // no seed
        assert!(FaultPlan::parse("seed 1\nrule kind=nonsense").is_err());
        assert!(FaultPlan::parse("seed 1\nrule ops=warp_drive kind=transient").is_err());
        assert!(FaultPlan::parse("seed 1\nrule prob=2 kind=transient").is_err());
        assert!(FaultPlan::parse("seed 1\nrule kind=truncate frac=1/0").is_err());
        assert!(FaultPlan::parse("seed 1\nbogus line").is_err());
        assert!(FaultPlan::parse("seed 1\nrule kind=peer_dead").is_err());
        assert!(FaultPlan::parse("seed x").is_err());
    }

    #[test]
    fn op_names_round_trip() {
        for op in FaultOp::ALL {
            assert_eq!(FaultOp::parse(op.name()), Some(op));
        }
        assert_eq!(FaultOp::parse("nope"), None);
        assert!(FaultOp::CmaRead.is_cma());
        assert!(FaultOp::CmaWrite.is_cma());
        assert!(!FaultOp::ShmSend.is_cma());
    }
}
