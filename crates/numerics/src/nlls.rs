//! Levenberg–Marquardt nonlinear least squares.
//!
//! Implements the damped Gauss–Newton iteration of Marquardt (1963) — the
//! same "NLLS algorithm \[22\]" the paper uses to fit its contention factor
//! γ in Fig 5. The Jacobian is computed by central finite differences, so
//! models only need to expose `f(x, params) -> y`.

use crate::matrix::Matrix;

/// Failure modes of the fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NllsError {
    /// Observation arrays disagreed in length or were empty.
    BadInput(String),
    /// The damped normal equations stayed singular even at maximum λ.
    Singular,
    /// The iteration hit `max_iter` without satisfying the tolerances.
    DidNotConverge,
}

impl std::fmt::Display for NllsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NllsError::BadInput(m) => write!(f, "bad NLLS input: {m}"),
            NllsError::Singular => write!(f, "normal equations singular"),
            NllsError::DidNotConverge => write!(f, "NLLS did not converge"),
        }
    }
}

impl std::error::Error for NllsError {}

/// Tuning knobs for [`levenberg_marquardt`].
#[derive(Debug, Clone, Copy)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Stop when the relative reduction of the squared residual falls
    /// below this.
    pub ftol: f64,
    /// Stop when the largest parameter step falls below this.
    pub xtol: f64,
    /// Initial damping factor λ.
    pub lambda0: f64,
    /// Multiplicative λ adjustment.
    pub lambda_scale: f64,
    /// Relative step for finite-difference Jacobians.
    pub fd_step: f64,
}

impl Default for LmOptions {
    fn default() -> LmOptions {
        LmOptions {
            max_iter: 200,
            ftol: 1e-12,
            xtol: 1e-12,
            lambda0: 1e-3,
            lambda_scale: 10.0,
            fd_step: 1e-6,
        }
    }
}

/// Converged fit result.
#[derive(Debug, Clone)]
pub struct LmReport {
    /// Fitted parameters.
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub ssr: f64,
    /// Outer iterations used.
    pub iterations: usize,
}

fn residuals<F: Fn(f64, &[f64]) -> f64>(
    model: &F,
    xs: &[f64],
    ys: &[f64],
    params: &[f64],
) -> Vec<f64> {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| y - model(x, params))
        .collect()
}

fn ssr(res: &[f64]) -> f64 {
    res.iter().map(|r| r * r).sum()
}

/// Fit `params` so that `model(x_i, params) ≈ y_i` in the least-squares
/// sense, starting from `initial`.
pub fn levenberg_marquardt<F: Fn(f64, &[f64]) -> f64>(
    model: F,
    xs: &[f64],
    ys: &[f64],
    initial: &[f64],
    opts: LmOptions,
) -> Result<LmReport, NllsError> {
    if xs.len() != ys.len() {
        return Err(NllsError::BadInput(format!(
            "{} x values but {} y values",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < initial.len() {
        return Err(NllsError::BadInput(format!(
            "{} observations cannot constrain {} parameters",
            xs.len(),
            initial.len()
        )));
    }
    if initial.is_empty() {
        return Err(NllsError::BadInput("no parameters to fit".into()));
    }

    let npar = initial.len();
    let mut params = initial.to_vec();
    let mut res = residuals(&model, xs, ys, &params);
    let mut current_ssr = ssr(&res);
    let mut lambda = opts.lambda0;

    for iter in 1..=opts.max_iter {
        // Jacobian of the residual vector, J[i][j] = d r_i / d p_j, by
        // central differences.
        let mut jac = Matrix::zeros(xs.len(), npar);
        for j in 0..npar {
            let h = opts.fd_step * params[j].abs().max(1e-8);
            let mut plus = params.clone();
            plus[j] += h;
            let mut minus = params.clone();
            minus[j] -= h;
            for (i, &x) in xs.iter().enumerate() {
                let rp = ys[i] - model(x, &plus);
                let rm = ys[i] - model(x, &minus);
                jac[(i, j)] = (rp - rm) / (2.0 * h);
            }
        }

        // Normal equations with Marquardt damping on the diagonal:
        // (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r.
        let jt = jac.transpose();
        let jtj = jt.matmul(&jac);
        let jtr = jt.matmul(&Matrix::col_vec(&res));

        let mut improved = false;
        let mut lambda_tries = 0usize;
        while lambda_tries < 32 {
            let mut damped = jtj.clone();
            for d in 0..npar {
                let diag = jtj[(d, d)];
                damped[(d, d)] = diag + lambda * diag.max(1e-12);
            }
            let Some(delta) = damped.solve(&jtr) else {
                lambda *= opts.lambda_scale;
                lambda_tries += 1;
                continue;
            };
            let trial: Vec<f64> = params
                .iter()
                .enumerate()
                .map(|(j, p)| p - delta[(j, 0)])
                .collect();
            let trial_res = residuals(&model, xs, ys, &trial);
            let trial_ssr = ssr(&trial_res);
            if trial_ssr.is_finite() && trial_ssr < current_ssr {
                let rel_drop = (current_ssr - trial_ssr) / current_ssr.max(1e-300);
                let step = delta.max_abs();
                params = trial;
                res = trial_res;
                current_ssr = trial_ssr;
                lambda = (lambda / opts.lambda_scale).max(1e-12);
                improved = true;
                if rel_drop < opts.ftol || step < opts.xtol {
                    return Ok(LmReport {
                        params,
                        ssr: current_ssr,
                        iterations: iter,
                    });
                }
                break;
            }
            lambda *= opts.lambda_scale;
            lambda_tries += 1;
        }

        if !improved {
            // λ escalated to its ceiling without finding a descent step:
            // treat the current point as converged if the residual is
            // already tiny, otherwise report.
            if current_ssr < 1e-20 {
                return Ok(LmReport {
                    params,
                    ssr: current_ssr,
                    iterations: iter,
                });
            }
            return if lambda_tries >= 32 && current_ssr.is_finite() {
                Ok(LmReport {
                    params,
                    ssr: current_ssr,
                    iterations: iter,
                })
            } else {
                Err(NllsError::Singular)
            };
        }
    }

    Err(NllsError::DidNotConverge)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fits_exponential_decay() {
        // y = a * exp(-b x), a=5, b=0.3.
        let model = |x: f64, p: &[f64]| p[0] * (-p[1] * x).exp();
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.2).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * (-0.3 * x).exp()).collect();
        let fit = levenberg_marquardt(model, &xs, &ys, &[1.0, 1.0], LmOptions::default()).unwrap();
        assert!((fit.params[0] - 5.0).abs() < 1e-6, "a = {}", fit.params[0]);
        assert!((fit.params[1] - 0.3).abs() < 1e-6, "b = {}", fit.params[1]);
    }

    #[test]
    fn fits_paper_style_gamma_curve() {
        // γ(c) = a c² + b c — the reconstructed Table IV functional form.
        let model = |c: f64, p: &[f64]| p[0] * c * c + p[1] * c;
        let cs: Vec<f64> = (1..=64).map(|c| c as f64).collect();
        let ys: Vec<f64> = cs.iter().map(|&c| 0.1 * c * c + 1.6 * c).collect();
        let fit = levenberg_marquardt(model, &cs, &ys, &[0.01, 0.5], LmOptions::default()).unwrap();
        assert!((fit.params[0] - 0.1).abs() < 1e-8);
        assert!((fit.params[1] - 1.6).abs() < 1e-7);
    }

    #[test]
    fn fits_under_noise() {
        let model = |x: f64, p: &[f64]| p[0] * x * x + p[1] * x;
        let xs: Vec<f64> = (1..=80).map(|c| c as f64).collect();
        // Deterministic +-1% multiplicative noise.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (0.05 * x * x + 0.8 * x) * if i % 2 == 0 { 1.01 } else { 0.99 })
            .collect();
        let fit = levenberg_marquardt(model, &xs, &ys, &[1.0, 1.0], LmOptions::default()).unwrap();
        assert!((fit.params[0] - 0.05).abs() < 0.005);
        assert!((fit.params[1] - 0.8).abs() < 0.2);
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let model = |x: f64, p: &[f64]| p[0] * x;
        let err = levenberg_marquardt(model, &[1.0, 2.0], &[1.0], &[1.0], LmOptions::default())
            .unwrap_err();
        assert!(matches!(err, NllsError::BadInput(_)));
    }

    #[test]
    fn rejects_underdetermined_problem() {
        let model = |x: f64, p: &[f64]| p[0] * x + p[1];
        let err = levenberg_marquardt(model, &[1.0], &[1.0], &[1.0, 1.0], LmOptions::default())
            .unwrap_err();
        assert!(matches!(err, NllsError::BadInput(_)));
    }

    #[test]
    fn converges_from_poor_start() {
        let model = |x: f64, p: &[f64]| p[0] * x * x + p[1] * x;
        let xs: Vec<f64> = (1..=32).map(|c| c as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&c| 0.04 * c * c + 0.4 * c).collect();
        let fit =
            levenberg_marquardt(model, &xs, &ys, &[100.0, -50.0], LmOptions::default()).unwrap();
        assert!((fit.params[0] - 0.04).abs() < 1e-6);
        assert!((fit.params[1] - 0.4).abs() < 1e-5);
    }
}
