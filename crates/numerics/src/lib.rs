#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! From-scratch numerical routines for kacc.
//!
//! The paper determines its contention factor γ "using the nonlinear
//! least-squares (NLLS) algorithm" of Marquardt (Fig 5, \[22\]). This crate
//! provides everything that fitting pipeline needs without external
//! numerical dependencies:
//!
//! * [`matrix`] — small dense row-major matrices with LU decomposition,
//! * [`lls`] — linear least squares via normal equations,
//! * [`nlls`] — Levenberg–Marquardt with numeric or analytic Jacobians,
//! * [`poly`] — polynomial models and fitting,
//! * [`stats`] — descriptive statistics used by the bench harness.

pub mod lls;
pub mod matrix;
pub mod nlls;
pub mod poly;
pub mod stats;

pub use lls::lstsq;
pub use matrix::Matrix;
pub use nlls::{levenberg_marquardt, LmOptions, LmReport, NllsError};
pub use poly::Polynomial;
