//! Small dense row-major matrices with partially pivoted LU solves.
//!
//! Sized for the fitting problems in this workspace (a handful of
//! parameters, hundreds of observations); no attempt is made at blocked
//! or SIMD kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major nested slice.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Build a column vector.
    pub fn col_vec(v: &[f64]) -> Matrix {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// `self + scale * rhs` (same shape).
    pub fn add_scaled(&self, rhs: &Matrix, scale: f64) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + scale * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Solve `self * x = b` for a square system via LU with partial
    /// pivoting. Returns `None` if the matrix is singular to working
    /// precision.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.rows, self.rows, "rhs shape mismatch");
        let n = self.rows;
        let mut lu = self.clone();
        let mut x = b.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, lu[(r, col)].abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))?;
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let (a, b2) = (lu[(col, j)], lu[(pivot_row, j)]);
                    lu[(col, j)] = b2;
                    lu[(pivot_row, j)] = a;
                }
                for j in 0..x.cols {
                    let (a, b2) = (x[(col, j)], x[(pivot_row, j)]);
                    x[(col, j)] = b2;
                    x[(pivot_row, j)] = a;
                }
                perm.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in col + 1..n {
                let f = lu[(r, col)] / lu[(col, col)];
                if f == 0.0 {
                    continue;
                }
                lu[(r, col)] = 0.0;
                for j in col + 1..n {
                    lu[(r, j)] -= f * lu[(col, j)];
                }
                for j in 0..x.cols {
                    x[(r, j)] -= f * x[(col, j)];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            for j in 0..x.cols {
                let mut acc = x[(col, j)];
                for k in col + 1..n {
                    acc -= lu[(col, k)] * x[(k, j)];
                }
                x[(col, j)] = acc / lu[(col, col)];
            }
        }
        Some(x)
    }

    /// Flat view of the underlying data (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Maximum absolute entry (for convergence checks).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i = Matrix::identity(3);
        let b = Matrix::col_vec(&[1.0, -2.0, 3.5]);
        assert_eq!(i.solve(&b).unwrap(), b);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] => x = [1; 3]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::col_vec(&[5.0, 10.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::col_vec(&[2.0, 7.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 7.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::col_vec(&[1.0, 2.0]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn solve_random_systems_reconstruct_rhs() {
        // Deterministic pseudo-random fill; verify A*x ≈ b.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for n in 1..8 {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += 2.0; // keep well-conditioned
            }
            let b = Matrix::col_vec(&(0..n).map(|_| next()).collect::<Vec<_>>());
            let x = a.solve(&b).unwrap();
            let r = a.matmul(&x).add_scaled(&b, -1.0);
            assert!(r.max_abs() < 1e-10, "residual too large for n={n}");
        }
    }
}
