//! Linear least squares via normal equations.

use crate::matrix::Matrix;

/// Solve `min_x ||A x - b||₂` through the normal equations
/// `(AᵀA) x = Aᵀ b`. Adequate for the small, well-conditioned design
/// matrices produced by the model-extraction experiments. Returns `None`
/// if `AᵀA` is singular (rank-deficient design).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), b.len(), "observation count mismatch");
    let at = a.transpose();
    let ata = at.matmul(a);
    let atb = at.matmul(&Matrix::col_vec(b));
    let x = ata.solve(&atb)?;
    Some(x.as_slice().to_vec())
}

/// Fit `y ≈ m·x + c`, returning `(m, c)`.
pub fn fit_line(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    assert_eq!(x.len(), y.len());
    let mut a = Matrix::zeros(x.len(), 2);
    for (i, &xi) in x.iter().enumerate() {
        a[(i, 0)] = xi;
        a[(i, 1)] = 1.0;
    }
    let sol = lstsq(&a, y)?;
    Some((sol[0], sol[1]))
}

/// Coefficient of determination R² for predictions vs observations.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len());
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, f)| (y - f).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_coefficients() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 2.0).collect();
        let (m, c) = fit_line(&x, &y).unwrap();
        assert!((m - 3.0).abs() < 1e-10);
        assert!((c + 2.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_line_recovers_coefficients_approximately() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * v + 7.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let (m, c) = fit_line(&x, &y).unwrap();
        assert!((m - 0.5).abs() < 0.01);
        assert!((c - 7.0).abs() < 0.2);
    }

    #[test]
    fn quadratic_design_matrix() {
        // y = 2x² + 3x + 1 fitted with columns [x², x, 1].
        let xs: Vec<f64> = (1..20).map(|i| i as f64 / 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x * x + 3.0 * x + 1.0).collect();
        let mut a = Matrix::zeros(xs.len(), 3);
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = x * x;
            a[(i, 1)] = x;
            a[(i, 2)] = 1.0;
        }
        let sol = lstsq(&a, &ys).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-8);
        assert!((sol[1] - 3.0).abs() < 1e-8);
        assert!((sol[2] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn rank_deficient_design_returns_none() {
        // Two identical columns.
        let mut a = Matrix::zeros(5, 2);
        for i in 0..5 {
            a[(i, 0)] = i as f64;
            a[(i, 1)] = i as f64;
        }
        let y = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert!(lstsq(&a, &y).is_none());
    }

    #[test]
    fn r_squared_perfect_and_flat() {
        assert!((r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        let r = r_squared(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]);
        assert!(r <= 0.0 + 1e-12);
    }
}
