//! Descriptive statistics used by the bench harness and model fits.

/// Arithmetic mean. Returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of positive values. Returns `None` if the input is
/// empty or contains non-positive values. Used for speedup aggregation.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Population standard deviation. Returns `None` for empty input.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Linear-interpolated percentile, `q` in [0, 100]. Returns `None` for
/// empty input.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Max / min ratio, used for "up to Nx improvement" summaries.
pub fn max_speedup(baseline: &[f64], ours: &[f64]) -> Option<f64> {
    assert_eq!(baseline.len(), ours.len());
    baseline
        .iter()
        .zip(ours)
        .filter(|(_, &o)| o > 0.0)
        .map(|(&b, &o)| b / o)
        .max_by(|a, b| a.total_cmp(b))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((stddev(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 10.0, 100.0]).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[1.0, -1.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!((median(&xs).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), Some(5.0));
    }

    #[test]
    fn speedup_picks_best_point() {
        let base = [100.0, 50.0, 10.0];
        let ours = [2.0, 25.0, 10.0];
        assert_eq!(max_speedup(&base, &ours), Some(50.0));
    }
}
