//! Polynomial models over `f64`.

use crate::lls::lstsq;
use crate::matrix::Matrix;

/// Polynomial with coefficients in ascending degree order:
/// `coeffs[k]` multiplies `x^k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build from ascending-degree coefficients. Trailing zeros are kept
    /// (degree is structural, not numerical).
    pub fn new(coeffs: Vec<f64>) -> Polynomial {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// Coefficients, ascending degree.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Structural degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluate with Horner's scheme.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Least-squares fit of a degree-`degree` polynomial to `(x, y)`
    /// pairs. Returns `None` when the design matrix is rank-deficient
    /// (e.g. fewer distinct x values than coefficients).
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Option<Polynomial> {
        assert_eq!(xs.len(), ys.len());
        if xs.len() < degree + 1 {
            return None;
        }
        let mut a = Matrix::zeros(xs.len(), degree + 1);
        for (i, &x) in xs.iter().enumerate() {
            let mut pow = 1.0;
            for j in 0..=degree {
                a[(i, j)] = pow;
                pow *= x;
            }
        }
        lstsq(&a, ys).map(Polynomial::new)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn horner_matches_naive() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0]);
        for x in [-2.0f64, -0.5, 0.0, 1.0, 2.5] {
            let naive: f64 = p
                .coeffs()
                .iter()
                .enumerate()
                .map(|(k, c)| c * x.powi(k as i32))
                .sum();
            assert!((p.eval(x) - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_recovers_exact_cubic() {
        let truth = Polynomial::new(vec![2.0, -1.0, 0.25, 0.125]);
        let xs: Vec<f64> = (-10..=10).map(|i| i as f64 / 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, 3).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fit_underdetermined_returns_none() {
        assert!(Polynomial::fit(&[1.0, 2.0], &[1.0, 2.0], 3).is_none());
    }

    #[test]
    fn fit_duplicate_xs_is_rank_deficient() {
        let xs = vec![2.0; 10];
        let ys = vec![4.0; 10];
        assert!(Polynomial::fit(&xs, &ys, 2).is_none());
    }
}
