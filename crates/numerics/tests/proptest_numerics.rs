//! Property-based tests for the numerics substrate.

use kacc_numerics::lls::{fit_line, r_squared};
use kacc_numerics::nlls::{levenberg_marquardt, LmOptions};
use kacc_numerics::{lstsq, Matrix, Polynomial};
use proptest::prelude::*;

fn well_conditioned_matrix(n: usize, vals: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = vals[i * n + j];
        }
        // Diagonal dominance keeps the system solvable.
        m[(i, i)] += n as f64;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lu_solve_reconstructs_rhs(
        n in 1usize..7,
        vals in proptest::collection::vec(-1.0f64..1.0, 49),
        seed in proptest::collection::vec(-10.0f64..10.0, 7),
    ) {
        let a = well_conditioned_matrix(n, &vals);
        let b = Matrix::col_vec(&seed[..n]);
        let x = a.solve(&b).expect("diagonally dominant systems solve");
        let residual = a.matmul(&x).add_scaled(&b, -1.0);
        prop_assert!(residual.max_abs() < 1e-8, "residual {}", residual.max_abs());
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..6, cols in 1usize..6, fill in -100.0f64..100.0) {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = fill * (i as f64 + 1.0) / (j as f64 + 1.0);
            }
        }
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn line_fit_recovers_exact_lines(
        m in -50.0f64..50.0,
        c in -50.0f64..50.0,
        n in 3usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| m * x + c).collect();
        let (fm, fc) = fit_line(&xs, &ys).unwrap();
        prop_assert!((fm - m).abs() < 1e-6 * (1.0 + m.abs()), "m {fm} vs {m}");
        prop_assert!((fc - c).abs() < 1e-5 * (1.0 + c.abs()), "c {fc} vs {c}");
        let fitted: Vec<f64> = xs.iter().map(|x| fm * x + fc).collect();
        prop_assert!(r_squared(&ys, &fitted) > 1.0 - 1e-9);
    }

    #[test]
    fn polynomial_fit_is_exact_on_polynomial_data(
        coeffs in proptest::collection::vec(-5.0f64..5.0, 1..5),
    ) {
        let truth = Polynomial::new(coeffs);
        let deg = truth.degree();
        let xs: Vec<f64> = (0..(3 * (deg + 1))).map(|i| i as f64 / 2.0 - 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = Polynomial::fit(&xs, &ys, deg).unwrap();
        for (a, b) in fit.coeffs().iter().zip(truth.coeffs()) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn nlls_recovers_gamma_quadratics_under_noise(
        a in 0.01f64..0.5,
        b in 0.1f64..3.0,
        noise in 0.0f64..0.02,
    ) {
        let model = |c: f64, p: &[f64]| p[0] * c * c + p[1] * c;
        let cs: Vec<f64> = (1..=64).map(|c| c as f64).collect();
        let ys: Vec<f64> = cs
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let wobble = if i % 2 == 0 { 1.0 + noise } else { 1.0 - noise };
                (a * c * c + b * c) * wobble
            })
            .collect();
        let fit = levenberg_marquardt(model, &cs, &ys, &[1.0, 1.0], LmOptions::default())
            .expect("fit converges");
        prop_assert!((fit.params[0] - a).abs() < 10.0 * noise * a + 1e-6,
            "a {} vs {a}", fit.params[0]);
        prop_assert!((fit.params[1] - b).abs() < 50.0 * noise * b + 1e-4,
            "b {} vs {b}", fit.params[1]);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        ys in proptest::collection::vec(-10.0f64..10.0, 12),
    ) {
        // Normal-equation property: Aᵀ(Ax − y) = 0.
        let mut a = Matrix::zeros(12, 3);
        for i in 0..12 {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = i as f64;
            a[(i, 2)] = (i as f64).sin();
        }
        let x = lstsq(&a, &ys).unwrap();
        let fitted = a.matmul(&Matrix::col_vec(&x));
        let resid = fitted.add_scaled(&Matrix::col_vec(&ys), -1.0);
        let ortho = a.transpose().matmul(&resid);
        prop_assert!(ortho.max_abs() < 1e-8, "orthogonality violated: {}", ortho.max_abs());
    }
}
