//! Reusable virtual-time mailboxes for simulated machines.
//!
//! A [`Mailboxes`] value lives inside the simulation's shared state `S`.
//! Senders deposit messages with an *arrival time* (send time + modeled
//! latency); receivers block until a matching message has arrived in
//! virtual time. Matching is FIFO per `(to, from, tag)` key, mirroring
//! MPI-style ordered channels.
//!
//! Use from a [`crate::Ctx::poll`] closure:
//!
//! ```ignore
//! // send (non-blocking):
//! ctx.poll("send", |s, w, now| {
//!     s.mail.deposit(w, to, from, tag, now + latency, payload.clone());
//!     Poll::Ready(())
//! });
//! // receive (blocking):
//! let msg = ctx.poll("recv", |s, w, now| s.mail.take(ctx.tid(), to, from, tag, now));
//! ```

use crate::{Poll, SimTime, Waker};
use std::collections::{HashMap, VecDeque};

type Key = (usize, usize, u64); // (to, from, tag)

/// FIFO virtual-time mailboxes keyed by `(to, from, tag)`.
#[derive(Debug, Default)]
pub struct Mailboxes {
    queues: HashMap<Key, VecDeque<(SimTime, Vec<u8>)>>,
    waiters: HashMap<Key, usize>,
    /// Total messages ever deposited (observability/testing).
    pub deposited: u64,
    /// Total messages ever delivered.
    pub delivered: u64,
}

impl Mailboxes {
    /// Create an empty mailbox set.
    pub fn new() -> Mailboxes {
        Mailboxes::default()
    }

    /// Deposit a message arriving at `arrival`. If a receiver is already
    /// parked on the key, schedule its wake at the arrival time.
    pub fn deposit(
        &mut self,
        waker: &mut Waker,
        to: usize,
        from: usize,
        tag: u64,
        arrival: SimTime,
        payload: Vec<u8>,
    ) {
        let key = (to, from, tag);
        self.queues
            .entry(key)
            .or_default()
            .push_back((arrival, payload));
        self.deposited += 1;
        if let Some(&tid) = self.waiters.get(&key) {
            waker.wake_at(tid, arrival);
        }
    }

    /// Poll-step for a receiver thread `tid`: returns `Ready(payload)`
    /// once the head message for the key has arrived, otherwise blocks
    /// (with a timer if the head message is in flight).
    ///
    /// Panics if two threads wait on the same key simultaneously — that
    /// would make matching nondeterministic, and no kacc protocol does it.
    pub fn take(
        &mut self,
        tid: usize,
        to: usize,
        from: usize,
        tag: u64,
        now: SimTime,
    ) -> Poll<Vec<u8>> {
        let key = (to, from, tag);
        // Peek the head's arrival without cloning the payload (bulk
        // messages can be megabytes).
        match self
            .queues
            .get_mut(&key)
            .and_then(|q| q.front().map(|(a, _)| *a))
        {
            Some(arrival) if arrival <= now => {
                let (_, payload) = self
                    .queues
                    .get_mut(&key)
                    .and_then(|q| q.pop_front())
                    .expect("peeked head exists");
                self.waiters.remove(&key);
                self.delivered += 1;
                Poll::Ready(payload)
            }
            Some(arrival) => {
                self.register(key, tid);
                Poll::Wait {
                    wake_at: Some(arrival),
                }
            }
            None => {
                self.register(key, tid);
                Poll::Wait { wake_at: None }
            }
        }
    }

    fn register(&mut self, key: Key, tid: usize) {
        if let Some(&prev) = self.waiters.get(&key) {
            assert_eq!(
                prev, tid,
                "two threads ({prev} and {tid}) waiting on mailbox {key:?}"
            );
        } else {
            self.waiters.insert(key, tid);
        }
    }

    /// Withdraw `tid`'s wait registration on a key without consuming a
    /// message. Deadline receives use this when they give up: leaving the
    /// registration behind would make a later deposit wake (or a future
    /// `register` assert against) a thread that is no longer waiting.
    pub fn unregister(&mut self, to: usize, from: usize, tag: u64, tid: usize) {
        let key = (to, from, tag);
        if self.waiters.get(&key) == Some(&tid) {
            self.waiters.remove(&key);
        }
    }

    /// Number of undelivered messages across all queues (leak checking).
    pub fn pending(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;

    #[test]
    fn message_latency_is_respected() {
        let mut sim = Sim::new(Mailboxes::new());
        // Sender: deposits at t=10 with 25ns latency.
        sim.spawn(|ctx| {
            ctx.advance(10);
            ctx.poll("send", |m: &mut Mailboxes, w, now| {
                m.deposit(w, 1, 0, 7, now + 25, b"hi".to_vec());
                Poll::Ready(())
            });
        });
        sim.spawn(|ctx| {
            let tid = ctx.tid();
            let msg = ctx.poll("recv", move |m: &mut Mailboxes, _w, now| {
                m.take(tid, 1, 0, 7, now)
            });
            assert_eq!(msg, b"hi");
            assert_eq!(ctx.now(), 35);
        });
        let r = sim.run();
        assert_eq!(r.state.pending(), 0);
        assert_eq!(r.state.delivered, 1);
    }

    #[test]
    fn late_receiver_gets_message_immediately() {
        let mut sim = Sim::new(Mailboxes::new());
        sim.spawn(|ctx| {
            ctx.poll("send", |m: &mut Mailboxes, w, now| {
                m.deposit(w, 1, 0, 0, now + 5, vec![42]);
                Poll::Ready(())
            });
        });
        sim.spawn(|ctx| {
            ctx.advance(1000);
            let tid = ctx.tid();
            let msg = ctx.poll("recv", move |m: &mut Mailboxes, _w, now| {
                m.take(tid, 1, 0, 0, now)
            });
            assert_eq!(msg, vec![42]);
            assert_eq!(
                ctx.now(),
                1000,
                "no extra wait when message already arrived"
            );
        });
        sim.run();
    }

    #[test]
    fn fifo_order_per_key() {
        let mut sim = Sim::new(Mailboxes::new());
        sim.spawn(|ctx| {
            for i in 0..5u8 {
                ctx.poll("send", move |m: &mut Mailboxes, w, now| {
                    m.deposit(w, 1, 0, 3, now + 10, vec![i]);
                    Poll::Ready(())
                });
                ctx.advance(1);
            }
        });
        sim.spawn(|ctx| {
            let tid = ctx.tid();
            for i in 0..5u8 {
                let msg = ctx.poll("recv", move |m: &mut Mailboxes, _w, now| {
                    m.take(tid, 1, 0, 3, now)
                });
                assert_eq!(msg, vec![i]);
            }
        });
        sim.run();
    }
}
