#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel with cooperative rank
//! threads.
//!
//! Simulated processes are ordinary blocking Rust closures, each running on
//! its own OS thread. The kernel enforces that **exactly one thread runs at
//! a time** and hands control between threads according to a virtual-time
//! event heap with a global sequence-number tie-break, so every run over
//! the same program is bit-for-bit deterministic regardless of host
//! scheduling.
//!
//! The kernel is generic over a user state type `S` (the simulated
//! machine). Threads interact with `S` and with virtual time through
//! [`Ctx::poll`]: a closure that atomically inspects/mutates the shared
//! state and either completes or blocks with an optional timer. On every
//! wake-up — timer expiry or an explicit [`Waker::wake_at`] from another
//! thread — the closure re-evaluates, which makes stale-event races
//! impossible by construction: a wake that arrives too early simply
//! re-blocks.
//!
//! This "re-check on wake" protocol is what lets `kacc-machine` implement
//! fluid processor-sharing servers (the page-lock server, the memory
//! system) whose completion times shift whenever flows join or leave.

pub mod mailbox;

pub use mailbox::Mailboxes;

// Scheduler dispatches are emitted as `kacc_trace` instant events; re-export
// the pieces callers need to consume a captured dispatch trace.
pub use kacc_trace::{chrome_trace_json, Event as TraceEvent, SharedBuffer, Tracer};

use kacc_trace::Track;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// Result of one evaluation of a [`Ctx::poll`] closure.
pub enum Poll<T> {
    /// The operation completed with this value.
    Ready(T),
    /// Block. If `wake_at` is `Some(t)`, schedule a self-wake at virtual
    /// time `t` (clamped to now); otherwise wait for an external
    /// [`Waker::wake_at`].
    Wait {
        /// Optional timer for the blocking thread.
        wake_at: Option<SimTime>,
    },
}

/// Handle other threads' wake-ups from inside a poll closure.
///
/// Any state change that can move another thread's completion time
/// *earlier* must push a fresh wake for it; wakes that turn out premature
/// are harmless (the woken closure re-blocks).
pub struct Waker {
    pending: Vec<(usize, SimTime)>,
}

impl Waker {
    /// Schedule thread `tid` to re-evaluate its poll closure at virtual
    /// time `at` (clamped to the current time if in the past).
    pub fn wake_at(&mut self, tid: usize, at: SimTime) {
        self.pending.push((tid, at));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadPhase {
    /// Not yet given the floor for the first time.
    Starting,
    /// Currently holds the floor.
    Running,
    /// Parked inside a poll.
    Parked,
    /// User closure returned.
    Finished,
}

struct ThreadSlot {
    phase: ThreadPhase,
    /// Wake-token epoch; events carry the epoch they were issued for and
    /// are discarded if the thread has re-parked since.
    epoch: u64,
    /// Floor-transfer flag, protected by the kernel mutex.
    go: bool,
    /// What the thread is blocked on (for deadlock dumps).
    label: &'static str,
    finish_time: Option<SimTime>,
}

struct KernelState<S> {
    now: SimTime,
    seq: u64,
    /// Min-heap of (time, seq, tid, epoch).
    events: BinaryHeap<Reverse<(SimTime, u64, usize, u64)>>,
    threads: Vec<ThreadSlot>,
    live: usize,
    user: S,
    panic_msg: Option<String>,
    all_done: bool,
    /// Destination for scheduler-dispatch instant events; `Tracer::off()`
    /// unless tracing was requested.
    tracer: Tracer,
}

struct Kernel<S> {
    state: Mutex<KernelState<S>>,
    /// One condvar per thread plus one (last) for `run()`.
    cvs: Vec<Condvar>,
}

impl<S> Kernel<S> {
    /// Push an event, bumping the global sequence counter.
    fn push_event(st: &mut KernelState<S>, at: SimTime, tid: usize, epoch: u64) {
        let t = at.max(st.now);
        st.seq += 1;
        let seq = st.seq;
        st.events.push(Reverse((t, seq, tid, epoch)));
    }

    /// Pick the next runnable thread, advance the clock, and transfer the
    /// floor. Must be called by a thread that no longer holds the floor.
    fn dispatch(&self, st: &mut KernelState<S>) {
        loop {
            let Some(&Reverse((t, _seq, tid, epoch))) = st.events.peek() else {
                // No events: either everything finished, or deadlock.
                if st.live == 0 {
                    st.all_done = true;
                    self.cvs[st.threads.len()].notify_all();
                    return;
                }
                let dump: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.phase != ThreadPhase::Finished)
                    .map(|(i, s)| format!("  thread {i}: {:?} on '{}'", s.phase, s.label))
                    .collect();
                st.panic_msg = Some(format!(
                    "simulation deadlock at t={}ns: {} live thread(s) blocked with no pending events\n{}",
                    st.now,
                    st.live,
                    dump.join("\n")
                ));
                st.all_done = true;
                self.cvs[st.threads.len()].notify_all();
                // Wake everyone so parked threads can observe the abort.
                for cv in &self.cvs {
                    cv.notify_all();
                }
                return;
            };
            st.events.pop();
            let slot = &mut st.threads[tid];
            // Discard stale wakes (thread re-parked or finished since).
            if slot.phase == ThreadPhase::Finished || slot.epoch != epoch {
                continue;
            }
            debug_assert!(t >= st.now, "event heap went backwards");
            st.now = t;
            slot.go = true;
            // The tracer's sink lock is a leaf lock taken strictly under the
            // kernel mutex, so this cannot deadlock; disabled tracing is a
            // single branch.
            st.tracer.instant(Track::Rank(tid), slot.label, t);
            self.cvs[tid].notify_one();
            return;
        }
    }
}

/// Per-thread context handed to simulated-process closures.
pub struct Ctx<S: Send + 'static> {
    kernel: Arc<Kernel<S>>,
    tid: usize,
}

impl<S: Send + 'static> Clone for Ctx<S> {
    fn clone(&self) -> Self {
        Ctx {
            kernel: Arc::clone(&self.kernel),
            tid: self.tid,
        }
    }
}

impl<S: Send + 'static> Ctx<S> {
    /// Index of this simulated thread (spawn order).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// Charge `dt` nanoseconds of virtual time to this thread.
    pub fn advance(&self, dt: SimTime) {
        let mut deadline = None;
        self.poll("advance", move |_s, _w, now| {
            let d = *deadline.get_or_insert(now + dt);
            if now >= d {
                Poll::Ready(())
            } else {
                Poll::Wait { wake_at: Some(d) }
            }
        })
    }

    /// Run `f` atomically against the shared state. Non-blocking: `f`
    /// executes exactly once while this thread holds the floor.
    pub fn with_state<T>(&self, f: impl FnOnce(&mut S, SimTime) -> T) -> T {
        let mut guard = self.kernel.state.lock();
        let st = &mut *guard;
        f(&mut st.user, st.now)
    }

    /// The core blocking primitive; see the module docs. `label` appears
    /// in deadlock dumps.
    pub fn poll<T>(
        &self,
        label: &'static str,
        mut f: impl FnMut(&mut S, &mut Waker, SimTime) -> Poll<T>,
    ) -> T {
        let kernel = &*self.kernel;
        let mut guard = kernel.state.lock();
        loop {
            if guard.panic_msg.is_some() {
                let msg = guard.panic_msg.clone().unwrap();
                drop(guard);
                panic!("simulation aborted: {msg}");
            }
            let mut waker = Waker {
                pending: Vec::new(),
            };
            let now = guard.now;
            let st = &mut *guard;
            let outcome = f(&mut st.user, &mut waker, now);
            // Apply wakes requested for other threads: bump-free — they
            // target the *current* epoch of each thread.
            for (tid, at) in waker.pending {
                let epoch = st.threads[tid].epoch;
                Kernel::push_event(st, at, tid, epoch);
            }
            match outcome {
                Poll::Ready(v) => return v,
                Poll::Wait { wake_at } => {
                    let tid = self.tid;
                    st.threads[tid].epoch += 1;
                    st.threads[tid].phase = ThreadPhase::Parked;
                    st.threads[tid].label = label;
                    let epoch = st.threads[tid].epoch;
                    if let Some(at) = wake_at {
                        Kernel::push_event(st, at, tid, epoch);
                    }
                    kernel.dispatch(st);
                    // Park until handed the floor again.
                    while !guard.threads[self.tid].go {
                        if guard.panic_msg.is_some() {
                            let msg = guard.panic_msg.clone().unwrap();
                            drop(guard);
                            panic!("simulation aborted: {msg}");
                        }
                        kernel.cvs[self.tid].wait(&mut guard);
                    }
                    guard.threads[self.tid].go = false;
                    guard.threads[self.tid].phase = ThreadPhase::Running;
                }
            }
        }
    }
}

/// Outcome of a completed simulation.
pub struct RunReport<S> {
    /// Final shared state.
    pub state: S,
    /// Virtual time when the last thread finished.
    pub end_time: SimTime,
    /// Per-thread finish times, indexed by tid.
    pub finish_times: Vec<SimTime>,
    /// Dispatch trace, when enabled with [`Sim::enable_trace`]. Empty when
    /// an external tracer was installed with [`Sim::set_tracer`] instead
    /// (events flow to that tracer's sink).
    pub trace: Vec<TraceEvent>,
}

/// A simulation under construction: create, spawn threads, run.
pub struct Sim<S: Send + 'static> {
    state: Option<S>,
    pending: Vec<Box<dyn FnOnce(Ctx<S>) + Send + 'static>>,
    tracer: Tracer,
    capture: Option<SharedBuffer>,
}

impl<S: Send + 'static> Sim<S> {
    /// Create a simulation owning the shared machine state.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            state: Some(state),
            pending: Vec::new(),
            tracer: Tracer::off(),
            capture: None,
        }
    }

    /// Record every scheduler dispatch into [`RunReport::trace`]
    /// (observability/debugging; costs memory proportional to events).
    pub fn enable_trace(&mut self) {
        let (tracer, buf) = Tracer::buffered();
        self.tracer = tracer;
        self.capture = Some(buf);
    }

    /// Send scheduler-dispatch events to an external [`Tracer`] (shared
    /// with other layers, e.g. the machine model). [`RunReport::trace`]
    /// stays empty; the caller owns the sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.capture = None;
    }

    /// Register a simulated thread. Threads receive the floor in spawn
    /// order at t=0. Returns the thread's tid.
    pub fn spawn(&mut self, f: impl FnOnce(Ctx<S>) + Send + 'static) -> usize {
        let tid = self.pending.len();
        self.pending.push(Box::new(f));
        tid
    }

    /// Run the simulation to completion, returning the final state and
    /// timing report. Panics (with the failing thread's message) if any
    /// simulated thread panicked or the simulation deadlocked.
    pub fn run(mut self) -> RunReport<S> {
        let n = self.pending.len();
        let kernel = Arc::new(Kernel {
            state: Mutex::new(KernelState {
                now: 0,
                seq: 0,
                events: BinaryHeap::new(),
                threads: (0..n)
                    .map(|_| ThreadSlot {
                        phase: ThreadPhase::Starting,
                        epoch: 0,
                        go: false,
                        label: "start",
                        finish_time: None,
                    })
                    .collect(),
                live: n,
                user: self.state.take().expect("run called once"),
                panic_msg: None,
                all_done: false,
                tracer: self.tracer.clone(),
            }),
            cvs: (0..=n).map(|_| Condvar::new()).collect(),
        });

        // Seed start events in spawn order and hand the floor to the
        // first thread (it will pick up the go-flag when it parks).
        {
            let mut st = kernel.state.lock();
            for tid in 0..n {
                let st = &mut *st;
                Kernel::push_event(st, 0, tid, 0);
            }
            let st = &mut *st;
            kernel.dispatch(st);
        }

        let mut handles = Vec::with_capacity(n);
        for (tid, f) in self.pending.drain(..).enumerate() {
            let kernel = Arc::clone(&kernel);
            handles.push(std::thread::spawn(move || {
                // Acquire the floor for the first time.
                {
                    let mut guard = kernel.state.lock();
                    while !guard.threads[tid].go {
                        if guard.panic_msg.is_some() {
                            return;
                        }
                        kernel.cvs[tid].wait(&mut guard);
                    }
                    guard.threads[tid].go = false;
                    guard.threads[tid].phase = ThreadPhase::Running;
                }
                let ctx = Ctx {
                    kernel: Arc::clone(&kernel),
                    tid,
                };
                let result = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                let mut guard = kernel.state.lock();
                let st = &mut *guard;
                st.threads[tid].phase = ThreadPhase::Finished;
                st.threads[tid].finish_time = Some(st.now);
                st.live -= 1;
                if let Err(p) = result {
                    let msg = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic".to_string());
                    if st.panic_msg.is_none() {
                        st.panic_msg = Some(format!("simulated thread {tid} panicked: {msg}"));
                    }
                    st.all_done = true;
                    kernel.cvs[st.threads.len()].notify_all();
                    for cv in kernel.cvs.iter() {
                        cv.notify_all();
                    }
                    return;
                }
                kernel.dispatch(st);
            }));
        }

        // Wait for completion.
        {
            let mut guard = kernel.state.lock();
            while !guard.all_done {
                kernel.cvs[n].wait(&mut guard);
            }
        }
        for h in handles {
            let _ = h.join();
        }

        let k = Arc::try_unwrap(kernel)
            .ok()
            .expect("all ctxs dropped at join");
        let st = k.state.into_inner();
        if let Some(msg) = st.panic_msg {
            panic!("{msg}");
        }
        RunReport {
            end_time: st.now,
            finish_times: st
                .threads
                .iter()
                .map(|t| t.finish_time.expect("finished thread has time"))
                .collect(),
            trace: self.capture.map(|b| b.take()).unwrap_or_default(),
            state: st.user,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_advances_time() {
        let mut sim = Sim::new(());
        sim.spawn(|ctx| {
            assert_eq!(ctx.now(), 0);
            ctx.advance(100);
            assert_eq!(ctx.now(), 100);
            ctx.advance(0);
            assert_eq!(ctx.now(), 100);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 100);
        assert_eq!(r.finish_times, vec![100]);
    }

    #[test]
    fn threads_interleave_deterministically() {
        let mut sim = Sim::new(Vec::<(usize, SimTime)>::new());
        for tid in 0..4 {
            sim.spawn(move |ctx| {
                for step in 0..3u64 {
                    ctx.advance(10 + tid as u64);
                    ctx.with_state(|log, now| log.push((tid, now)));
                    let _ = step;
                }
            });
        }
        let a = sim.run().state;
        // Re-run: identical log.
        let mut sim = Sim::new(Vec::new());
        for tid in 0..4 {
            sim.spawn(move |ctx| {
                for _ in 0..3 {
                    ctx.advance(10 + tid as u64);
                    ctx.with_state(|log, now| log.push((tid, now)));
                }
            });
        }
        let b = sim.run().state;
        assert_eq!(a, b);
        // Events at equal times resolve in seq order: thread 0's first
        // advance (t=10) precedes thread 1's (t=11), etc.
        assert_eq!(a[0], (0, 10));
    }

    #[test]
    fn poll_sees_external_wakes() {
        // Thread 1 waits on a flag; thread 0 sets it at t=50.
        let mut sim = Sim::new((false, 0usize));
        let waiter = 1usize;
        sim.spawn(move |ctx| {
            ctx.advance(50);
            ctx.with_state(|s, _| s.0 = true);
            // Wake the waiter "now".
            ctx.poll("signal", move |_, w, now| {
                w.wake_at(waiter, now);
                Poll::Ready(())
            });
        });
        sim.spawn(|ctx| {
            ctx.poll("wait flag", |s: &mut (bool, usize), _w, _now| {
                if s.0 {
                    Poll::Ready(())
                } else {
                    s.1 += 1;
                    Poll::Wait { wake_at: None }
                }
            });
            assert_eq!(ctx.now(), 50);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 50);
        // The waiter's closure ran once to block and once to complete.
        assert_eq!(r.state.1, 1);
    }

    #[test]
    fn premature_wakes_reblock() {
        let mut sim = Sim::new(());
        let sleeper = 0usize;
        sim.spawn(|ctx| {
            ctx.advance(1000);
            assert_eq!(ctx.now(), 1000);
        });
        sim.spawn(move |ctx| {
            // Fire spurious wakes at the sleeper long before its deadline.
            for t in [10u64, 20, 30] {
                ctx.poll("spur", move |_, w, now| {
                    w.wake_at(sleeper, now.max(t));
                    Poll::Ready(())
                });
                ctx.advance(5);
            }
        });
        let r = sim.run();
        assert_eq!(r.finish_times[0], 1000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Sim::new(());
        sim.spawn(|ctx| {
            ctx.poll::<()>("forever", |_, _, _| Poll::Wait { wake_at: None });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "thread 0 panicked: boom")]
    fn thread_panics_propagate() {
        let mut sim = Sim::new(());
        sim.spawn(|_ctx| panic!("boom"));
        sim.spawn(|ctx| ctx.advance(10));
        sim.run();
    }

    #[test]
    fn trace_records_dispatches_in_time_order() {
        let mut sim = Sim::new(());
        sim.enable_trace();
        sim.spawn(|ctx| {
            ctx.advance(10);
            ctx.advance(20);
        });
        sim.spawn(|ctx| ctx.advance(15));
        let r = sim.run();
        assert!(!r.trace.is_empty());
        assert!(r.trace.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // Both threads appear, with the advance label.
        assert!(r
            .trace
            .iter()
            .any(|e| e.track == Track::Rank(0) && e.name == "advance"));
        assert!(r.trace.iter().any(|e| e.track == Track::Rank(1)));
        // Untraced runs stay empty.
        let mut sim = Sim::new(());
        sim.spawn(|ctx| ctx.advance(1));
        assert!(sim.run().trace.is_empty());
    }

    #[test]
    fn external_tracer_receives_dispatches() {
        let (tracer, buf) = Tracer::buffered();
        let mut sim = Sim::new(());
        sim.set_tracer(tracer);
        sim.spawn(|ctx| ctx.advance(10));
        let r = sim.run();
        // Events went to the external sink, not the report.
        assert!(r.trace.is_empty());
        let evs = buf.take();
        assert!(evs
            .iter()
            .any(|e| e.track == Track::Rank(0) && e.name == "advance" && e.ts() == 10));
    }

    #[test]
    fn chrome_export_is_wellformed() {
        use kacc_trace::{Event, EventKind};
        let trace = vec![
            Event {
                track: Track::Rank(0),
                name: "advance",
                kind: EventKind::Instant { ts: 1000 },
                bytes: 0,
                class: None,
            },
            Event {
                track: Track::Rank(3),
                name: "pin:wait",
                kind: EventKind::Instant { ts: 2500 },
                bytes: 0,
                class: None,
            },
        ];
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("pin:wait"));
        kacc_trace::validate::validate_chrome_json(&json).expect("export validates");
        assert_eq!(chrome_trace_json(&[]), "[]");
    }

    #[test]
    fn many_threads_scale() {
        let mut sim = Sim::new(0u64);
        for _ in 0..128 {
            sim.spawn(|ctx| {
                for _ in 0..10 {
                    ctx.advance(7);
                }
                ctx.with_state(|count, _| *count += 1);
            });
        }
        let r = sim.run();
        assert_eq!(r.state, 128);
        assert_eq!(r.end_time, 70);
    }
}
