#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! Deterministic discrete-event simulation kernel with cooperative rank
//! threads.
//!
//! Simulated processes are ordinary blocking Rust closures, each running on
//! its own OS thread. The kernel enforces that **exactly one thread runs at
//! a time** and hands control between threads according to a virtual-time
//! event queue with a global sequence-number tie-break, so every run over
//! the same program is bit-for-bit deterministic regardless of host
//! scheduling.
//!
//! The kernel is generic over a user state type `S` (the simulated
//! machine). Threads interact with `S` and with virtual time through
//! [`Ctx::poll`]: a closure that atomically inspects/mutates the shared
//! state and either completes or blocks with an optional timer. On every
//! wake-up — timer expiry or an explicit [`Waker::wake_at`] from another
//! thread — the closure re-evaluates, which makes stale-event races
//! impossible by construction: a wake that arrives too early simply
//! re-blocks.
//!
//! This "re-check on wake" protocol is what lets `kacc-machine` implement
//! fluid processor-sharing servers (the page-lock server, the memory
//! system) whose completion times shift whenever flows join or leave.
//!
//! ## Hot-path engineering (see DESIGN.md §11)
//!
//! Three mechanisms keep per-event cost low without touching virtual-time
//! semantics:
//!
//! * **Direct-handoff fast path** — when a blocking thread's own timer is
//!   strictly the earliest pending event (the common case in lock-stepped
//!   collectives), [`Ctx::poll`] advances the clock in place and
//!   re-evaluates the closure immediately: no queue traffic, no condvar
//!   round-trip, no floor transfer. Sequence numbers and epochs are
//!   bumped exactly as the slow path would, so the dispatch order — and
//!   therefore every virtual timestamp — is bit-identical
//!   ([`Sim::set_fast_path`] disables it for equivalence testing).
//! * **Index-aware event queue** — at most one pending wake per thread,
//!   with decrease-key on earlier re-wakes and in-place replacement when
//!   a thread's epoch advances. Stale entries stop accumulating (the old
//!   binary heap grew O(waker-storm²) garbage under fluid-server
//!   contention) and duplicate wakes coalesce to the earliest time
//!   before they ever reach the queue.
//! * **Persistent worker pool** — rank bodies run on [`SimPool`] threads
//!   that persist for the process lifetime, so a sweep of thousands of
//!   `Sim::run` points stops paying `nranks` OS thread spawns + joins
//!   per point.

pub mod mailbox;
pub mod polled;

pub use mailbox::Mailboxes;
pub use polled::{PolledSim, RankTask, TaskCtx, TaskPoll};

// Scheduler dispatches are emitted as `kacc_trace` instant events; re-export
// the pieces callers need to consume a captured dispatch trace.
pub use kacc_trace::{chrome_trace_json, Event as TraceEvent, SharedBuffer, Tracer};

use kacc_trace::Track;
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// Process-wide count of dispatched simulation events, accumulated when
/// each [`Sim::run`] completes. The delta across a sweep divided by its
/// wall-clock gives events/sec — the kernel throughput metric the
/// `des_kernel` bench and `repro --bench-out` report.
static TOTAL_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Of [`total_events`], how many took the direct-handoff fast path
/// (no queue traffic, no condvar round-trip).
static TOTAL_FAST: AtomicU64 = AtomicU64::new(0);

/// Total simulated events dispatched by completed runs in this process.
pub fn total_events() -> u64 {
    TOTAL_EVENTS.load(Ordering::Relaxed)
}

/// Total events that took the direct-handoff fast path (subset of
/// [`total_events`]) — observability for the events/sec reports.
pub fn total_fast_handoffs() -> u64 {
    TOTAL_FAST.load(Ordering::Relaxed)
}

/// Per-run kernel metrics, carried in [`RunReport::metrics`] and flushed
/// into the `kacc-metrics` global registry when a run completes.
///
/// All fields are deterministic functions of the simulated program:
/// both engines (threads and polled) count the same sites in the shared
/// kernel code, so the engine-equivalence suites pin them bitwise-equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimRunMetrics {
    /// Event-queue insert calls (wake pushes, including seeds).
    pub queue_inserts: u64,
    /// Inserts dropped by same-epoch later-time coalescing before they
    /// ever reached the heap.
    pub queue_coalesce_drops: u64,
    /// Events popped off the queue (dispatched or discarded as stale).
    pub queue_pops: u64,
    /// Peak event-queue length (high-water mark).
    pub queue_len_hwm: u64,
    /// `Waker::wake_at` calls that created a pending wake.
    pub wakes_raw: u64,
    /// `Waker::wake_at` calls coalesced into an existing same-evaluation
    /// wake for the same thread (the O(storm²) traffic the indexed queue
    /// eliminated; still counted to size the storms).
    pub wakes_coalesced: u64,
    /// Wake fan-out distribution: one sample per poll evaluation that
    /// flushed at least one wake (sample = wakes flushed). The fluid
    /// servers' O(p) re-wake storms live in this histogram's tail.
    pub wake_fanout: kacc_metrics::LocalHist,
    /// Events that took the direct-handoff fast path.
    pub fast_handoffs: u64,
}

/// Registry handles for the kernel's always-on metrics, created once.
struct SimHandles {
    runs: kacc_metrics::Counter,
    events: kacc_metrics::Counter,
    fast_handoffs: kacc_metrics::Counter,
    queue_inserts: kacc_metrics::Counter,
    queue_coalesce_drops: kacc_metrics::Counter,
    queue_pops: kacc_metrics::Counter,
    queue_len_hwm: kacc_metrics::Gauge,
    wakes_raw: kacc_metrics::Counter,
    wakes_coalesced: kacc_metrics::Counter,
    wake_fanout: kacc_metrics::Hist,
}

fn sim_handles() -> &'static SimHandles {
    static H: OnceLock<SimHandles> = OnceLock::new();
    H.get_or_init(|| SimHandles {
        runs: kacc_metrics::counter("sim.runs"),
        events: kacc_metrics::counter("sim.events"),
        fast_handoffs: kacc_metrics::counter("sim.fast_handoffs"),
        queue_inserts: kacc_metrics::counter("sim.queue.inserts"),
        queue_coalesce_drops: kacc_metrics::counter("sim.queue.coalesce_drops"),
        queue_pops: kacc_metrics::counter("sim.queue.pops"),
        queue_len_hwm: kacc_metrics::gauge("sim.queue.len.hwm"),
        wakes_raw: kacc_metrics::counter("sim.wakes.raw"),
        wakes_coalesced: kacc_metrics::counter("sim.wakes.coalesced"),
        wake_fanout: kacc_metrics::hist("sim.wake.fanout"),
    })
}

/// Flush one completed run's kernel metrics into the global registry.
/// Shared by both engines so they publish identically by construction.
pub(crate) fn flush_run_metrics(m: &SimRunMetrics, events: u64) {
    let h = sim_handles();
    h.runs.inc();
    h.events.add(events);
    h.fast_handoffs.add(m.fast_handoffs);
    h.queue_inserts.add(m.queue_inserts);
    h.queue_coalesce_drops.add(m.queue_coalesce_drops);
    h.queue_pops.add(m.queue_pops);
    h.queue_len_hwm.observe(m.queue_len_hwm);
    h.wakes_raw.add(m.wakes_raw);
    h.wakes_coalesced.add(m.wakes_coalesced);
    h.wake_fanout.merge_local(&m.wake_fanout);
}

/// Result of one evaluation of a [`Ctx::poll`] closure.
pub enum Poll<T> {
    /// The operation completed with this value.
    Ready(T),
    /// Block. If `wake_at` is `Some(t)`, schedule a self-wake at virtual
    /// time `t` (must not be in the past; debug builds assert); otherwise
    /// wait for an external [`Waker::wake_at`].
    Wait {
        /// Optional timer for the blocking thread.
        wake_at: Option<SimTime>,
    },
}

/// Handle other threads' wake-ups from inside a poll closure.
///
/// Any state change that can move another thread's completion time
/// *earlier* must push a fresh wake for it; wakes that turn out premature
/// are harmless (the woken closure re-blocks).
pub struct Waker {
    pending: Vec<(usize, SimTime)>,
    /// `slots[tid] = (generation, index into pending)` — O(1) duplicate
    /// coalescing. The kernel recycles this across evaluations and bumps
    /// `gen` instead of clearing, so a fluid-server wake storm costs
    /// O(storm) per evaluation where the old linear scan cost O(storm²).
    slots: Vec<(u64, u32)>,
    gen: u64,
    /// Wakes that created a pending entry this evaluation.
    raw: u64,
    /// Wakes coalesced into an existing entry this evaluation.
    coalesced: u64,
}

impl Waker {
    /// Schedule thread `tid` to re-evaluate its poll closure at virtual
    /// time `at` (clamped to the current time if in the past; debug
    /// builds assert against past times so scheduling bugs can't hide
    /// behind the clamp).
    ///
    /// Duplicate wakes for the same thread within one poll evaluation
    /// coalesce to the earliest time here, before they ever reach the
    /// event queue.
    pub fn wake_at(&mut self, tid: usize, at: SimTime) {
        if tid >= self.slots.len() {
            self.slots.resize(tid + 1, (0, 0));
        }
        let (g, i) = self.slots[tid];
        if g == self.gen {
            let slot = &mut self.pending[i as usize].1;
            *slot = (*slot).min(at);
            self.coalesced += 1;
        } else {
            self.slots[tid] = (self.gen, self.pending.len() as u32);
            self.pending.push((tid, at));
            self.raw += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

/// Index-aware min-queue over thread wakes, ordered by `(time, seq)`.
///
/// Invariant: at most one entry per thread. An insert for a thread that
/// already has an entry either coalesces (same epoch, later-or-equal
/// time: the earliest wake wins, so the duplicate is dropped), performs
/// a decrease-key (same epoch, earlier time), or replaces the entry
/// outright (newer epoch — the old entry is stale by construction and
/// would only be popped and discarded). This keeps the queue at ≤ one
/// entry per live thread where the old `BinaryHeap` accumulated a stale
/// entry per wake under fluid-server waker storms.
struct EventQueue {
    /// Heap of tids ordered by `key`.
    heap: Vec<usize>,
    /// `pos[tid]` = heap index + 1, or 0 when the thread has no entry.
    pos: Vec<usize>,
    /// `key[tid]` = (time, seq, epoch); valid while `pos[tid] != 0`.
    key: Vec<(SimTime, u64, u64)>,
    /// Insert calls (metrics).
    inserts: u64,
    /// Inserts dropped by same-epoch later-time coalescing (metrics).
    coalesce_drops: u64,
    /// Pop calls that returned an event (metrics).
    pops: u64,
    /// Peak heap length (metrics).
    len_hwm: usize,
}

impl EventQueue {
    fn new(nthreads: usize) -> EventQueue {
        EventQueue {
            heap: Vec::with_capacity(nthreads),
            pos: vec![0; nthreads],
            key: vec![(0, 0, 0); nthreads],
            inserts: 0,
            coalesce_drops: 0,
            pops: 0,
            len_hwm: 0,
        }
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ta, sa, _) = self.key[a];
        let (tb, sb, _) = self.key[b];
        (ta, sa) < (tb, sb)
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a + 1;
        self.pos[self.heap[b]] = b + 1;
    }

    /// Returns true when the entry moved.
    fn sift_up(&mut self, mut i: usize) -> bool {
        let mut moved = false;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.less(self.heap[i], self.heap[p]) {
                self.swap(i, p);
                i = p;
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut m = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[m]) {
                m = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[m]) {
                m = r;
            }
            if m == i {
                return;
            }
            self.swap(i, m);
            i = m;
        }
    }

    /// Insert or update thread `tid`'s wake. See the type docs for the
    /// coalesce/decrease-key/replace rules; all three preserve the exact
    /// dispatch order the duplicate-tolerant heap produced.
    fn insert(&mut self, tid: usize, t: SimTime, seq: u64, epoch: u64) {
        self.inserts += 1;
        if self.pos[tid] != 0 {
            let (ct, _cs, ce) = self.key[tid];
            if ce == epoch && t >= ct {
                // Same-epoch duplicate at a later (or equal) time: the
                // existing earlier wake dispatches first and the thread
                // re-parks with a new epoch, so this one could only ever
                // be popped as stale. Drop it now.
                self.coalesce_drops += 1;
                return;
            }
            self.key[tid] = (t, seq, epoch);
            let i = self.pos[tid] - 1;
            if !self.sift_up(i) {
                self.sift_down(i);
            }
        } else {
            self.key[tid] = (t, seq, epoch);
            self.heap.push(tid);
            self.pos[tid] = self.heap.len();
            self.len_hwm = self.len_hwm.max(self.heap.len());
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// Earliest pending wake as `(time, seq, tid, epoch)`.
    fn peek(&self) -> Option<(SimTime, u64, usize, u64)> {
        self.heap.first().map(|&tid| {
            let (t, s, e) = self.key[tid];
            (t, s, tid, e)
        })
    }

    fn pop(&mut self) -> Option<(SimTime, u64, usize, u64)> {
        let &tid = self.heap.first()?;
        self.pops += 1;
        let (t, s, e) = self.key[tid];
        let last = self.heap.pop().expect("nonempty");
        self.pos[tid] = 0;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 1;
            self.sift_down(0);
        }
        Some((t, s, tid, e))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadPhase {
    /// Not yet given the floor for the first time.
    Starting,
    /// Currently holds the floor.
    Running,
    /// Parked inside a poll.
    Parked,
    /// User closure returned.
    Finished,
}

struct ThreadSlot {
    phase: ThreadPhase,
    /// Wake-token epoch; events carry the epoch they were issued for and
    /// are discarded if the thread has re-parked since.
    epoch: u64,
    /// Floor-transfer flag, protected by the kernel mutex.
    go: bool,
    /// What the thread is blocked on (for deadlock dumps).
    label: &'static str,
    finish_time: Option<SimTime>,
}

struct KernelState<S> {
    now: SimTime,
    seq: u64,
    /// Pending wakes, one per thread at most.
    queue: EventQueue,
    threads: Vec<ThreadSlot>,
    live: usize,
    user: S,
    panic_msg: Option<String>,
    all_done: bool,
    /// Events dispatched this run (includes fast-path hand-offs).
    dispatches: u64,
    /// Subset of `dispatches` that took the direct-handoff fast path.
    fast_handoffs: u64,
    /// Reusable buffer backing `Waker::pending`, recycled across poll
    /// evaluations to keep wake delivery allocation-free.
    wake_buf: Vec<(usize, SimTime)>,
    /// Reusable buffer backing `Waker::slots` (O(1) wake coalescing);
    /// `wake_gen` invalidates it wholesale between evaluations.
    wake_slots: Vec<(u64, u32)>,
    wake_gen: u64,
    /// Direct-handoff fast path enabled (default); disable via
    /// [`Sim::set_fast_path`] to force every wake through the queue.
    fast_path: bool,
    /// Wake-side metrics (raw/coalesced wakes, fan-out); queue-side
    /// counters live inside `queue` and are folded in at run end by
    /// [`KernelState::run_metrics`].
    metrics: SimRunMetrics,
    /// Destination for scheduler-dispatch instant events; `Tracer::off()`
    /// unless tracing was requested.
    tracer: Tracer,
}

impl<S> KernelState<S> {
    /// Assemble the completed run's metrics from the wake-side
    /// accumulator and the queue's own counters.
    fn run_metrics(&self) -> SimRunMetrics {
        let mut m = self.metrics.clone();
        m.queue_inserts = self.queue.inserts;
        m.queue_coalesce_drops = self.queue.coalesce_drops;
        m.queue_pops = self.queue.pops;
        m.queue_len_hwm = self.queue.len_hwm as u64;
        m.fast_handoffs = self.fast_handoffs;
        m
    }
}

struct Kernel<S> {
    state: Mutex<KernelState<S>>,
    /// One condvar per thread plus one (last) for `run()`.
    cvs: Vec<Condvar>,
}

impl<S> Kernel<S> {
    /// Push an event, bumping the global sequence counter. Past times
    /// are clamped to `now` (and assert in debug builds — a wake in the
    /// past is a modeling bug that the clamp would otherwise hide; the
    /// clamp additionally leaves a `wake:past-clamped` instant in traced
    /// release runs).
    fn push_event(st: &mut KernelState<S>, at: SimTime, tid: usize, epoch: u64) {
        debug_assert!(
            at >= st.now,
            "scheduling in the past: wake for thread {tid} at t={at}ns but now={}ns",
            st.now
        );
        if at < st.now {
            st.tracer
                .instant(Track::Rank(tid), "wake:past-clamped", st.now);
        }
        let t = at.max(st.now);
        st.seq += 1;
        let seq = st.seq;
        st.queue.insert(tid, t, seq, epoch);
    }

    /// Pick the next runnable thread, advance the clock, and transfer the
    /// floor. Must be called by a thread that no longer holds the floor.
    fn dispatch(&self, st: &mut KernelState<S>) {
        loop {
            let Some((t, _seq, tid, epoch)) = st.queue.peek() else {
                // No events: either everything finished, or deadlock.
                if st.live == 0 {
                    st.all_done = true;
                    self.cvs[st.threads.len()].notify_all();
                    return;
                }
                let dump: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.phase != ThreadPhase::Finished)
                    .map(|(i, s)| format!("  thread {i}: {:?} on '{}'", s.phase, s.label))
                    .collect();
                st.panic_msg = Some(format!(
                    "simulation deadlock at t={}ns: {} live thread(s) blocked with no pending events\n{}",
                    st.now,
                    st.live,
                    dump.join("\n")
                ));
                st.all_done = true;
                self.cvs[st.threads.len()].notify_all();
                // Wake everyone so parked threads can observe the abort.
                for cv in &self.cvs {
                    cv.notify_all();
                }
                return;
            };
            st.queue.pop();
            let slot = &mut st.threads[tid];
            // Discard stale wakes (thread re-parked or finished since).
            if slot.phase == ThreadPhase::Finished || slot.epoch != epoch {
                continue;
            }
            debug_assert!(t >= st.now, "event queue went backwards");
            st.now = t;
            st.dispatches += 1;
            slot.go = true;
            // The tracer's sink lock is a leaf lock taken strictly under the
            // kernel mutex, so this cannot deadlock; disabled tracing is a
            // single branch.
            st.tracer.instant(Track::Rank(tid), slot.label, t);
            self.cvs[tid].notify_one();
            return;
        }
    }
}

/// Per-thread context handed to simulated-process closures.
pub struct Ctx<S: Send + 'static> {
    kernel: Arc<Kernel<S>>,
    tid: usize,
}

impl<S: Send + 'static> Clone for Ctx<S> {
    fn clone(&self) -> Self {
        Ctx {
            kernel: Arc::clone(&self.kernel),
            tid: self.tid,
        }
    }
}

impl<S: Send + 'static> Ctx<S> {
    /// Index of this simulated thread (spawn order).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// Charge `dt` nanoseconds of virtual time to this thread.
    pub fn advance(&self, dt: SimTime) {
        let mut deadline = None;
        self.poll("advance", move |_s, _w, now| {
            let d = *deadline.get_or_insert(now + dt);
            if now >= d {
                Poll::Ready(())
            } else {
                Poll::Wait { wake_at: Some(d) }
            }
        })
    }

    /// Run `f` atomically against the shared state. Non-blocking: `f`
    /// executes exactly once while this thread holds the floor.
    pub fn with_state<T>(&self, f: impl FnOnce(&mut S, SimTime) -> T) -> T {
        let mut guard = self.kernel.state.lock();
        let st = &mut *guard;
        f(&mut st.user, st.now)
    }

    /// The core blocking primitive; see the module docs. `label` appears
    /// in deadlock dumps.
    pub fn poll<T>(
        &self,
        label: &'static str,
        mut f: impl FnMut(&mut S, &mut Waker, SimTime) -> Poll<T>,
    ) -> T {
        let kernel = &*self.kernel;
        let mut guard = kernel.state.lock();
        loop {
            if let Some(msg) = guard.panic_msg.clone() {
                drop(guard);
                panic!("simulation aborted: {msg}");
            }
            let now = guard.now;
            let st = &mut *guard;
            st.wake_gen += 1;
            let mut waker = Waker {
                pending: std::mem::take(&mut st.wake_buf),
                slots: std::mem::take(&mut st.wake_slots),
                gen: st.wake_gen,
                raw: 0,
                coalesced: 0,
            };
            let outcome = f(&mut st.user, &mut waker, now);
            // Apply wakes requested for other threads: bump-free — they
            // target the *current* epoch of each thread.
            for &(tid, at) in &waker.pending {
                let epoch = st.threads[tid].epoch;
                Kernel::push_event(st, at, tid, epoch);
            }
            st.metrics.wakes_raw += waker.raw;
            st.metrics.wakes_coalesced += waker.coalesced;
            if !waker.pending.is_empty() {
                st.metrics.wake_fanout.record(waker.pending.len() as u64);
            }
            waker.pending.clear();
            st.wake_buf = waker.pending;
            st.wake_slots = waker.slots;
            match outcome {
                Poll::Ready(v) => return v,
                Poll::Wait { wake_at } => {
                    let tid = self.tid;
                    if let Some(at) = wake_at {
                        debug_assert!(
                            at >= now,
                            "poll('{label}') timer in the past: t={at}ns but now={now}ns"
                        );
                        let t = at.max(now);
                        // Purge stale heads (finished threads, or our own
                        // superseded self-wakes) so they can't force a
                        // needless slow handoff; dispatch would discard
                        // them on pop anyway.
                        if st.fast_path {
                            while let Some((_, _, qtid, qe)) = st.queue.peek() {
                                let s = &st.threads[qtid];
                                if s.phase == ThreadPhase::Finished || s.epoch != qe {
                                    st.queue.pop();
                                } else {
                                    break;
                                }
                            }
                        }
                        // Direct-handoff fast path: our own timer is
                        // strictly the earliest pending event, so the
                        // slow path would park, pop this very wake, and
                        // hand the floor straight back. Advance the
                        // clock in place instead — same epoch/seq
                        // bookkeeping, same dispatch instant, no queue
                        // traffic or condvar round-trip.
                        if st.fast_path && st.queue.peek().is_none_or(|(qt, ..)| qt > t) {
                            st.threads[tid].epoch += 1;
                            st.threads[tid].label = label;
                            st.seq += 1;
                            st.now = t;
                            st.dispatches += 1;
                            st.fast_handoffs += 1;
                            st.tracer.instant(Track::Rank(tid), label, t);
                            continue;
                        }
                    }
                    st.threads[tid].epoch += 1;
                    st.threads[tid].phase = ThreadPhase::Parked;
                    st.threads[tid].label = label;
                    let epoch = st.threads[tid].epoch;
                    if let Some(at) = wake_at {
                        Kernel::push_event(st, at, tid, epoch);
                    }
                    kernel.dispatch(st);
                    // Park until handed the floor again.
                    while !guard.threads[self.tid].go {
                        if let Some(msg) = guard.panic_msg.clone() {
                            drop(guard);
                            panic!("simulation aborted: {msg}");
                        }
                        kernel.cvs[self.tid].wait(&mut guard);
                    }
                    guard.threads[self.tid].go = false;
                    guard.threads[self.tid].phase = ThreadPhase::Running;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide pool of persistent OS threads hosting simulated-rank
/// bodies.
///
/// Every [`Sim::run`] leases one worker per simulated thread and returns
/// them when the run completes, so a sweep of thousands of simulation
/// points pays thread-spawn cost only for the high-water mark of
/// concurrent ranks instead of `nranks` spawns + joins per point.
/// Workers are plain threads parked on a channel; they persist for the
/// process lifetime. Panics inside a body are contained (the kernel
/// already converts simulated-thread panics into a run-level abort), so
/// a worker survives any job it hosts.
pub struct SimPool {
    idle: Mutex<Vec<mpsc::Sender<Job>>>,
    spawned: AtomicUsize,
}

impl SimPool {
    /// The process-wide pool.
    pub fn global() -> &'static SimPool {
        static POOL: OnceLock<SimPool> = OnceLock::new();
        POOL.get_or_init(|| SimPool {
            idle: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        })
    }

    /// Workers ever spawned — the high-water mark of concurrent leases
    /// (observability: a sweep reusing the pool keeps this flat).
    pub fn workers_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    fn execute(&'static self, job: Job) {
        let mut job = job;
        loop {
            let Some(tx) = self.idle.lock().pop() else {
                break;
            };
            match tx.send(job) {
                Ok(()) => return,
                // Worker died (only possible if the host tore threads
                // down); fall through and spawn a replacement.
                Err(e) => job = e.0,
            }
        }
        let n = self.spawned.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel::<Job>();
        std::thread::Builder::new()
            .name(format!("sim-worker-{n}"))
            .spawn(move || {
                let mut next = Some(job);
                loop {
                    let j = match next.take() {
                        Some(j) => j,
                        None => match rx.recv() {
                            Ok(j) => j,
                            Err(_) => return,
                        },
                    };
                    let _ = catch_unwind(AssertUnwindSafe(j));
                    // Only re-register once the job has fully released
                    // its simulation (the lease discipline).
                    SimPool::global().idle.lock().push(tx.clone());
                }
            })
            .expect("spawn sim worker");
    }
}

/// Completion latch for one run's leased workers.
struct JobDone {
    left: Mutex<usize>,
    cv: Condvar,
}

impl JobDone {
    fn new(n: usize) -> JobDone {
        JobDone {
            left: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    fn finish(&self) {
        let mut left = self.left.lock();
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.left.lock();
        while *left > 0 {
            self.cv.wait(&mut left);
        }
    }
}

/// Outcome of a completed simulation.
pub struct RunReport<S> {
    /// Final shared state.
    pub state: S,
    /// Virtual time when the last thread finished.
    pub end_time: SimTime,
    /// Per-thread finish times, indexed by tid.
    pub finish_times: Vec<SimTime>,
    /// Simulated events dispatched over the whole run.
    pub events: u64,
    /// Kernel metrics for this run (queue traffic, wake fan-out, …) —
    /// deterministic and engine-independent; also flushed into the
    /// `kacc-metrics` global registry.
    pub metrics: SimRunMetrics,
    /// Dispatch trace, when enabled with [`Sim::enable_trace`]. Empty when
    /// an external tracer was installed with [`Sim::set_tracer`] instead
    /// (events flow to that tracer's sink).
    pub trace: Vec<TraceEvent>,
}

/// A simulation under construction: create, spawn threads, run.
pub struct Sim<S: Send + 'static> {
    state: Option<S>,
    pending: Vec<Box<dyn FnOnce(Ctx<S>) + Send + 'static>>,
    tracer: Tracer,
    capture: Option<SharedBuffer>,
    fast_path: bool,
}

impl<S: Send + 'static> Sim<S> {
    /// Create a simulation owning the shared machine state.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            state: Some(state),
            pending: Vec::new(),
            tracer: Tracer::off(),
            capture: None,
            fast_path: true,
        }
    }

    /// Record every scheduler dispatch into [`RunReport::trace`]
    /// (observability/debugging; costs memory proportional to events).
    pub fn enable_trace(&mut self) {
        let (tracer, buf) = Tracer::buffered();
        self.tracer = tracer;
        self.capture = Some(buf);
    }

    /// Send scheduler-dispatch events to an external [`Tracer`] (shared
    /// with other layers, e.g. the machine model). [`RunReport::trace`]
    /// stays empty; the caller owns the sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.capture = None;
    }

    /// Enable or disable the direct-handoff fast path (default: on).
    ///
    /// Disabling forces every wake through the event queue and condvar
    /// floor transfer — virtual-time behavior is identical by
    /// construction, which the fast-path equivalence suite pins; the
    /// switch exists exactly for that comparison.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Register a simulated thread. Threads receive the floor in spawn
    /// order at t=0. Returns the thread's tid.
    pub fn spawn(&mut self, f: impl FnOnce(Ctx<S>) + Send + 'static) -> usize {
        let tid = self.pending.len();
        self.pending.push(Box::new(f));
        tid
    }

    /// Run the simulation to completion, returning the final state and
    /// timing report. Panics (with the failing thread's message) if any
    /// simulated thread panicked or the simulation deadlocked.
    ///
    /// Rank bodies execute on leased [`SimPool`] workers, so repeated
    /// runs (parameter sweeps) reuse OS threads instead of spawning
    /// `nranks` fresh ones per run.
    pub fn run(mut self) -> RunReport<S> {
        let n = self.pending.len();
        let kernel = Arc::new(Kernel {
            state: Mutex::new(KernelState {
                now: 0,
                seq: 0,
                queue: EventQueue::new(n),
                threads: (0..n)
                    .map(|_| ThreadSlot {
                        phase: ThreadPhase::Starting,
                        epoch: 0,
                        go: false,
                        label: "start",
                        finish_time: None,
                    })
                    .collect(),
                live: n,
                user: self.state.take().expect("run called once"),
                panic_msg: None,
                all_done: false,
                dispatches: 0,
                fast_handoffs: 0,
                wake_buf: Vec::new(),
                wake_slots: Vec::new(),
                wake_gen: 0,
                fast_path: self.fast_path,
                metrics: SimRunMetrics::default(),
                tracer: self.tracer.clone(),
            }),
            cvs: (0..=n).map(|_| Condvar::new()).collect(),
        });

        // Seed start events in spawn order and hand the floor to the
        // first thread (it will pick up the go-flag when it parks).
        {
            let mut st = kernel.state.lock();
            for tid in 0..n {
                let st = &mut *st;
                Kernel::push_event(st, 0, tid, 0);
            }
            let st = &mut *st;
            kernel.dispatch(st);
        }

        let done = Arc::new(JobDone::new(n));
        let pool = SimPool::global();
        for (tid, f) in self.pending.drain(..).enumerate() {
            let kernel = Arc::clone(&kernel);
            let done = Arc::clone(&done);
            pool.execute(Box::new(move || {
                // The body owns the kernel Arc; catching here keeps the
                // pool worker alive and the latch exact even if kernel
                // bookkeeping itself panicked.
                let _ = catch_unwind(AssertUnwindSafe(move || thread_body(kernel, tid, f)));
                done.finish();
            }));
        }

        // Wait until every leased worker has finished its body (which
        // implies `all_done`: the last finishing thread's dispatch set
        // it, or a panic/deadlock path did).
        done.wait();

        let k = Arc::try_unwrap(kernel)
            .ok()
            .expect("all ctxs dropped at join");
        let st = k.state.into_inner();
        if let Some(msg) = st.panic_msg {
            panic!("{msg}");
        }
        TOTAL_EVENTS.fetch_add(st.dispatches, Ordering::Relaxed);
        TOTAL_FAST.fetch_add(st.fast_handoffs, Ordering::Relaxed);
        let metrics = st.run_metrics();
        flush_run_metrics(&metrics, st.dispatches);
        RunReport {
            end_time: st.now,
            events: st.dispatches,
            metrics,
            finish_times: st
                .threads
                .iter()
                .map(|t| t.finish_time.expect("finished thread has time"))
                .collect(),
            trace: self.capture.map(|b| b.take()).unwrap_or_default(),
            state: st.user,
        }
    }
}

/// One simulated thread's life: acquire the floor, run the user closure,
/// record the finish, and hand the floor onwards.
fn thread_body<S: Send + 'static>(
    kernel: Arc<Kernel<S>>,
    tid: usize,
    f: Box<dyn FnOnce(Ctx<S>) + Send + 'static>,
) {
    // Acquire the floor for the first time.
    {
        let mut guard = kernel.state.lock();
        while !guard.threads[tid].go {
            if guard.panic_msg.is_some() {
                return;
            }
            kernel.cvs[tid].wait(&mut guard);
        }
        guard.threads[tid].go = false;
        guard.threads[tid].phase = ThreadPhase::Running;
    }
    let ctx = Ctx {
        kernel: Arc::clone(&kernel),
        tid,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(ctx)));
    let mut guard = kernel.state.lock();
    let st = &mut *guard;
    st.threads[tid].phase = ThreadPhase::Finished;
    st.threads[tid].finish_time = Some(st.now);
    st.live -= 1;
    if let Err(p) = result {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".to_string());
        if st.panic_msg.is_none() {
            st.panic_msg = Some(format!("simulated thread {tid} panicked: {msg}"));
        }
        st.all_done = true;
        kernel.cvs[st.threads.len()].notify_all();
        for cv in kernel.cvs.iter() {
            cv.notify_all();
        }
        return;
    }
    kernel.dispatch(st);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_advances_time() {
        let mut sim = Sim::new(());
        sim.spawn(|ctx| {
            assert_eq!(ctx.now(), 0);
            ctx.advance(100);
            assert_eq!(ctx.now(), 100);
            ctx.advance(0);
            assert_eq!(ctx.now(), 100);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 100);
        assert_eq!(r.finish_times, vec![100]);
        assert!(r.events > 0);
    }

    #[test]
    fn threads_interleave_deterministically() {
        let mut sim = Sim::new(Vec::<(usize, SimTime)>::new());
        for tid in 0..4 {
            sim.spawn(move |ctx| {
                for step in 0..3u64 {
                    ctx.advance(10 + tid as u64);
                    ctx.with_state(|log, now| log.push((tid, now)));
                    let _ = step;
                }
            });
        }
        let a = sim.run().state;
        // Re-run: identical log.
        let mut sim = Sim::new(Vec::new());
        for tid in 0..4 {
            sim.spawn(move |ctx| {
                for _ in 0..3 {
                    ctx.advance(10 + tid as u64);
                    ctx.with_state(|log, now| log.push((tid, now)));
                }
            });
        }
        let b = sim.run().state;
        assert_eq!(a, b);
        // Events at equal times resolve in seq order: thread 0's first
        // advance (t=10) precedes thread 1's (t=11), etc.
        assert_eq!(a[0], (0, 10));
    }

    #[test]
    fn poll_sees_external_wakes() {
        // Thread 1 waits on a flag; thread 0 sets it at t=50.
        let mut sim = Sim::new((false, 0usize));
        let waiter = 1usize;
        sim.spawn(move |ctx| {
            ctx.advance(50);
            ctx.with_state(|s, _| s.0 = true);
            // Wake the waiter "now".
            ctx.poll("signal", move |_, w, now| {
                w.wake_at(waiter, now);
                Poll::Ready(())
            });
        });
        sim.spawn(|ctx| {
            ctx.poll("wait flag", |s: &mut (bool, usize), _w, _now| {
                if s.0 {
                    Poll::Ready(())
                } else {
                    s.1 += 1;
                    Poll::Wait { wake_at: None }
                }
            });
            assert_eq!(ctx.now(), 50);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 50);
        // The waiter's closure ran once to block and once to complete.
        assert_eq!(r.state.1, 1);
    }

    #[test]
    fn premature_wakes_reblock() {
        let mut sim = Sim::new(());
        let sleeper = 0usize;
        sim.spawn(|ctx| {
            ctx.advance(1000);
            assert_eq!(ctx.now(), 1000);
        });
        sim.spawn(move |ctx| {
            // Fire spurious wakes at the sleeper long before its deadline.
            for t in [10u64, 20, 30] {
                ctx.poll("spur", move |_, w, now| {
                    w.wake_at(sleeper, now.max(t));
                    Poll::Ready(())
                });
                ctx.advance(5);
            }
        });
        let r = sim.run();
        assert_eq!(r.finish_times[0], 1000);
    }

    #[test]
    fn duplicate_wakes_coalesce_to_earliest() {
        // Several wakes for the same sleeper in one poll cycle: only the
        // earliest matters, and the sleeper still re-blocks safely.
        let mut sim = Sim::new(0u64);
        let sleeper = 0usize;
        sim.spawn(|ctx| {
            ctx.poll("wait", |hits: &mut u64, _w, _now| {
                *hits += 1;
                if *hits >= 2 {
                    Poll::Ready(())
                } else {
                    Poll::Wait { wake_at: None }
                }
            });
        });
        sim.spawn(move |ctx| {
            ctx.advance(5);
            ctx.poll("burst", move |_, w, now| {
                // Duplicates at later times must not shadow the early one.
                w.wake_at(sleeper, now + 100);
                w.wake_at(sleeper, now + 10);
                w.wake_at(sleeper, now + 40);
                Poll::Ready(())
            });
        });
        let r = sim.run();
        assert_eq!(r.finish_times[0], 15, "earliest wake (5+10) wins");
    }

    #[test]
    fn slow_path_matches_fast_path_exactly() {
        let go = |fast: bool| {
            let mut sim = Sim::new(Vec::<(usize, SimTime)>::new());
            sim.set_fast_path(fast);
            for tid in 0..6 {
                sim.spawn(move |ctx| {
                    for _ in 0..4 {
                        ctx.advance(7 + tid as u64 * 3);
                        ctx.with_state(|log, now| log.push((tid, now)));
                    }
                });
            }
            let r = sim.run();
            (r.state, r.end_time, r.finish_times, r.events)
        };
        assert_eq!(go(true), go(false));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling in the past")]
    fn past_wakes_assert_in_debug() {
        let mut sim = Sim::new(());
        let sleeper = 0usize;
        sim.spawn(|ctx| {
            ctx.advance(1000);
        });
        sim.spawn(move |ctx| {
            ctx.advance(500);
            // A wake far in the past: the clamp used to hide this.
            ctx.poll("bad", move |_, w, _now| {
                w.wake_at(sleeper, 3);
                Poll::Ready(())
            });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Sim::new(());
        sim.spawn(|ctx| {
            ctx.poll::<()>("forever", |_, _, _| Poll::Wait { wake_at: None });
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "thread 0 panicked: boom")]
    fn thread_panics_propagate() {
        let mut sim = Sim::new(());
        sim.spawn(|_ctx| panic!("boom"));
        sim.spawn(|ctx| ctx.advance(10));
        sim.run();
    }

    #[test]
    fn pool_reuses_workers_across_runs() {
        // Warm the pool, note the high-water mark, then run many more
        // same-width sims: no new workers may spawn.
        let width = 8;
        let once = || {
            let mut sim = Sim::new(());
            for _ in 0..width {
                sim.spawn(|ctx| ctx.advance(10));
            }
            sim.run();
        };
        once();
        let mark = SimPool::global().workers_spawned();
        for _ in 0..20 {
            once();
        }
        // Other tests run concurrently and may lease workers, so allow
        // their growth — but 20 sequential runs of our own must not add
        // 20×width fresh threads.
        let grown = SimPool::global().workers_spawned() - mark;
        assert!(grown < 20 * width, "pool did not reuse workers: +{grown}");
    }

    #[test]
    fn trace_records_dispatches_in_time_order() {
        let mut sim = Sim::new(());
        sim.enable_trace();
        sim.spawn(|ctx| {
            ctx.advance(10);
            ctx.advance(20);
        });
        sim.spawn(|ctx| ctx.advance(15));
        let r = sim.run();
        assert!(!r.trace.is_empty());
        assert!(r.trace.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // Both threads appear, with the advance label.
        assert!(r
            .trace
            .iter()
            .any(|e| e.track == Track::Rank(0) && e.name == "advance"));
        assert!(r.trace.iter().any(|e| e.track == Track::Rank(1)));
        // Untraced runs stay empty.
        let mut sim = Sim::new(());
        sim.spawn(|ctx| ctx.advance(1));
        assert!(sim.run().trace.is_empty());
    }

    #[test]
    fn trace_is_identical_with_fast_path_off() {
        let go = |fast: bool| {
            let mut sim = Sim::new(());
            sim.enable_trace();
            sim.set_fast_path(fast);
            sim.spawn(|ctx| {
                ctx.advance(10);
                ctx.advance(20);
            });
            sim.spawn(|ctx| ctx.advance(15));
            sim.run().trace
        };
        assert_eq!(
            chrome_trace_json(&go(true)),
            chrome_trace_json(&go(false)),
            "fast path altered the dispatch trace"
        );
    }

    #[test]
    fn external_tracer_receives_dispatches() {
        let (tracer, buf) = Tracer::buffered();
        let mut sim = Sim::new(());
        sim.set_tracer(tracer);
        sim.spawn(|ctx| ctx.advance(10));
        let r = sim.run();
        // Events went to the external sink, not the report.
        assert!(r.trace.is_empty());
        let evs = buf.take();
        assert!(evs
            .iter()
            .any(|e| e.track == Track::Rank(0) && e.name == "advance" && e.ts() == 10));
    }

    #[test]
    fn chrome_export_is_wellformed() {
        use kacc_trace::{Event, EventKind};
        let trace = vec![
            Event {
                track: Track::Rank(0),
                name: "advance",
                kind: EventKind::Instant { ts: 1000 },
                bytes: 0,
                class: None,
            },
            Event {
                track: Track::Rank(3),
                name: "pin:wait",
                kind: EventKind::Instant { ts: 2500 },
                bytes: 0,
                class: None,
            },
        ];
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("pin:wait"));
        kacc_trace::validate::validate_chrome_json(&json).expect("export validates");
        assert_eq!(chrome_trace_json(&[]), "[]");
    }

    #[test]
    fn many_threads_scale() {
        let mut sim = Sim::new(0u64);
        for _ in 0..128 {
            sim.spawn(|ctx| {
                for _ in 0..10 {
                    ctx.advance(7);
                }
                ctx.with_state(|count, _| *count += 1);
            });
        }
        let r = sim.run();
        assert_eq!(r.state, 128);
        assert_eq!(r.end_time, 70);
    }

    #[test]
    fn event_queue_orders_and_dedups() {
        let mut q = EventQueue::new(4);
        q.insert(0, 50, 1, 0);
        q.insert(1, 50, 2, 0);
        q.insert(2, 10, 3, 0);
        // Same-epoch duplicate at a later time: dropped.
        q.insert(2, 60, 4, 0);
        assert_eq!(q.peek(), Some((10, 3, 2, 0)));
        // Decrease-key: same epoch, earlier time.
        q.insert(1, 5, 5, 0);
        assert_eq!(q.pop(), Some((5, 5, 1, 0)));
        // Epoch replacement: later time but newer epoch wins the slot.
        q.insert(2, 90, 6, 1);
        assert_eq!(q.pop(), Some((50, 1, 0, 0)));
        assert_eq!(q.pop(), Some((90, 6, 2, 1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn event_queue_never_exceeds_one_entry_per_thread() {
        let mut q = EventQueue::new(3);
        for i in 0..100u64 {
            q.insert((i % 3) as usize, 1000 - i, i, i / 10);
        }
        assert!(q.heap.len() <= 3, "queue grew: {}", q.heap.len());
    }
}
