//! Thread-free discrete-event engine: rank bodies as polled tasks.
//!
//! The classic [`crate::Sim`] kernel runs every simulated rank as a
//! blocking closure on its own OS thread and hands the floor between
//! threads with condvars. That is convenient — rank bodies are ordinary
//! sequential Rust — but each floor transfer costs a futex round-trip
//! (~3–4 µs), which dominates handoff-bound workloads where the
//! direct-handoff fast path never applies (symmetric collectives tie
//! their wakes together).
//!
//! [`PolledSim`] removes the threads. Every rank is a [`RankTask`]: a
//! resumable state machine the single-threaded driver polls whenever the
//! event queue dispatches to it. Instead of parking on a condvar, a task
//! returns [`TaskPoll::Pending`] carrying the same `(label, wake_at)`
//! pair a blocking [`crate::Ctx::poll`] would park with; the driver runs
//! the *identical* epoch/sequence/fast-path bookkeeping inline and moves
//! on to the next event. Virtual-time behavior — dispatch order,
//! sequence numbers, event counts, trace instants — is bit-for-bit
//! identical to the threads engine by construction: both engines share
//! the same private [`KernelState`]/[`EventQueue`] types and the same
//! push/dispatch routines.
//!
//! Rank bodies are written as `async` blocks awaiting the leaf futures
//! in this module ([`sim_poll`], [`sim_advance`]) — the compiler derives
//! the state machine. Hand-rolled [`RankTask`] impls are also accepted
//! for bodies that want explicit control over their states.
//!
//! ```
//! use kacc_sim_core::polled::{sim_advance, sim_with_state, PolledSim};
//!
//! let mut sim = PolledSim::new(0u64);
//! for _ in 0..4 {
//!     sim.spawn(|_tid| async {
//!         sim_advance::<u64>(10).await;
//!         sim_with_state(|count: &mut u64, _now| *count += 1);
//!     });
//! }
//! let r = sim.run();
//! assert_eq!(r.state, 4);
//! assert_eq!(r.end_time, 10);
//! ```

use crate::{
    flush_run_metrics, EventQueue, Kernel, KernelState, Poll, RunReport, SharedBuffer,
    SimRunMetrics, SimTime, ThreadPhase, ThreadSlot, Tracer, Waker, TOTAL_EVENTS, TOTAL_FAST,
};
use kacc_trace::Track;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::task;

/// What a [`RankTask`] reports back to the driver after one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// The rank body ran to completion.
    Done,
    /// The task is blocked — the polled analogue of parking inside
    /// [`crate::Ctx::poll`]. `label` names the operation for deadlock
    /// dumps and dispatch traces; `wake_at` optionally schedules a
    /// self-wake (external [`Waker::wake_at`] calls can always wake the
    /// task earlier).
    Pending {
        /// Operation name, as a blocking poll's label.
        label: &'static str,
        /// Optional self-wake timer (must not be in the past).
        wake_at: Option<SimTime>,
    },
}

/// A resumable rank body driven by [`PolledSim`].
///
/// `poll_task` is invoked exactly when the threads engine would have
/// handed the rank's OS thread the floor: once at t=0 (the seeded start
/// event) and once per subsequent dispatch — timer expiry, external
/// wake, or direct-handoff fast path. Between polls the task must hold
/// all of its progress in `self`.
pub trait RankTask<S> {
    /// Advance the task as far as it can go without blocking.
    fn poll_task(&mut self, cx: &mut TaskCtx<'_, S>) -> TaskPoll;
}

/// Per-poll context handed to [`RankTask::poll_task`].
pub struct TaskCtx<'a, S> {
    shared: &'a Rc<PolledShared<S>>,
    tid: usize,
}

impl<S: 'static> TaskCtx<'_, S> {
    /// Index of this task (spawn order) — the polled analogue of
    /// [`crate::Ctx::tid`].
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.st.borrow().now
    }

    /// Run `f` atomically against the shared state (non-blocking), as
    /// [`crate::Ctx::with_state`].
    pub fn with_state<T>(&mut self, f: impl FnOnce(&mut S, SimTime) -> T) -> T {
        let mut st = self.shared.st.borrow_mut();
        let st = &mut *st;
        f(&mut st.user, st.now)
    }

    /// Evaluate one poll closure against the shared state, applying any
    /// wakes it requests — exactly one evaluation of the loop body of
    /// [`crate::Ctx::poll`]. A hand-written [`RankTask`] that receives
    /// [`Poll::Wait`] here should return the matching
    /// [`TaskPoll::Pending`] so the driver parks it; the closure will be
    /// re-evaluated (via a fresh `poll_op`) on the next dispatch.
    pub fn poll_op<T>(
        &mut self,
        f: &mut impl FnMut(&mut S, &mut Waker, SimTime) -> Poll<T>,
    ) -> Poll<T> {
        self.shared.eval(f)
    }
}

/// A scheduled-but-not-yet-applied park request from a leaf future.
#[derive(Clone, Copy)]
struct PendingWait {
    label: &'static str,
    wake_at: Option<SimTime>,
}

/// Kernel state shared between the driver and the leaf futures of the
/// tasks it polls. Single-threaded by design: `Rc` + `RefCell` replace
/// the threads engine's `Arc<Mutex<..>>`.
struct PolledShared<S> {
    st: RefCell<KernelState<S>>,
    /// Set by the innermost leaf future that returned `Pending`; taken
    /// by the task adapter to build its [`TaskPoll::Pending`].
    pending: Cell<Option<PendingWait>>,
}

impl<S: 'static> PolledShared<S> {
    /// One evaluation of a poll closure: identical to the evaluation
    /// step inside [`crate::Ctx::poll`] — take the wake buffer, run the
    /// closure, push the wakes it requested against each target's
    /// *current* epoch, recycle the buffer.
    fn eval<T>(&self, f: &mut impl FnMut(&mut S, &mut Waker, SimTime) -> Poll<T>) -> Poll<T> {
        let mut guard = self.st.borrow_mut();
        let st = &mut *guard;
        let now = st.now;
        st.wake_gen += 1;
        let mut waker = Waker {
            pending: std::mem::take(&mut st.wake_buf),
            slots: std::mem::take(&mut st.wake_slots),
            gen: st.wake_gen,
            raw: 0,
            coalesced: 0,
        };
        let outcome = f(&mut st.user, &mut waker, now);
        for &(tid, at) in &waker.pending {
            let epoch = st.threads[tid].epoch;
            Kernel::push_event(st, at, tid, epoch);
        }
        st.metrics.wakes_raw += waker.raw;
        st.metrics.wakes_coalesced += waker.coalesced;
        if !waker.pending.is_empty() {
            st.metrics.wake_fanout.record(waker.pending.len() as u64);
        }
        waker.pending.clear();
        st.wake_buf = waker.pending;
        st.wake_slots = waker.slots;
        outcome
    }
}

// ---------------------------------------------------------------------
// Task-local scope: lets leaf futures find the kernel without threading
// a handle through every async call.
// ---------------------------------------------------------------------

struct Scope {
    shared: Rc<dyn Any>,
    tid: usize,
}

thread_local! {
    /// Stack of active polled scopes (a stack so a polled sim can run
    /// inside another sim's host thread, e.g. in tests).
    static SCOPE: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
}

/// Pushes a scope on construction, pops it on drop (unwind-safe).
struct ScopeGuard;

impl ScopeGuard {
    fn enter(shared: Rc<dyn Any>, tid: usize) -> ScopeGuard {
        SCOPE.with(|s| s.borrow_mut().push(Scope { shared, tid }));
        ScopeGuard
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn current<S: 'static>() -> (Rc<PolledShared<S>>, usize) {
    SCOPE.with(|s| {
        let scopes = s.borrow();
        let scope = scopes
            .last()
            .expect("sim leaf used outside a PolledSim task poll");
        let shared = Rc::clone(&scope.shared)
            .downcast::<PolledShared<S>>()
            .unwrap_or_else(|_| panic!("sim leaf state type does not match the running PolledSim"));
        (shared, scope.tid)
    })
}

/// Index of the task currently being polled (spawn order) — the polled
/// analogue of [`crate::Ctx::tid`]. Callable from inside a task body.
pub fn sim_tid() -> usize {
    SCOPE.with(|s| {
        s.borrow()
            .last()
            .expect("sim_tid used outside a PolledSim task poll")
            .tid
    })
}

/// Current virtual time — the polled analogue of [`crate::Ctx::now`].
pub fn sim_now<S: 'static>() -> SimTime {
    let (shared, _) = current::<S>();
    let now = shared.st.borrow().now;
    now
}

/// Run `f` atomically against the shared state — the polled analogue of
/// [`crate::Ctx::with_state`]. Non-blocking, evaluates exactly once.
pub fn sim_with_state<S: 'static, T>(f: impl FnOnce(&mut S, SimTime) -> T) -> T {
    let (shared, _) = current::<S>();
    let mut guard = shared.st.borrow_mut();
    let st = &mut *guard;
    f(&mut st.user, st.now)
}

/// Leaf future mirroring [`crate::Ctx::poll`]: evaluates `f` once per
/// driver dispatch until it returns [`Poll::Ready`]. On [`Poll::Wait`]
/// the future returns `Pending` and the driver parks the task with this
/// leaf's `(label, wake_at)` — exactly where the blocking engine would
/// park the rank thread.
pub fn sim_poll<S, T, F>(label: &'static str, f: F) -> SimPollFuture<S, T, F>
where
    S: 'static,
    F: FnMut(&mut S, &mut Waker, SimTime) -> Poll<T>,
{
    SimPollFuture {
        label,
        f,
        _types: PhantomData,
    }
}

/// Future returned by [`sim_poll`].
pub struct SimPollFuture<S, T, F> {
    label: &'static str,
    f: F,
    _types: PhantomData<fn(&mut S) -> T>,
}

impl<S, T, F> Future for SimPollFuture<S, T, F>
where
    S: 'static,
    F: FnMut(&mut S, &mut Waker, SimTime) -> Poll<T> + Unpin,
{
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut task::Context<'_>) -> task::Poll<T> {
        let this = self.get_mut();
        let (shared, _) = current::<S>();
        match shared.eval(&mut this.f) {
            Poll::Ready(v) => task::Poll::Ready(v),
            Poll::Wait { wake_at } => {
                shared.pending.set(Some(PendingWait {
                    label: this.label,
                    wake_at,
                }));
                task::Poll::Pending
            }
        }
    }
}

/// Charge `dt` nanoseconds of virtual time to this task — the polled
/// analogue of [`crate::Ctx::advance`] (same closure, same label, same
/// lazily-captured deadline).
pub async fn sim_advance<S: 'static>(dt: SimTime) {
    let mut deadline = None;
    sim_poll("advance", move |_s: &mut S, _w, now| {
        let d = *deadline.get_or_insert(now + dt);
        if now >= d {
            Poll::Ready(())
        } else {
            Poll::Wait { wake_at: Some(d) }
        }
    })
    .await
}

/// Adapter: a boxed future is a [`RankTask`]. The compiler-derived
/// state machine of an `async` block is exactly the resumable step
/// machine the driver wants; this adapter installs the task-local scope
/// for the leaf futures and translates `Pending` into the park request
/// the innermost leaf recorded.
struct BoxTask {
    fut: Pin<Box<dyn Future<Output = ()>>>,
}

impl<S: 'static> RankTask<S> for BoxTask {
    fn poll_task(&mut self, cx: &mut TaskCtx<'_, S>) -> TaskPoll {
        let _scope = ScopeGuard::enter(Rc::clone(cx.shared) as Rc<dyn Any>, cx.tid);
        let waker = task::Waker::noop();
        let mut fcx = task::Context::from_waker(waker);
        match self.fut.as_mut().poll(&mut fcx) {
            task::Poll::Ready(()) => TaskPoll::Done,
            task::Poll::Pending => {
                let pw = cx.shared.pending.take().expect(
                    "task returned Pending without blocking on a sim leaf \
                     (await sim_poll/sim_advance, not foreign futures)",
                );
                TaskPoll::Pending {
                    label: pw.label,
                    wake_at: pw.wake_at,
                }
            }
        }
    }
}

/// A thread-free simulation under construction: create, spawn tasks,
/// run. The builder API mirrors [`crate::Sim`]; the engines are
/// interchangeable for any rank body expressible in both forms, and the
/// engine-equivalence suite pins their outputs bitwise.
pub struct PolledSim<S: 'static> {
    state: Option<S>,
    pending: Vec<Box<dyn RankTask<S>>>,
    tracer: Tracer,
    capture: Option<SharedBuffer>,
    fast_path: bool,
}

impl<S: 'static> PolledSim<S> {
    /// Create a simulation owning the shared machine state.
    pub fn new(state: S) -> PolledSim<S> {
        PolledSim {
            state: Some(state),
            pending: Vec::new(),
            tracer: Tracer::off(),
            capture: None,
            fast_path: true,
        }
    }

    /// Record every scheduler dispatch into [`RunReport::trace`], as
    /// [`crate::Sim::enable_trace`].
    pub fn enable_trace(&mut self) {
        let (tracer, buf) = Tracer::buffered();
        self.tracer = tracer;
        self.capture = Some(buf);
    }

    /// Send scheduler-dispatch events to an external [`Tracer`], as
    /// [`crate::Sim::set_tracer`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.capture = None;
    }

    /// Enable or disable the direct-handoff fast path (default: on) —
    /// same bookkeeping as [`crate::Sim::set_fast_path`]. In the polled
    /// engine the "handoff" is an inline re-poll rather than a condvar
    /// transfer, but epochs/sequence numbers advance identically so the
    /// dispatch order is pinned either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Register a rank body as an `async` block. `f` receives the tid
    /// (spawn order) and returns the future to drive; the body runs its
    /// first steps at t=0 in spawn order, as [`crate::Sim::spawn`].
    pub fn spawn<Fut>(&mut self, f: impl FnOnce(usize) -> Fut) -> usize
    where
        Fut: Future<Output = ()> + 'static,
    {
        let tid = self.pending.len();
        self.pending.push(Box::new(BoxTask {
            fut: Box::pin(f(tid)),
        }));
        tid
    }

    /// Register a hand-written [`RankTask`] state machine.
    pub fn spawn_task(&mut self, task: Box<dyn RankTask<S>>) -> usize {
        let tid = self.pending.len();
        self.pending.push(task);
        tid
    }

    /// Run the simulation to completion on the calling thread — no
    /// worker threads, no condvars, one task poll per dispatched event.
    /// Panics (with the failing task's message) if any task panicked or
    /// the simulation deadlocked, with the same messages the threads
    /// engine produces.
    pub fn run(mut self) -> RunReport<S> {
        let n = self.pending.len();
        let shared = Rc::new(PolledShared {
            st: RefCell::new(KernelState {
                now: 0,
                seq: 0,
                queue: EventQueue::new(n),
                threads: (0..n)
                    .map(|_| ThreadSlot {
                        phase: ThreadPhase::Starting,
                        epoch: 0,
                        go: false,
                        label: "start",
                        finish_time: None,
                    })
                    .collect(),
                live: n,
                user: self.state.take().expect("run called once"),
                panic_msg: None,
                all_done: false,
                dispatches: 0,
                fast_handoffs: 0,
                wake_buf: Vec::new(),
                wake_slots: Vec::new(),
                wake_gen: 0,
                fast_path: self.fast_path,
                metrics: SimRunMetrics::default(),
                tracer: self.tracer.clone(),
            }),
            pending: Cell::new(None),
        });

        // Seed start events in spawn order, as `Sim::run`.
        {
            let mut guard = shared.st.borrow_mut();
            let st = &mut *guard;
            for tid in 0..n {
                Kernel::push_event(st, 0, tid, 0);
            }
        }

        let mut tasks: Vec<Option<Box<dyn RankTask<S>>>> =
            self.pending.drain(..).map(Some).collect();

        'outer: loop {
            // Dispatch: pick the next runnable task and advance the
            // clock — the single-threaded analogue of `Kernel::dispatch`
            // (same stale-event discard, same deadlock dump).
            let tid = {
                let mut guard = shared.st.borrow_mut();
                let st = &mut *guard;
                loop {
                    let Some((t, _seq, tid, epoch)) = st.queue.peek() else {
                        if st.live == 0 {
                            st.all_done = true;
                            break 'outer;
                        }
                        let dump: Vec<String> = st
                            .threads
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.phase != ThreadPhase::Finished)
                            .map(|(i, s)| format!("  thread {i}: {:?} on '{}'", s.phase, s.label))
                            .collect();
                        st.panic_msg = Some(format!(
                            "simulation deadlock at t={}ns: {} live thread(s) blocked with no pending events\n{}",
                            st.now,
                            st.live,
                            dump.join("\n")
                        ));
                        st.all_done = true;
                        break 'outer;
                    };
                    st.queue.pop();
                    let slot = &mut st.threads[tid];
                    // Discard stale wakes (task re-parked or finished since).
                    if slot.phase == ThreadPhase::Finished || slot.epoch != epoch {
                        continue;
                    }
                    debug_assert!(t >= st.now, "event queue went backwards");
                    st.now = t;
                    st.dispatches += 1;
                    slot.phase = ThreadPhase::Running;
                    st.tracer.instant(Track::Rank(tid), slot.label, t);
                    break tid;
                }
            };

            // Poll: drive the dispatched task, absorbing direct-handoff
            // re-polls inline (the fast path of `Ctx::poll`).
            loop {
                shared.pending.set(None);
                let task = tasks[tid].as_mut().expect("dispatched task is live");
                let mut cx = TaskCtx {
                    shared: &shared,
                    tid,
                };
                let polled = catch_unwind(AssertUnwindSafe(|| task.poll_task(&mut cx)));
                match polled {
                    Err(p) => {
                        let msg = p
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "non-string panic".to_string());
                        let mut guard = shared.st.borrow_mut();
                        let st = &mut *guard;
                        st.threads[tid].phase = ThreadPhase::Finished;
                        st.threads[tid].finish_time = Some(st.now);
                        st.live -= 1;
                        if st.panic_msg.is_none() {
                            st.panic_msg = Some(format!("simulated thread {tid} panicked: {msg}"));
                        }
                        st.all_done = true;
                        break 'outer;
                    }
                    Ok(TaskPoll::Done) => {
                        let mut guard = shared.st.borrow_mut();
                        let st = &mut *guard;
                        st.threads[tid].phase = ThreadPhase::Finished;
                        st.threads[tid].finish_time = Some(st.now);
                        st.live -= 1;
                        tasks[tid] = None;
                        continue 'outer;
                    }
                    Ok(TaskPoll::Pending { label, wake_at }) => {
                        let mut guard = shared.st.borrow_mut();
                        let st = &mut *guard;
                        let now = st.now;
                        if let Some(at) = wake_at {
                            debug_assert!(
                                at >= now,
                                "poll('{label}') timer in the past: t={at}ns but now={now}ns"
                            );
                            let t = at.max(now);
                            // Purge stale heads so they can't force a
                            // needless slow handoff (as `Ctx::poll`).
                            if st.fast_path {
                                while let Some((_, _, qtid, qe)) = st.queue.peek() {
                                    let s = &st.threads[qtid];
                                    if s.phase == ThreadPhase::Finished || s.epoch != qe {
                                        st.queue.pop();
                                    } else {
                                        break;
                                    }
                                }
                            }
                            // Direct-handoff fast path: our own timer is
                            // strictly earliest — advance the clock in
                            // place and re-poll, same bookkeeping as the
                            // blocking engine's in-place re-evaluation.
                            if st.fast_path && st.queue.peek().is_none_or(|(qt, ..)| qt > t) {
                                st.threads[tid].epoch += 1;
                                st.threads[tid].label = label;
                                st.seq += 1;
                                st.now = t;
                                st.dispatches += 1;
                                st.fast_handoffs += 1;
                                st.tracer.instant(Track::Rank(tid), label, t);
                                continue;
                            }
                        }
                        st.threads[tid].epoch += 1;
                        st.threads[tid].phase = ThreadPhase::Parked;
                        st.threads[tid].label = label;
                        let epoch = st.threads[tid].epoch;
                        if let Some(at) = wake_at {
                            Kernel::push_event(st, at, tid, epoch);
                        }
                        continue 'outer;
                    }
                }
            }
        }

        // Drop the task state machines before unwrapping the kernel (a
        // task's locals may hold leaf futures; none hold the Rc).
        drop(tasks);
        let shared = Rc::try_unwrap(shared)
            .ok()
            .expect("all task scopes dropped at run end");
        let st = shared.st.into_inner();
        if let Some(msg) = st.panic_msg {
            panic!("{msg}");
        }
        TOTAL_EVENTS.fetch_add(st.dispatches, Ordering::Relaxed);
        TOTAL_FAST.fetch_add(st.fast_handoffs, Ordering::Relaxed);
        let metrics = st.run_metrics();
        flush_run_metrics(&metrics, st.dispatches);
        RunReport {
            end_time: st.now,
            events: st.dispatches,
            metrics,
            finish_times: st
                .threads
                .iter()
                .map(|t| t.finish_time.expect("finished task has time"))
                .collect(),
            trace: self.capture.map(|b| b.take()).unwrap_or_default(),
            state: st.user,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{chrome_trace_json, Sim};

    #[test]
    fn single_task_advances_time() {
        let mut sim = PolledSim::new(());
        sim.spawn(|_tid| async {
            assert_eq!(sim_now::<()>(), 0);
            sim_advance::<()>(100).await;
            assert_eq!(sim_now::<()>(), 100);
            sim_advance::<()>(0).await;
            assert_eq!(sim_now::<()>(), 100);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 100);
        assert_eq!(r.finish_times, vec![100]);
        assert!(r.events > 0);
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let go = || {
            let mut sim = PolledSim::new(Vec::<(usize, SimTime)>::new());
            for tid in 0..4 {
                sim.spawn(move |_| async move {
                    for _ in 0..3 {
                        sim_advance::<Vec<(usize, SimTime)>>(10 + tid as u64).await;
                        sim_with_state(|log: &mut Vec<(usize, SimTime)>, now| log.push((tid, now)));
                    }
                });
            }
            sim.run().state
        };
        let a = go();
        let b = go();
        assert_eq!(a, b);
        assert_eq!(a[0], (0, 10));
    }

    #[test]
    fn poll_sees_external_wakes() {
        let mut sim = PolledSim::new((false, 0usize));
        let waiter = 1usize;
        sim.spawn(move |_| async move {
            sim_advance::<(bool, usize)>(50).await;
            sim_with_state(|s: &mut (bool, usize), _| s.0 = true);
            sim_poll("signal", move |_: &mut (bool, usize), w, now| {
                w.wake_at(waiter, now);
                Poll::Ready(())
            })
            .await;
        });
        sim.spawn(|_| async {
            sim_poll("wait flag", |s: &mut (bool, usize), _w, _now| {
                if s.0 {
                    Poll::Ready(())
                } else {
                    s.1 += 1;
                    Poll::Wait { wake_at: None }
                }
            })
            .await;
            assert_eq!(sim_now::<(bool, usize)>(), 50);
        });
        let r = sim.run();
        assert_eq!(r.end_time, 50);
        // The waiter's closure ran once to block and once to complete.
        assert_eq!(r.state.1, 1);
    }

    #[test]
    fn premature_wakes_reblock() {
        let mut sim = PolledSim::new(());
        let sleeper = 0usize;
        sim.spawn(|_| async {
            sim_advance::<()>(1000).await;
            assert_eq!(sim_now::<()>(), 1000);
        });
        sim.spawn(move |_| async move {
            for t in [10u64, 20, 30] {
                sim_poll("spur", move |_: &mut (), w, now| {
                    w.wake_at(sleeper, now.max(t));
                    Poll::Ready(())
                })
                .await;
                sim_advance::<()>(5).await;
            }
        });
        let r = sim.run();
        assert_eq!(r.finish_times[0], 1000);
    }

    #[test]
    fn hand_written_rank_task_runs() {
        // A two-state machine: advance 25ns, then bump the counter. The
        // deadline latches on first poll — task state must live in the
        // machine, not be recomputed per re-poll.
        enum Steps {
            Sleep,
            Tally,
        }
        struct Machine {
            step: Steps,
            deadline: Option<SimTime>,
        }
        impl RankTask<u64> for Machine {
            fn poll_task(&mut self, cx: &mut TaskCtx<'_, u64>) -> TaskPoll {
                loop {
                    match self.step {
                        Steps::Sleep => {
                            let deadline = *self.deadline.get_or_insert(cx.now() + 25);
                            let wait = cx.poll_op(&mut |_: &mut u64, _w, now| {
                                if now >= deadline {
                                    Poll::Ready(())
                                } else {
                                    Poll::Wait {
                                        wake_at: Some(deadline),
                                    }
                                }
                            });
                            match wait {
                                Poll::Ready(()) => self.step = Steps::Tally,
                                Poll::Wait { wake_at } => {
                                    return TaskPoll::Pending {
                                        label: "sleep",
                                        wake_at,
                                    }
                                }
                            }
                        }
                        Steps::Tally => {
                            cx.with_state(|count, _| *count += 1);
                            return TaskPoll::Done;
                        }
                    }
                }
            }
        }
        let mut sim = PolledSim::new(0u64);
        sim.spawn_task(Box::new(Machine {
            step: Steps::Sleep,
            deadline: None,
        }));
        sim.spawn_task(Box::new(Machine {
            step: Steps::Sleep,
            deadline: None,
        }));
        let r = sim.run();
        assert_eq!(r.state, 2);
        assert_eq!(r.end_time, 25);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = PolledSim::new(());
        sim.spawn(|_| async {
            sim_poll::<(), (), _>("forever", |_, _, _| Poll::Wait { wake_at: None }).await;
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "thread 0 panicked: boom")]
    fn task_panics_propagate() {
        let mut sim = PolledSim::new(());
        sim.spawn(|_| async { panic!("boom") });
        sim.spawn(|_| async {
            sim_advance::<()>(10).await;
        });
        sim.run();
    }

    #[test]
    fn matches_threads_engine_bitwise() {
        // The same interleaving program on both engines, fast path on
        // and off: identical logs, clocks, event counts, and traces.
        type Log = Vec<(usize, SimTime)>;
        let threads = |fast: bool| {
            let mut sim = Sim::new(Log::new());
            sim.enable_trace();
            sim.set_fast_path(fast);
            for tid in 0..6 {
                sim.spawn(move |ctx| {
                    for _ in 0..4 {
                        ctx.advance(7 + tid as u64 * 3);
                        ctx.with_state(|log, now| log.push((tid, now)));
                    }
                });
            }
            let r = sim.run();
            (
                r.state,
                r.end_time,
                r.finish_times,
                r.events,
                chrome_trace_json(&r.trace),
            )
        };
        let polled = |fast: bool| {
            let mut sim = PolledSim::new(Log::new());
            sim.enable_trace();
            sim.set_fast_path(fast);
            for tid in 0..6 {
                sim.spawn(move |_| async move {
                    for _ in 0..4 {
                        sim_advance::<Log>(7 + tid as u64 * 3).await;
                        sim_with_state(|log: &mut Log, now| log.push((tid, now)));
                    }
                });
            }
            let r = sim.run();
            (
                r.state,
                r.end_time,
                r.finish_times,
                r.events,
                chrome_trace_json(&r.trace),
            )
        };
        let reference = threads(true);
        assert_eq!(reference, threads(false));
        assert_eq!(reference, polled(true));
        assert_eq!(reference, polled(false));
    }

    #[test]
    fn mailboxes_work_identically() {
        use crate::Mailboxes;
        let threads = || {
            let mut sim = Sim::new(Mailboxes::new());
            sim.spawn(|ctx| {
                ctx.advance(10);
                ctx.poll("send", |m: &mut Mailboxes, w, now| {
                    m.deposit(w, 1, 0, 7, now + 25, b"hi".to_vec());
                    Poll::Ready(())
                });
            });
            sim.spawn(|ctx| {
                let tid = ctx.tid();
                let msg = ctx.poll("recv", move |m: &mut Mailboxes, _w, now| {
                    m.take(tid, 1, 0, 7, now)
                });
                assert_eq!(msg, b"hi");
            });
            let r = sim.run();
            (r.end_time, r.finish_times, r.events)
        };
        let polled = || {
            let mut sim = PolledSim::new(Mailboxes::new());
            sim.spawn(|_| async {
                sim_advance::<Mailboxes>(10).await;
                sim_poll("send", |m: &mut Mailboxes, w, now| {
                    m.deposit(w, 1, 0, 7, now + 25, b"hi".to_vec());
                    Poll::Ready(())
                })
                .await;
            });
            sim.spawn(|tid| async move {
                let msg = sim_poll("recv", move |m: &mut Mailboxes, _w, now| {
                    m.take(tid, 1, 0, 7, now)
                })
                .await;
                assert_eq!(msg, b"hi");
            });
            let r = sim.run();
            (r.end_time, r.finish_times, r.events)
        };
        assert_eq!(threads(), polled());
    }

    #[test]
    fn external_tracer_receives_dispatches() {
        let (tracer, buf) = Tracer::buffered();
        let mut sim = PolledSim::new(());
        sim.set_tracer(tracer);
        sim.spawn(|_| async {
            sim_advance::<()>(10).await;
        });
        let r = sim.run();
        assert!(r.trace.is_empty());
        let evs = buf.take();
        assert!(evs
            .iter()
            .any(|e| e.track == Track::Rank(0) && e.name == "advance" && e.ts() == 10));
    }

    #[test]
    fn many_tasks_scale_without_threads() {
        let mut sim = PolledSim::new(0u64);
        for _ in 0..512 {
            sim.spawn(|_| async {
                for _ in 0..10 {
                    sim_advance::<u64>(7).await;
                }
                sim_with_state(|count: &mut u64, _| *count += 1);
            });
        }
        let r = sim.run();
        assert_eq!(r.state, 512);
        assert_eq!(r.end_time, 70);
    }
}
