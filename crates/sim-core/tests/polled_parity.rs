//! Property-based engine-parity suite: arbitrary interleavings of
//! advances and cross-thread wakes produce bit-identical runs on the
//! threads engine ([`Sim`]) and the thread-free engine
//! ([`kacc_sim_core::polled::PolledSim`]), with the direct-handoff fast
//! path on or off — and no interleaving of premature wakes ever starves
//! a ready task (the final gate thread would deadlock if a wake were
//! lost, failing the case).

use kacc_sim_core::polled::{sim_advance, sim_poll, sim_with_state, PolledSim};
use kacc_sim_core::{Poll, Sim, SimTime};
use proptest::prelude::*;

/// One simulated thread's scripted behavior: a list of
/// `(advance_ns, wake?, target_offset, wake_delta_ns)` ops followed by
/// the rendezvous (workers bump the counter and wake the gate; thread 0
/// waits untimed until every worker has checked in).
type Prog = Vec<(u64, bool, usize, u64)>;

#[derive(Default)]
struct Shared {
    count: usize,
    log: Vec<(usize, SimTime)>,
}

type Fingerprint = (Vec<(usize, SimTime)>, SimTime, Vec<SimTime>, u64);

fn run_threads(progs: &[Prog], fast: bool) -> Fingerprint {
    let n = progs.len();
    let mut sim = Sim::new(Shared::default());
    sim.set_fast_path(fast);
    for (tid, prog) in progs.iter().enumerate() {
        let prog = prog.clone();
        sim.spawn(move |ctx| {
            for &(dt, wake, off, delta) in &prog {
                ctx.advance(dt);
                ctx.with_state(|s: &mut Shared, now| s.log.push((tid, now)));
                if wake {
                    let target = (tid + off) % n;
                    ctx.poll("wake", move |_s: &mut Shared, w, now| {
                        w.wake_at(target, now + delta);
                        Poll::Ready(())
                    });
                }
            }
            if tid == 0 {
                let goal = n - 1;
                ctx.poll("gate", move |s: &mut Shared, _w, _now| {
                    if s.count >= goal {
                        Poll::Ready(())
                    } else {
                        Poll::Wait { wake_at: None }
                    }
                });
            } else {
                ctx.with_state(|s: &mut Shared, _| s.count += 1);
                ctx.poll("ding", move |_s: &mut Shared, w, now| {
                    w.wake_at(0, now);
                    Poll::Ready(())
                });
            }
        });
    }
    let r = sim.run();
    (r.state.log, r.end_time, r.finish_times, r.events)
}

fn run_polled(progs: &[Prog], fast: bool) -> Fingerprint {
    let n = progs.len();
    let mut sim = PolledSim::new(Shared::default());
    sim.set_fast_path(fast);
    for prog in progs.iter() {
        let prog = prog.clone();
        sim.spawn(move |tid| async move {
            for &(dt, wake, off, delta) in &prog {
                sim_advance::<Shared>(dt).await;
                sim_with_state(|s: &mut Shared, now| s.log.push((tid, now)));
                if wake {
                    let target = (tid + off) % n;
                    sim_poll("wake", move |_s: &mut Shared, w, now| {
                        w.wake_at(target, now + delta);
                        Poll::Ready(())
                    })
                    .await;
                }
            }
            if tid == 0 {
                let goal = n - 1;
                sim_poll("gate", move |s: &mut Shared, _w, _now| {
                    if s.count >= goal {
                        Poll::Ready(())
                    } else {
                        Poll::Wait { wake_at: None }
                    }
                })
                .await;
            } else {
                sim_with_state(|s: &mut Shared, _| s.count += 1);
                sim_poll("ding", move |_s: &mut Shared, w, now| {
                    w.wake_at(0, now);
                    Poll::Ready(())
                })
                .await;
            }
        });
    }
    let r = sim.run();
    (r.state.log, r.end_time, r.finish_times, r.events)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_and_nothing_starves(
        progs in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..40, proptest::bool::ANY, 0usize..4, 0u64..30),
                0..8,
            ),
            2..5,
        ),
    ) {
        // Completion alone proves no wake was starved: thread 0's gate
        // has no timer, so a lost worker wake would deadlock-panic.
        let reference = run_threads(&progs, true);
        prop_assert_eq!(&reference, &run_threads(&progs, false));
        prop_assert_eq!(&reference, &run_polled(&progs, true));
        prop_assert_eq!(&reference, &run_polled(&progs, false));
    }
}
