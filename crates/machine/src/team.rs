//! Team harness: run one closure per simulated rank and collect results.

use crate::simcomm::SimComm;
use crate::state::{MachineState, RankStats, TransportCounters};
use kacc_fault::FaultHook;
use kacc_metrics::LocalHist;
use kacc_model::{ArchProfile, FabricParams};
use kacc_sim_core::{Sim, SimRunMetrics};
use kacc_trace::{Event, Tracer};
use std::sync::{Arc, Mutex, OnceLock};

/// Timing and accounting from a completed team run.
///
/// `PartialEq` compares every field, so the determinism suite can assert
/// whole runs bitwise-identical across repeats and job counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamRun {
    /// Virtual time when the last rank finished, ns.
    pub end_ns: u64,
    /// Per-rank finish times, ns.
    pub finish_ns: Vec<u64>,
    /// Per-rank step accounting.
    pub stats: Vec<RankStats>,
    /// Peak concurrent flows each node's memory system saw.
    pub mem_peak_concurrency: Vec<usize>,
    /// Peak concurrency each page-lock server saw, indexed by rank.
    pub lock_peak_concurrency: Vec<usize>,
    /// Undelivered control messages left behind (should be 0 for clean
    /// protocols).
    pub mail_pending: usize,
    /// Simulated events the kernel dispatched for this run (fast-path
    /// hand-offs included) — the numerator of the events/sec metric.
    pub events: u64,
    /// Engine-level run metrics (queue traffic, wake fan-out). Identical
    /// between the threads and polled engines by construction; `PartialEq`
    /// on this struct makes the equivalence suite pin that.
    pub sim: SimRunMetrics,
    /// Queue-depth histogram merged across every page-lock server: one
    /// sample per pinning request, recording the active set it joined.
    pub lock_depth: LocalHist,
    /// Grant-time recomputations summed across all page-lock servers.
    pub lock_recaches: u64,
    /// Rate recomputations summed across all memory systems (node DRAM
    /// plus fabric egress/ingress links).
    pub mem_recaches: u64,
    /// Machine-wide per-transport traffic totals (shm + fallback paths;
    /// CMA traffic is in [`RankStats`]).
    pub transport: TransportCounters,
}

impl TeamRun {
    /// Aggregate step accounting across all ranks.
    pub fn total_stats(&self) -> RankStats {
        let mut total = RankStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }
}

/// Cached global-registry handles for the machine-layer metrics.
struct MachineHandles {
    lock_depth: kacc_metrics::Hist,
    lock_recaches: kacc_metrics::Counter,
    mem_recaches: kacc_metrics::Counter,
    shm_ops: kacc_metrics::Counter,
    shm_bytes: kacc_metrics::Counter,
    fallback_ops: kacc_metrics::Counter,
    fallback_bytes: kacc_metrics::Counter,
    cma_ops: kacc_metrics::Counter,
    cma_bytes: kacc_metrics::Counter,
}

fn machine_handles() -> &'static MachineHandles {
    static H: OnceLock<MachineHandles> = OnceLock::new();
    H.get_or_init(|| MachineHandles {
        lock_depth: kacc_metrics::hist("machine.lock.queue_depth"),
        lock_recaches: kacc_metrics::counter("machine.lock.recaches"),
        mem_recaches: kacc_metrics::counter("machine.mem.recaches"),
        shm_ops: kacc_metrics::counter("machine.transport.shm.ops"),
        shm_bytes: kacc_metrics::counter("machine.transport.shm.bytes"),
        fallback_ops: kacc_metrics::counter("machine.transport.fallback.ops"),
        fallback_bytes: kacc_metrics::counter("machine.transport.fallback.bytes"),
        cma_ops: kacc_metrics::counter("machine.transport.cma.ops"),
        cma_bytes: kacc_metrics::counter("machine.transport.cma.bytes"),
    })
}

/// Assemble a [`TeamRun`] from the final machine state and flush the
/// machine-layer metrics into the global registry. Shared by the threads
/// harness below and the polled harness in [`crate::polled`], so both
/// engines account identically by construction.
pub(crate) fn finish_team_run(
    st: &MachineState,
    end_ns: u64,
    finish_ns: Vec<u64>,
    events: u64,
    sim: SimRunMetrics,
) -> TeamRun {
    let mut lock_depth = LocalHist::default();
    let mut lock_recaches = 0u64;
    for l in &st.locks {
        lock_depth.merge(&l.depth);
        lock_recaches += l.recaches;
    }
    let mut mem_recaches: u64 = st.mems.iter().map(|m| m.recaches).sum();
    if let Some(net) = &st.net {
        mem_recaches += net
            .egress
            .iter()
            .chain(net.ingress.iter())
            .map(|m| m.recaches)
            .sum::<u64>();
    }
    let run = TeamRun {
        end_ns,
        finish_ns,
        stats: st.stats.clone(),
        mem_peak_concurrency: st.mems.iter().map(|m| m.peak_concurrency).collect(),
        lock_peak_concurrency: st.locks.iter().map(|l| l.peak_concurrency).collect(),
        mail_pending: st.mail.pending(),
        events,
        sim,
        lock_depth,
        lock_recaches,
        mem_recaches,
        transport: st.transport,
    };
    let h = machine_handles();
    h.lock_depth.merge_local(&run.lock_depth);
    h.lock_recaches.add(run.lock_recaches);
    h.mem_recaches.add(run.mem_recaches);
    h.shm_ops.add(run.transport.shm_ops);
    h.shm_bytes.add(run.transport.shm_bytes);
    h.fallback_ops.add(run.transport.fallback_ops);
    h.fallback_bytes.add(run.transport.fallback_bytes);
    let total = run.total_stats();
    h.cma_ops.add(total.cma_ops);
    h.cma_bytes.add(total.bytes_read + total.bytes_written);
    run
}

/// Run `f` on every rank of a simulated `nranks`-process node and return
/// the timing report plus each rank's return value (indexed by rank).
///
/// The closure runs inside the deterministic simulator: any `Comm` call
/// advances virtual time according to the machine model. Wall-clock
/// determinism holds for a fixed (arch, nranks, f).
pub fn run_team<R, F>(arch: &ArchProfile, nranks: usize, f: F) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    run_machine(MachineState::new(arch.clone(), nranks), f)
}

/// [`run_team`] with phantom (length-only) buffers: identical virtual
/// timing, no data plane — the memory-safe choice for large measurement
/// sweeps where correctness is covered elsewhere.
pub fn run_team_phantom<R, F>(arch: &ArchProfile, nranks: usize, f: F) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    run_machine(
        MachineState::cluster_opts(arch.clone(), 1, nranks, None, true),
        f,
    )
}

/// [`run_team`] with tracing enabled: additionally returns the full
/// structured event stream — scheduler dispatches, copy-path phase spans
/// (syscall/check/lock/pin/copy), transport spans with tag-class
/// attribution, and lock-server queue-depth counters. Export with
/// [`kacc_trace::chrome_trace_json`] for a Perfetto timeline or aggregate
/// with [`kacc_trace::Breakdown`] for the Fig 2–4 tables.
pub fn run_team_traced<R, F>(
    arch: &ArchProfile,
    nranks: usize,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    run_machine_opts(MachineState::new(arch.clone(), nranks), true, f)
}

/// [`run_team`] with a fault injector installed: every transport
/// operation consults `hook` before executing. With
/// `FaultHook::off()` the run is bitwise-identical (virtual times and
/// payloads) to [`run_team`] — the zero-cost guard test pins this.
pub fn run_team_faulty<R, F>(
    arch: &ArchProfile,
    nranks: usize,
    hook: FaultHook,
    f: F,
) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let mut state = MachineState::new(arch.clone(), nranks);
    state.fault = hook;
    let (run, results, _) = run_machine_opts(state, false, f);
    (run, results)
}

/// [`run_team_faulty`] with tracing enabled, for observing `fault:*` /
/// `retry:*` / `fallback:*` recovery spans alongside the machine phases.
pub fn run_team_faulty_traced<R, F>(
    arch: &ArchProfile,
    nranks: usize,
    hook: FaultHook,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let mut state = MachineState::new(arch.clone(), nranks);
    state.fault = hook;
    run_machine_opts(state, true, f)
}

/// Run `f` on every rank of a simulated cluster of `nodes` identical
/// nodes with `ranks_per_node` processes each (see
/// [`MachineState::cluster`] for the rank placement).
pub fn run_cluster<R, F>(
    arch: &ArchProfile,
    nodes: usize,
    ranks_per_node: usize,
    fabric: FabricParams,
    f: F,
) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    run_machine(
        MachineState::cluster(arch.clone(), nodes, ranks_per_node, Some(fabric)),
        f,
    )
}

/// [`run_team`] with the kernel's direct-handoff fast path disabled:
/// every wake goes through the event queue and a condvar floor transfer.
///
/// Virtual-time behavior is identical by construction — the fast-path
/// equivalence suite compares this against [`run_team`] across all
/// collectives; it exists only for that comparison and for debugging.
pub fn run_team_no_fastpath<R, F>(arch: &ArchProfile, nranks: usize, f: F) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let (run, results, _) =
        run_machine_full(MachineState::new(arch.clone(), nranks), false, false, f);
    (run, results)
}

fn run_machine<R, F>(state: MachineState, f: F) -> (TeamRun, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let (run, results, _) = run_machine_opts(state, false, f);
    (run, results)
}

fn run_machine_opts<R, F>(state: MachineState, trace: bool, f: F) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    run_machine_full(state, trace, true, f)
}

fn run_machine_full<R, F>(
    mut state: MachineState,
    trace: bool,
    fast_path: bool,
    f: F,
) -> (TeamRun, Vec<R>, Vec<Event>)
where
    F: Fn(&mut SimComm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    // One buffered tracer shared by the scheduler (dispatch instants) and
    // the machine model (phase spans, queue-depth counters), so all layers
    // land in a single correlated event stream.
    let capture = trace.then(|| {
        let (tracer, buf) = Tracer::buffered();
        state.tracer = tracer.clone();
        (tracer, buf)
    });
    let nranks = state.nranks;
    let mut sim = Sim::new(state);
    sim.set_fast_path(fast_path);
    if let Some((tracer, _)) = &capture {
        sim.set_tracer(tracer.clone());
    }
    let f = Arc::new(f);
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    for rank in 0..nranks {
        let f = Arc::clone(&f);
        let results = Arc::clone(&results);
        sim.spawn(move |ctx| {
            let mut comm = SimComm::new(ctx, rank);
            let r = f(&mut comm);
            results
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)[rank] = Some(r);
        });
    }
    let report = sim.run();
    let trace = capture.map(|(_, buf)| buf.take()).unwrap_or_default();
    let st = report.state;
    let run = finish_team_run(
        &st,
        report.end_time,
        report.finish_times.clone(),
        report.events,
        report.metrics,
    );
    let results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("rank closures done"))
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (
        run,
        results
            .into_iter()
            .map(|r| r.expect("every rank returned"))
            .collect(),
        trace,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use kacc_comm::{Comm, CommExt, Tag};

    #[test]
    fn two_rank_cma_read_moves_data_and_time() {
        let arch = ArchProfile::broadwell();
        let (run, results) = run_team(&arch, 2, |comm| {
            if comm.rank() == 0 {
                // Expose a 2-page buffer of 0xAB and send the token.
                let buf = comm.alloc(8192);
                comm.write_local(buf, 0, &[0xAB; 8192]).unwrap();
                let tok = comm.expose(buf).unwrap();
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes()).unwrap();
                // Wait for the reader's completion notification.
                comm.wait_notify(1, Tag::user(2)).unwrap();
                Vec::new()
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(8192);
                comm.cma_read(tok, 0, dst, 0, 8192).unwrap();
                comm.notify(0, Tag::user(2)).unwrap();
                comm.read_all(dst).unwrap()
            }
        });
        assert_eq!(results[1], vec![0xAB; 8192]);
        assert_eq!(run.mail_pending, 0);
        // Cost sanity: at least syscall + check + 2 pages + copy.
        let a = &arch;
        let floor =
            (a.t_syscall_ns + a.t_permcheck_ns + 2.0 * a.l_ns() + 8192.0 * a.beta_ns_per_byte())
                as u64;
        assert!(run.end_ns >= floor, "end {} < floor {}", run.end_ns, floor);
        let s = &run.stats[1];
        assert!(s.lock_ns > 0.0 && s.pin_ns > 0.0 && s.copy_ns > 0.0);
        assert_eq!(s.bytes_read, 8192);
    }

    #[test]
    fn contention_inflates_one_to_all_reads() {
        // One-to-all: many ranks read *different* offsets of rank 0's
        // buffer concurrently — the Fig 2(c) pattern. Compare against a
        // single reader: per-reader latency must inflate superlinearly.
        let arch = ArchProfile::knl();
        let eta = 64 * 1024;
        let latency = |readers: usize| {
            let (_, durs) = run_team(&arch, readers + 1, move |comm| {
                if comm.rank() == 0 {
                    let buf = comm.alloc(eta * readers);
                    let tok = comm.expose(buf).unwrap();
                    for r in 1..=readers {
                        comm.ctrl_send(r, Tag::user(1), &tok.to_bytes()).unwrap();
                    }
                    for r in 1..=readers {
                        comm.wait_notify(r, Tag::user(2)).unwrap();
                    }
                    0u64
                } else {
                    let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                    let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                    let dst = comm.alloc(eta);
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, (comm.rank() - 1) * eta, dst, 0, eta)
                        .unwrap();
                    let d = comm.time_ns() - t0;
                    comm.notify(0, Tag::user(2)).unwrap();
                    d
                }
            });
            *durs.iter().skip(1).max().unwrap()
        };
        let t1 = latency(1);
        let t8 = latency(8);
        let t32 = latency(32);
        assert!(t8 > 2 * t1, "8 readers should contend: {t8} vs {t1}");
        assert!(t32 > 2 * t8, "32 readers superlinear: {t32} vs {t8}");
    }

    #[test]
    fn all_to_all_pattern_scales_without_lock_contention() {
        // Fig 2(a): distinct (reader, source) pairs — per-op latency
        // should stay nearly flat as pairs are added (only the shared
        // memory bandwidth saturates). Use a small message so bandwidth
        // sharing stays mild.
        let arch = ArchProfile::knl();
        let eta = 16 * 1024;
        let latency = |pairs: usize| {
            let p = 2 * pairs;
            let (_, durs) = run_team(&arch, p, move |comm| {
                let me = comm.rank();
                if me % 2 == 0 {
                    // Source: expose and wait.
                    let buf = comm.alloc(eta);
                    let tok = comm.expose(buf).unwrap();
                    comm.ctrl_send(me + 1, Tag::user(1), &tok.to_bytes())
                        .unwrap();
                    comm.wait_notify(me + 1, Tag::user(2)).unwrap();
                    0u64
                } else {
                    let raw = comm.ctrl_recv(me - 1, Tag::user(1)).unwrap();
                    let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                    let dst = comm.alloc(eta);
                    let t0 = comm.time_ns();
                    comm.cma_read(tok, 0, dst, 0, eta).unwrap();
                    let d = comm.time_ns() - t0;
                    comm.notify(me - 1, Tag::user(2)).unwrap();
                    d
                }
            });
            durs.iter().skip(1).step_by(2).copied().max().unwrap()
        };
        let t1 = latency(1);
        let t4 = latency(4);
        assert!(
            (t4 as f64) < 2.0 * t1 as f64,
            "independent pairs should not contend much: {t4} vs {t1}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let arch = ArchProfile::power8();
        let go = || {
            run_team(&arch, 16, |comm| {
                let me = comm.rank();
                let p = comm.size();
                let buf = comm.alloc(4096);
                comm.write_local(buf, 0, &[me as u8; 4096]).unwrap();
                let tok = comm.expose(buf).unwrap();
                let toks = kacc_comm::smcoll::sm_allgather(comm, &tok.to_bytes()).unwrap();
                let dst = comm.alloc(4096);
                let peer = (me + 1) % p;
                let t = kacc_comm::RemoteToken::from_bytes(&toks[peer]).unwrap();
                comm.cma_read(t, 0, dst, 0, 4096).unwrap();
                (comm.time_ns(), comm.read_all(dst).unwrap()[0])
            })
        };
        let (r1, v1) = go();
        let (r2, v2) = go();
        assert_eq!(v1, v2);
        assert_eq!(r1.end_ns, r2.end_ns);
        assert_eq!(r1.finish_ns, r2.finish_ns);
        // Data correctness: everyone read its ring neighbor's fill.
        for (me, (_, byte)) in v1.iter().enumerate() {
            assert_eq!(*byte as usize, (me + 1) % 16);
        }
    }

    #[test]
    fn traced_run_captures_timeline() {
        let arch = ArchProfile::broadwell();
        let (run, _, trace) = run_team_traced(&arch, 3, |comm| {
            let b = comm.alloc(8192);
            let tok = comm.expose(b).unwrap();
            let toks = kacc_comm::smcoll::sm_allgather(comm, &tok.to_bytes()).unwrap();
            let peer = (comm.rank() + 1) % 3;
            let t = kacc_comm::RemoteToken::from_bytes(&toks[peer]).unwrap();
            let dst = comm.alloc(8192);
            comm.cma_read(t, 0, dst, 0, 8192).unwrap();
        });
        assert!(run.end_ns > 0);
        assert!(!trace.is_empty());
        // Scheduler dispatch instants arrive in virtual-time order.
        let instants: Vec<&kacc_trace::Event> = trace
            .iter()
            .filter(|e| matches!(e.kind, kacc_trace::EventKind::Instant { .. }))
            .collect();
        assert!(!instants.is_empty());
        assert!(instants.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // The pin/copy dispatch labels of the CMA path must appear...
        assert!(trace.iter().any(|e| e.name == "pin:wait"));
        assert!(trace.iter().any(|e| e.name == "flow:wait"));
        // ...alongside the machine's phase spans and queue-depth counters.
        for phase in ["syscall", "check", "lock", "pin", "copy"] {
            assert!(
                trace.iter().any(
                    |e| e.name == phase && matches!(e.kind, kacc_trace::EventKind::Span { .. })
                ),
                "missing phase span {phase}"
            );
        }
        assert!(trace
            .iter()
            .any(|e| matches!(e.track, kacc_trace::Track::LockServer(_))
                && matches!(e.kind, kacc_trace::EventKind::Counter { .. })));
        // Transport spans carry the sm-collective tag class.
        assert!(trace
            .iter()
            .any(|e| e.name == "ctrl_send" && e.class.is_some()));
        let json = kacc_trace::chrome_trace_json(&trace);
        assert!(json.contains("pin:wait"));
        kacc_trace::validate::validate_chrome_json(&json).expect("trace export validates");
    }

    #[test]
    fn permission_denied_without_expose() {
        let (_, results) = run_team(&ArchProfile::broadwell(), 2, |comm| {
            if comm.rank() == 0 {
                let buf = comm.alloc(4096);
                // NOT exposed; ship a forged token anyway.
                let forged = kacc_comm::RemoteToken {
                    rank: 0,
                    token: buf.0,
                };
                comm.ctrl_send(1, Tag::user(1), &forged.to_bytes()).unwrap();
                comm.wait_notify(1, Tag::user(2)).unwrap();
                true
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(4096);
                let err = comm.cma_read(tok, 0, dst, 0, 4096).unwrap_err();
                comm.notify(0, Tag::user(2)).unwrap();
                err == kacc_comm::CommError::PermissionDenied
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn out_of_range_cma_is_rejected() {
        let (_, results) = run_team(&ArchProfile::broadwell(), 2, |comm| {
            if comm.rank() == 0 {
                let buf = comm.alloc(4096);
                let tok = comm.expose(buf).unwrap();
                comm.ctrl_send(1, Tag::user(1), &tok.to_bytes()).unwrap();
                comm.wait_notify(1, Tag::user(2)).unwrap();
                true
            } else {
                let raw = comm.ctrl_recv(0, Tag::user(1)).unwrap();
                let tok = kacc_comm::RemoteToken::from_bytes(&raw).unwrap();
                let dst = comm.alloc(8192);
                let err = comm.cma_read(tok, 4000, dst, 0, 8192).unwrap_err();
                comm.notify(0, Tag::user(2)).unwrap();
                matches!(err, kacc_comm::CommError::OutOfRange { .. })
            }
        });
        assert!(results[1]);
    }
}
