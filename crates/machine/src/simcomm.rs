//! `SimComm`: the [`Comm`] endpoint backed by the simulated machine.

use crate::fluid::FlowId;
use crate::state::MachineState;
use kacc_comm::{BufId, Comm, CommError, RemoteToken, Result, Tag, Topology};
use kacc_fault::{FaultDecision, FaultHook, FaultOp, FaultSite};
use kacc_sim_core::{Ctx, Poll};
use kacc_trace::{Tracer, Track};

/// Direction of a kernel-assisted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmaDir {
    /// `process_vm_readv`: data flows remote → local.
    Read,
    /// `process_vm_writev`: data flows local → remote.
    Write,
}

/// One rank's endpoint into the simulated machine.
pub struct SimComm {
    ctx: Ctx<MachineState>,
    rank: usize,
    nranks: usize,
    topo: Topology,
    /// Node hosting each rank.
    nodes: Vec<usize>,
    /// This rank's node.
    node: usize,
    /// This rank's local rank within the node (drives socket mapping).
    local: usize,
    // Cached cost constants (immutable for the run).
    t_syscall: u64,
    t_permcheck: u64,
    sm_msg_ns: f64,
    sm_byte_ns: f64,
    bw_core: f64,
    inter_socket_bw_penalty: f64,
    page_size: usize,
    pin_batch_pages: usize,
    net_alpha_ns: f64,
    net_bw: f64,
    /// Capacity weight of a cross-socket copy (bw_total / bw_qpi).
    qpi_weight: f64,
    /// Shared tracer (clone of the machine state's); off unless the run
    /// was traced.
    tracer: Tracer,
    /// Shared fault injector (clone of the machine state's); off unless
    /// the run installed a plan. One branch per site when off.
    fault: FaultHook,
}

impl SimComm {
    /// Build the endpoint for `rank`. Called by the team harness; the
    /// ctx's tid must equal the rank.
    pub fn new(ctx: Ctx<MachineState>, rank: usize) -> SimComm {
        assert_eq!(
            ctx.tid(),
            rank,
            "rank threads must be spawned in rank order"
        );
        let (nranks, topo, nodes, local, a, fabric, tracer, fault) = ctx.with_state(|s, _| {
            (
                s.nranks,
                s.topo,
                s.node_of.clone(),
                s.local_rank(rank),
                s.arch.clone(),
                s.net.as_ref().map(|n| n.params.clone()),
                s.tracer.clone(),
                s.fault.clone(),
            )
        });
        SimComm {
            tracer,
            fault,
            node: nodes[rank],
            nodes,
            local,
            ctx,
            rank,
            nranks,
            topo,
            t_syscall: a.t_syscall_ns as u64,
            t_permcheck: a.t_permcheck_ns as u64,
            sm_msg_ns: a.sm_msg_ns,
            sm_byte_ns: a.sm_byte_ns,
            bw_core: a.bw_core,
            inter_socket_bw_penalty: a.inter_socket_bw_penalty,
            page_size: a.page_size,
            pin_batch_pages: a.pin_batch_pages,
            net_alpha_ns: fabric.as_ref().map_or(0.0, |f| f.alpha_ns),
            net_bw: fabric.as_ref().map_or(f64::INFINITY, |f| f.bw_link),
            qpi_weight: (a.bw_total / a.bw_qpi).max(1.0),
        }
    }

    /// Underlying simulation context (used by higher-level harnesses).
    pub fn ctx(&self) -> &Ctx<MachineState> {
        &self.ctx
    }

    fn check_local(&self, buf: BufId, off: usize, len: usize) -> Result<()> {
        let cap = self.buf_len(buf)?;
        if off.checked_add(len).is_none_or(|end| end > cap) {
            return Err(CommError::OutOfRange {
                buf: buf.0,
                off,
                len,
                cap,
            });
        }
        Ok(())
    }

    /// Local rank of `rank` within its node.
    fn local_of(&self, rank: usize) -> usize {
        rank % (self.nranks / self.nodes.iter().max().map_or(1, |m| m + 1))
    }

    /// Per-flow bandwidth ceiling for an intra-node transfer touching
    /// `peer` (same node as us).
    fn peak_bw(&self, peer: usize) -> f64 {
        if self.topo.same_socket(self.local, self.local_of(peer)) {
            self.bw_core
        } else {
            self.bw_core / self.inter_socket_bw_penalty
        }
    }

    /// Run a pinning request through `target`'s page-lock server;
    /// returns the (lock, pin) wall-time attribution.
    fn lock_flow(&self, target: usize, pages: usize) -> (f64, f64) {
        if pages == 0 {
            return (0.0, 0.0);
        }
        let tid = self.ctx.tid();
        let socket = self.topo.socket_of(self.local);
        let id: FlowId = self.ctx.poll("pin:add", move |s, _w, now| {
            s.locks[target].update(now);
            let id = s.locks[target].add(tid, socket, pages);
            // Queue-depth counter for the lock server's trace track.
            s.tracer.counter(
                Track::LockServer(target),
                "queue_depth",
                now,
                s.locks[target].concurrency() as f64,
            );
            Poll::Ready(id)
        });
        self.ctx.poll("pin:wait", move |s, w, now| {
            s.locks[target].update(now);
            if s.locks[target].is_done(id) {
                let attr = s.locks[target].remove_with(id, now, |t, at| w.wake_at(t, at));
                s.tracer.counter(
                    Track::LockServer(target),
                    "queue_depth",
                    now,
                    s.locks[target].concurrency() as f64,
                );
                Poll::Ready(attr)
            } else {
                Poll::Wait {
                    wake_at: Some(s.locks[target].eta(id, now)),
                }
            }
        })
    }

    /// Run a flow through a fluid server selected by `pick`; returns
    /// wall time. Used for memory copies and NIC link occupancy.
    fn flow_via<F>(&self, bytes: usize, peak: f64, pick: F) -> u64
    where
        F: Fn(&mut MachineState) -> &mut crate::fluid::MemSys + Clone + 'static,
    {
        self.flow_via_weighted(bytes, peak, 1.0, pick)
    }

    fn flow_via_weighted<F>(&self, bytes: usize, peak: f64, weight: f64, pick: F) -> u64
    where
        F: Fn(&mut MachineState) -> &mut crate::fluid::MemSys + Clone + 'static,
    {
        if bytes == 0 {
            return 0;
        }
        let tid = self.ctx.tid();
        let start = self.ctx.now();
        let pick_add = pick.clone();
        let id: FlowId = self.ctx.poll("flow:add", move |s, _w, now| {
            let srv = pick_add(s);
            srv.update(now);
            Poll::Ready(srv.add_weighted(tid, bytes, peak, weight))
        });
        self.ctx.poll("flow:wait", move |s, w, now| {
            let srv = pick(s);
            srv.update(now);
            if srv.is_done(id) {
                srv.remove_with(id, now, |t, at| w.wake_at(t, at));
                Poll::Ready(())
            } else {
                Poll::Wait {
                    wake_at: Some(srv.eta(id, now)),
                }
            }
        });
        self.ctx.now() - start
    }

    /// Run a copy through this rank's node memory system; cross-socket
    /// copies consume extra capacity (DRAM + interconnect).
    fn copy_flow_routed(&self, bytes: usize, peak: f64, inter_socket: bool) -> u64 {
        let node = self.node;
        let weight = if inter_socket { self.qpi_weight } else { 1.0 };
        self.flow_via_weighted(bytes, peak, weight, move |s| &mut s.mems[node])
    }

    /// Run an intra-socket copy through this rank's node memory system.
    fn copy_flow(&self, bytes: usize, peak: f64) -> u64 {
        self.copy_flow_routed(bytes, peak, false)
    }

    /// Consult the fault hook for one site; applies an injected delay to
    /// virtual time in place. Returns what the operation must do.
    fn fault_gate(&mut self, peer: Option<usize>, op: FaultOp, len: usize) -> FaultDecision {
        if !self.fault.on() {
            return FaultDecision::Allow;
        }
        let d = self.fault.decide(&FaultSite {
            rank: self.rank,
            peer,
            op,
            len,
        });
        let d = if op.is_cma() { d } else { d.no_partial() };
        if let FaultDecision::Delay { ns } = d {
            self.ctx.advance(ns);
            return FaultDecision::Allow;
        }
        d
    }

    /// Kernel-assisted transfer with separately controllable pin extent
    /// and copy extent — the Table III probe surface. `remote_len` bytes
    /// of the remote buffer are pinned; `copy_len` bytes actually move
    /// (`copy_len ≤ remote_len`). The public [`Comm::cma_read`] /
    /// [`Comm::cma_write`] use `copy_len == remote_len == len`.
    ///
    /// Fault-injection surface: a `Truncate { got }` decision genuinely
    /// moves the first `got` bytes (charging their full pin+copy cost)
    /// and then reports `Truncated`, so a resuming caller observes
    /// exactly the short-count semantics of `process_vm_readv`.
    #[allow(clippy::too_many_arguments)]
    pub fn cma_transfer(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        remote_len: usize,
        copy_len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        let op = match dir {
            CmaDir::Read => FaultOp::CmaRead,
            CmaDir::Write => FaultOp::CmaWrite,
        };
        match self.fault_gate(Some(token.rank as usize), op, copy_len) {
            FaultDecision::Allow | FaultDecision::Delay { .. } => self.cma_transfer_inner(
                token, remote_off, local, local_off, remote_len, copy_len, dir,
            ),
            FaultDecision::Fail(e) => {
                // The failed syscall still enters and exits the kernel; an
                // empty transfer charges exactly that.
                self.cma_transfer_inner(token, remote_off, local, local_off, 0, 0, dir)?;
                Err(e)
            }
            FaultDecision::Truncate { got } => {
                let got = got.min(copy_len);
                self.cma_transfer_inner(token, remote_off, local, local_off, got, got, dir)?;
                Err(CommError::Truncated {
                    wanted: copy_len,
                    got,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn cma_transfer_inner(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        remote_len: usize,
        copy_len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        assert!(copy_len <= remote_len, "cannot copy more than is pinned");
        let peer = token.rank as usize;
        let me = self.rank;
        // Phase spans carry the *same* f64 values added to `RankStats`, in
        // the same order, so per-rank span sums are bitwise equal to the
        // stats — the invariant the trace-accounting test pins. Timestamps
        // are only read when tracing is on; the untraced path is unchanged.
        let traced = self.tracer.on();

        // 1. Syscall entry/exit.
        let t0 = if traced { self.ctx.now() } else { 0 };
        self.ctx.advance(self.t_syscall);
        let t_sys = self.t_syscall as f64;
        self.ctx.with_state(move |s, _| {
            s.stats[me].syscall_ns += t_sys;
            s.stats[me].cma_ops += 1;
        });
        if traced {
            self.tracer
                .span(Track::Rank(me), "syscall", t0, t_sys, 0, None);
        }

        if peer >= self.nranks {
            return Err(CommError::BadRank(peer));
        }
        if self.nodes[peer] != self.node {
            return Err(CommError::Protocol(format!(
                "kernel-assisted transfer to rank {peer} crosses nodes ({} -> {})",
                self.node, self.nodes[peer]
            )));
        }
        // An empty remote iovec returns after the syscall, touching
        // nothing — exactly how the probe isolates T₁.
        if remote_len == 0 {
            return Ok(());
        }

        // 2. Permission / capability check against the remote process.
        let t0 = if traced { self.ctx.now() } else { 0 };
        self.ctx.advance(self.t_permcheck);
        let t_chk = self.t_permcheck as f64;
        self.ctx
            .with_state(move |s, _| s.stats[me].check_ns += t_chk);
        if traced {
            self.tracer
                .span(Track::Rank(me), "check", t0, t_chk, 0, None);
        }

        let exposed_len = self.ctx.with_state(|s, _| {
            let h = &s.heaps[peer];
            if h.is_exposed(token.token) {
                h.len_of(token.token)
            } else {
                None
            }
        });
        let Some(rcap) = exposed_len else {
            return Err(CommError::PermissionDenied);
        };
        if remote_off
            .checked_add(remote_len)
            .is_none_or(|end| end > rcap)
        {
            return Err(CommError::OutOfRange {
                buf: token.token,
                off: remote_off,
                len: remote_len,
                cap: rcap,
            });
        }
        self.check_local(local, local_off, copy_len)?;

        // 3. Pin + copy in batches, like the real CMA implementation:
        // get_user_pages on a batch, copy it, move to the next batch.
        let pages_total = remote_len.div_ceil(self.page_size);
        let batch = self.pin_batch_pages.max(1);
        let peak = self.peak_bw(peer);
        let inter_socket = !self.topo.same_socket(self.local, self.local_of(peer));
        let mut page_at = 0usize;
        let mut copied = 0usize;
        while page_at < pages_total {
            let pages_now = batch.min(pages_total - page_at);
            let tb = if traced { self.ctx.now() } else { 0 };
            let (lock_ns, pin_ns) = self.lock_flow(peer, pages_now);
            self.ctx.with_state(move |s, _| {
                s.stats[me].lock_ns += lock_ns;
                s.stats[me].pin_ns += pin_ns;
            });
            if traced {
                // The batch's wall time splits into a lock share followed by
                // a pin share (the fluid server attributes every dt to one
                // or the other), so render them back-to-back.
                self.tracer
                    .span(Track::Rank(me), "lock", tb, lock_ns, 0, None);
                self.tracer.span(
                    Track::Rank(me),
                    "pin",
                    tb.saturating_add(lock_ns as u64),
                    pin_ns,
                    0,
                    None,
                );
            }
            // Bytes of the copy extent covered by this batch.
            let batch_end_byte = ((page_at + pages_now) * self.page_size).min(remote_len);
            let copy_now = batch_end_byte.min(copy_len).saturating_sub(copied);
            if copy_now > 0 {
                let tc = if traced { self.ctx.now() } else { 0 };
                let wall = self.copy_flow_routed(copy_now, peak, inter_socket) as f64;
                self.ctx.with_state(move |s, _| s.stats[me].copy_ns += wall);
                if traced {
                    self.tracer
                        .span(Track::Rank(me), "copy", tc, wall, copy_now as u64, None);
                }
                copied += copy_now;
            }
            page_at += pages_now;
        }

        // 4. Move the actual bytes (correctness plane). Phantom buffers
        // carry no data, so the copy is skipped — timing was already
        // charged above.
        if copy_len > 0 {
            self.ctx.with_state(|s, _| match dir {
                CmaDir::Read => {
                    if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                        let src = s.heaps[peer]
                            .extract(token.token, remote_off, copy_len)
                            .expect("range checked above");
                        s.heaps[me].write(local.0, local_off, &src);
                    }
                    s.stats[me].bytes_read += copy_len as u64;
                }
                CmaDir::Write => {
                    if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                        let src = s.heaps[me]
                            .extract(local.0, local_off, copy_len)
                            .expect("range checked above");
                        s.heaps[peer].write(token.token, remote_off, &src);
                    }
                    s.stats[me].bytes_written += copy_len as u64;
                }
            });
        }
        Ok(())
    }

    /// Two-copy degradation path: remote buffer → shared staging →
    /// local buffer (or the reverse for writes). No syscall, no page
    /// pinning, no lock-server traffic — it works when kernel-assisted
    /// access is denied, at the cost of a second copy. Both copies are
    /// charged to `copy_ns` and emitted as `copy` spans, preserving the
    /// span-sum == `RankStats` invariant.
    fn shm_fallback_transfer(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        local: BufId,
        local_off: usize,
        len: usize,
        dir: CmaDir,
    ) -> Result<()> {
        let peer = token.rank as usize;
        let me = self.rank;
        if peer >= self.nranks {
            return Err(CommError::BadRank(peer));
        }
        if self.nodes[peer] != self.node {
            return Err(CommError::Protocol(format!(
                "shared-memory fallback to rank {peer} crosses nodes ({} -> {})",
                self.node, self.nodes[peer]
            )));
        }
        let op = match dir {
            CmaDir::Read => FaultOp::FallbackRead,
            CmaDir::Write => FaultOp::FallbackWrite,
        };
        if let FaultDecision::Fail(e) = self.fault_gate(Some(peer), op, len) {
            return Err(e);
        }
        let exposed_len = self.ctx.with_state(|s, _| {
            let h = &s.heaps[peer];
            if h.is_exposed(token.token) {
                h.len_of(token.token)
            } else {
                None
            }
        });
        let Some(rcap) = exposed_len else {
            return Err(CommError::PermissionDenied);
        };
        if remote_off.checked_add(len).is_none_or(|end| end > rcap) {
            return Err(CommError::OutOfRange {
                buf: token.token,
                off: remote_off,
                len,
                cap: rcap,
            });
        }
        self.check_local(local, local_off, len)?;
        if len == 0 {
            return Ok(());
        }
        self.ctx.with_state(move |s, _| {
            s.transport.fallback_ops += 1;
            s.transport.fallback_bytes += len as u64;
        });
        let traced = self.tracer.on();
        let peak = self.peak_bw(peer);
        let inter = !self.topo.same_socket(self.local, self.local_of(peer));
        // First copy: between the peer's memory and shared staging,
        // routed across sockets if the peer lives on the other one.
        let t0 = if traced { self.ctx.now() } else { 0 };
        let w1 = self.copy_flow_routed(len, peak, inter) as f64;
        self.ctx.with_state(move |s, _| s.stats[me].copy_ns += w1);
        if traced {
            self.tracer
                .span(Track::Rank(me), "copy", t0, w1, len as u64, None);
        }
        // Second copy: staging and the local buffer share a socket.
        let t1 = if traced { self.ctx.now() } else { 0 };
        let w2 = self.copy_flow(len, self.bw_core) as f64;
        self.ctx.with_state(move |s, _| s.stats[me].copy_ns += w2);
        if traced {
            self.tracer
                .span(Track::Rank(me), "copy", t1, w2, len as u64, None);
        }
        // Data plane (phantom-aware), same accounting as the CMA path.
        self.ctx.with_state(move |s, _| match dir {
            CmaDir::Read => {
                if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                    let src = s.heaps[peer]
                        .extract(token.token, remote_off, len)
                        .expect("range checked above");
                    s.heaps[me].write(local.0, local_off, &src);
                }
                s.stats[me].bytes_read += len as u64;
            }
            CmaDir::Write => {
                if !s.heaps[peer].is_phantom(token.token) && !s.heaps[me].is_phantom(local.0) {
                    let src = s.heaps[me]
                        .extract(local.0, local_off, len)
                        .expect("range checked above");
                    s.heaps[peer].write(token.token, remote_off, &src);
                }
                s.stats[me].bytes_written += len as u64;
            }
        });
        Ok(())
    }
}

impl Comm for SimComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.nranks
    }

    fn topology(&self) -> Topology {
        self.topo
    }

    fn node_of(&self, rank: usize) -> usize {
        self.nodes.get(rank).copied().unwrap_or(0)
    }

    fn alloc(&mut self, len: usize) -> BufId {
        let me = self.rank;
        BufId(self.ctx.with_state(move |s, _| s.heaps[me].alloc(len)))
    }

    fn free(&mut self, buf: BufId) -> Result<()> {
        let me = self.rank;
        if self.ctx.with_state(move |s, _| s.heaps[me].free(buf.0)) {
            Ok(())
        } else {
            Err(CommError::InvalidBuffer(buf.0))
        }
    }

    fn buf_len(&self, buf: BufId) -> Result<usize> {
        let me = self.rank;
        self.ctx
            .with_state(move |s, _| s.heaps[me].len_of(buf.0))
            .ok_or(CommError::InvalidBuffer(buf.0))
    }

    fn write_local(&mut self, buf: BufId, off: usize, data: &[u8]) -> Result<()> {
        self.check_local(buf, off, data.len())?;
        let me = self.rank;
        let data = data.to_vec();
        self.ctx.with_state(move |s, _| {
            s.heaps[me].write(buf.0, off, &data);
        });
        Ok(())
    }

    fn read_local(&self, buf: BufId, off: usize, out: &mut [u8]) -> Result<()> {
        self.check_local(buf, off, out.len())?;
        let me = self.rank;
        let len = out.len();
        let data = self.ctx.with_state(move |s, _| {
            s.heaps[me]
                .extract(buf.0, off, len)
                .expect("range checked above")
        });
        out.copy_from_slice(&data);
        Ok(())
    }

    fn copy_local(
        &mut self,
        src: BufId,
        src_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.check_local(src, src_off, len)?;
        self.check_local(dst, dst_off, len)?;
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        // memcpy consumes memory bandwidth like any other copy.
        let wall = self.copy_flow(len, self.bw_core);
        self.tracer.span(
            Track::Rank(self.rank),
            "copy_local",
            t0,
            wall as f64,
            len as u64,
            None,
        );
        let me = self.rank;
        self.ctx.with_state(move |s, _| {
            if !s.heaps[me].is_phantom(src.0) && !s.heaps[me].is_phantom(dst.0) {
                let data = s.heaps[me]
                    .extract(src.0, src_off, len)
                    .expect("range checked above");
                s.heaps[me].write(dst.0, dst_off, &data);
            }
        });
        Ok(())
    }

    fn expose(&mut self, buf: BufId) -> Result<RemoteToken> {
        if let FaultDecision::Fail(e) = self.fault_gate(None, FaultOp::Expose, 0) {
            return Err(e);
        }
        let me = self.rank;
        if self.ctx.with_state(move |s, _| s.heaps[me].expose(buf.0)) {
            Ok(RemoteToken {
                rank: me as u64,
                token: buf.0,
            })
        } else {
            Err(CommError::InvalidBuffer(buf.0))
        }
    }

    fn cma_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.cma_transfer(token, remote_off, dst, dst_off, len, len, CmaDir::Read)
    }

    fn cma_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.cma_transfer(token, remote_off, src, src_off, len, len, CmaDir::Write)
    }

    fn ctrl_send(&mut self, to: usize, tag: Tag, data: &[u8]) -> Result<()> {
        if to >= self.nranks {
            return Err(CommError::BadRank(to));
        }
        // A dropped control message surfaces as a typed send failure, not
        // a silent loss: silently losing it would deadlock the receiver,
        // which models nothing recoverable.
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::CtrlSend, data.len()) {
            return Err(e);
        }
        let start = self.ctx.now();
        // Sender-side occupancy: enqueue bookkeeping plus the copy of the
        // payload into the shared slot (or NIC doorbell + inline copy).
        let occupancy = (0.3 * self.sm_msg_ns + 0.5 * data.len() as f64 * self.sm_byte_ns) as u64;
        self.ctx.advance(occupancy);
        let latency = if self.nodes[to] == self.node {
            self.sm_msg_ns + data.len() as f64 * self.sm_byte_ns
        } else {
            self.net_alpha_ns + data.len() as f64 / self.net_bw
        };
        let arrival = start + latency as u64;
        let me = self.rank;
        let payload = data.to_vec();
        self.ctx.poll("ctrl:send", move |s, w, _now| {
            s.mail
                .deposit(w, to, me, tag.0 as u64, arrival, payload.clone());
            Poll::Ready(())
        });
        if self.tracer.on() {
            let dur = (self.ctx.now() - start) as f64;
            self.tracer.span(
                Track::Rank(me),
                "ctrl_send",
                start,
                dur,
                data.len() as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    fn ctrl_recv(&mut self, from: usize, tag: Tag) -> Result<Vec<u8>> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        let me = self.rank;
        let tid = self.ctx.tid();
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        let payload = self.ctx.poll("ctrl:recv", move |s, _w, now| {
            s.mail.take(tid, me, from, tag.0 as u64, now)
        });
        if self.tracer.on() {
            let dur = (self.ctx.now() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "ctrl_recv",
                t0,
                dur,
                payload.len() as u64,
                tag.class(),
            );
        }
        Ok(payload)
    }

    fn shm_send_data(
        &mut self,
        to: usize,
        tag: Tag,
        src: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if to >= self.nranks {
            return Err(CommError::BadRank(to));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(to), FaultOp::ShmSend, len) {
            return Err(e);
        }
        self.check_local(src, off, len)?;
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        let cross_node = self.nodes[to] != self.node;
        if cross_node {
            // Wire occupancy on this node's egress link (fluid-shared
            // with concurrent outbound transfers).
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").egress[node]
            });
        } else {
            // First copy: local buffer → shared staging.
            self.copy_flow(len, self.bw_core);
        }
        let me = self.rank;
        let payload = {
            let mut out = vec![0u8; len];
            self.read_local(src, off, &mut out)?;
            out
        };
        let arrival = self.ctx.now()
            + if cross_node {
                self.net_alpha_ns as u64
            } else {
                self.sm_msg_ns as u64
            };
        // Tag shifted into a distinct namespace so bulk data never
        // collides with control messages of the same tag.
        let key = (1u64 << 32) | tag.0 as u64;
        self.ctx.poll("shm:post", move |s, w, _now| {
            s.transport.shm_ops += 1;
            s.transport.shm_bytes += len as u64;
            s.mail.deposit(w, to, me, key, arrival, payload.clone());
            Poll::Ready(())
        });
        if self.tracer.on() {
            let dur = (self.ctx.now() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_send",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    fn shm_recv_data(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
    ) -> Result<()> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        self.check_local(dst, off, len)?;
        let me = self.rank;
        let tid = self.ctx.tid();
        let key = (1u64 << 32) | tag.0 as u64;
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        let payload = self.ctx.poll("shm:wait", move |s, _w, now| {
            s.mail.take(tid, me, from, key, now)
        });
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        if self.nodes[from] != self.node {
            // Wire occupancy on this node's ingress link.
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").ingress[node]
            });
        } else {
            // Second copy: shared staging → local buffer. The peer for
            // socket purposes is the sender.
            let peak = self.peak_bw(from);
            let inter = !self.topo.same_socket(self.local, self.local_of(from));
            self.copy_flow_routed(len, peak, inter);
        }
        self.write_local(dst, off, &payload)?;
        if self.tracer.on() {
            let dur = (self.ctx.now() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_recv",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(())
    }

    fn ctrl_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        timeout_ns: u64,
    ) -> Result<Option<Vec<u8>>> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::CtrlRecv, 0) {
            return Err(e);
        }
        let me = self.rank;
        let tid = self.ctx.tid();
        let deadline = self.ctx.now().saturating_add(timeout_ns);
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        let payload = self.ctx.poll("ctrl:recv", move |s, _w, now| {
            match s.mail.take(tid, me, from, tag.0 as u64, now) {
                Poll::Ready(p) => Poll::Ready(Some(p)),
                Poll::Wait { .. } if now >= deadline => {
                    // Give up: withdraw the wait registration so a later
                    // deposit doesn't wake (or trip over) a ghost waiter.
                    s.mail.unregister(me, from, tag.0 as u64, tid);
                    Poll::Ready(None)
                }
                Poll::Wait { wake_at } => Poll::Wait {
                    wake_at: Some(wake_at.map_or(deadline, |a| a.min(deadline))),
                },
            }
        });
        if self.tracer.on() {
            let dur = (self.ctx.now() - t0) as f64;
            let bytes = payload.as_ref().map_or(0, Vec::len) as u64;
            self.tracer
                .span(Track::Rank(me), "ctrl_recv", t0, dur, bytes, tag.class());
        }
        Ok(payload)
    }

    fn shm_recv_deadline(
        &mut self,
        from: usize,
        tag: Tag,
        dst: BufId,
        off: usize,
        len: usize,
        timeout_ns: u64,
    ) -> Result<bool> {
        if from >= self.nranks {
            return Err(CommError::BadRank(from));
        }
        if let FaultDecision::Fail(e) = self.fault_gate(Some(from), FaultOp::ShmRecv, len) {
            return Err(e);
        }
        self.check_local(dst, off, len)?;
        let me = self.rank;
        let tid = self.ctx.tid();
        let key = (1u64 << 32) | tag.0 as u64;
        let deadline = self.ctx.now().saturating_add(timeout_ns);
        let t0 = if self.tracer.on() { self.ctx.now() } else { 0 };
        let payload = self.ctx.poll("shm:wait", move |s, _w, now| {
            match s.mail.take(tid, me, from, key, now) {
                Poll::Ready(p) => Poll::Ready(Some(p)),
                Poll::Wait { .. } if now >= deadline => {
                    s.mail.unregister(me, from, key, tid);
                    Poll::Ready(None)
                }
                Poll::Wait { wake_at } => Poll::Wait {
                    wake_at: Some(wake_at.map_or(deadline, |a| a.min(deadline))),
                },
            }
        });
        let Some(payload) = payload else {
            return Ok(false);
        };
        if payload.len() != len {
            return Err(CommError::Truncated {
                wanted: len,
                got: payload.len(),
            });
        }
        if self.nodes[from] != self.node {
            let node = self.node;
            self.flow_via(len, self.net_bw, move |s| {
                &mut s.net.as_mut().expect("fabric present").ingress[node]
            });
        } else {
            let peak = self.peak_bw(from);
            let inter = !self.topo.same_socket(self.local, self.local_of(from));
            self.copy_flow_routed(len, peak, inter);
        }
        self.write_local(dst, off, &payload)?;
        if self.tracer.on() {
            let dur = (self.ctx.now() - t0) as f64;
            self.tracer.span(
                Track::Rank(me),
                "shm_recv",
                t0,
                dur,
                len as u64,
                tag.class(),
            );
        }
        Ok(true)
    }

    fn sleep_ns(&mut self, ns: u64) {
        // Backoff charges virtual time, exactly like any other wait.
        self.ctx.advance(ns);
    }

    fn shm_fallback_read(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        dst: BufId,
        dst_off: usize,
        len: usize,
    ) -> Result<()> {
        self.shm_fallback_transfer(token, remote_off, dst, dst_off, len, CmaDir::Read)
    }

    fn shm_fallback_write(
        &mut self,
        token: RemoteToken,
        remote_off: usize,
        src: BufId,
        src_off: usize,
        len: usize,
    ) -> Result<()> {
        self.shm_fallback_transfer(token, remote_off, src, src_off, len, CmaDir::Write)
    }

    fn time_ns(&self) -> u64 {
        self.ctx.now()
    }

    fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    // SimComm is exercised end-to-end through the team harness; see
    // `crate::team` and the integration tests.
}
