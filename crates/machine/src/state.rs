//! Shared simulated-node state living inside the DES kernel.

use crate::fluid::{MemSys, PageLockServer};
use kacc_comm::Topology;
use kacc_model::{ArchProfile, FabricParams};
use kacc_sim_core::Mailboxes;
use std::collections::{HashMap, HashSet};

/// One simulated buffer: real bytes, or a *phantom* that tracks only
/// its length. Phantoms let measurement sweeps simulate terabyte-scale
/// traffic without allocating it (timing is unaffected; reads return
/// zeroes).
#[derive(Debug)]
pub enum Buf {
    /// Backed by real bytes (default; data-correctness tests use this).
    Real(Vec<u8>),
    /// Length-only placeholder for measurement runs.
    Phantom(usize),
}

impl Buf {
    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Buf::Real(v) => v.len(),
            Buf::Phantom(n) => *n,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One simulated process's private memory: buffers and exposure set.
#[derive(Debug, Default)]
pub struct RankHeap {
    bufs: HashMap<u64, Buf>,
    next: u64,
    exposed: HashSet<u64>,
    /// Allocate phantoms instead of real buffers.
    pub phantom: bool,
}

impl RankHeap {
    /// Allocate a zeroed buffer, returning its id.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let id = self.next;
        self.next += 1;
        let buf = if self.phantom {
            Buf::Phantom(len)
        } else {
            Buf::Real(vec![0u8; len])
        };
        self.bufs.insert(id, buf);
        id
    }

    /// Free a buffer (revoking exposure). Returns false if unknown.
    pub fn free(&mut self, id: u64) -> bool {
        self.exposed.remove(&id);
        self.bufs.remove(&id).is_some()
    }

    /// Buffer length, if allocated.
    pub fn len_of(&self, id: u64) -> Option<usize> {
        self.bufs.get(&id).map(Buf::len)
    }

    /// Read bytes out (phantoms yield zeroes). False if the access is
    /// invalid.
    pub fn read(&self, id: u64, off: usize, out: &mut [u8]) -> bool {
        match self.bufs.get(&id) {
            Some(Buf::Real(v)) if off + out.len() <= v.len() => {
                out.copy_from_slice(&v[off..off + out.len()]);
                true
            }
            Some(Buf::Phantom(n)) if off + out.len() <= *n => {
                out.fill(0);
                true
            }
            _ => false,
        }
    }

    /// Write bytes in (no-op into phantoms). False if invalid.
    pub fn write(&mut self, id: u64, off: usize, data: &[u8]) -> bool {
        match self.bufs.get_mut(&id) {
            Some(Buf::Real(v)) if off + data.len() <= v.len() => {
                v[off..off + data.len()].copy_from_slice(data);
                true
            }
            Some(Buf::Phantom(n)) => off + data.len() <= *n,
            _ => false,
        }
    }

    /// Copy a region out as a vector (zeroes for phantoms). None if
    /// invalid.
    pub fn extract(&self, id: u64, off: usize, len: usize) -> Option<Vec<u8>> {
        let mut out = vec![0u8; len];
        if self.read(id, off, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Is the buffer a phantom?
    pub fn is_phantom(&self, id: u64) -> bool {
        matches!(self.bufs.get(&id), Some(Buf::Phantom(_)))
    }

    /// Mark a buffer exposed for kernel-assisted access.
    pub fn expose(&mut self, id: u64) -> bool {
        if self.bufs.contains_key(&id) {
            self.exposed.insert(id);
            true
        } else {
            false
        }
    }

    /// Is a buffer exposed?
    pub fn is_exposed(&self, id: u64) -> bool {
        self.exposed.contains(&id)
    }

    /// Number of live buffers (leak checks in tests).
    pub fn live_buffers(&self) -> usize {
        self.bufs.len()
    }
}

/// Per-rank step accounting: the Fig 4 breakdown.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RankStats {
    /// Time in syscall entry/exit, ns.
    pub syscall_ns: f64,
    /// Time in the permission check, ns.
    pub check_ns: f64,
    /// Time acquiring page locks (contended share), ns.
    pub lock_ns: f64,
    /// Time pinning pages, ns.
    pub pin_ns: f64,
    /// Time copying data, ns.
    pub copy_ns: f64,
    /// Kernel-assisted operations issued.
    pub cma_ops: u64,
    /// Bytes moved by kernel-assisted reads issued by this rank.
    pub bytes_read: u64,
    /// Bytes moved by kernel-assisted writes issued by this rank.
    pub bytes_written: u64,
}

impl RankStats {
    /// Total accounted time.
    pub fn total_ns(&self) -> f64 {
        self.syscall_ns + self.check_ns + self.lock_ns + self.pin_ns + self.copy_ns
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &RankStats) {
        self.syscall_ns += other.syscall_ns;
        self.check_ns += other.check_ns;
        self.lock_ns += other.lock_ns;
        self.pin_ns += other.pin_ns;
        self.copy_ns += other.copy_ns;
        self.cma_ops += other.cma_ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// Machine-wide per-transport traffic totals (observability). CMA
/// traffic is accounted per rank in [`RankStats`]; these cover the
/// shared-memory paths, which have no per-rank home.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportCounters {
    /// Mailbox shared-memory data sends (eager/rendezvous path).
    pub shm_ops: u64,
    /// Bytes moved by mailbox shared-memory data sends.
    pub shm_bytes: u64,
    /// Two-copy shared-memory fallback transfers (CMA denied/failed).
    pub fallback_ops: u64,
    /// Bytes moved by two-copy fallback transfers.
    pub fallback_bytes: u64,
}

/// Inter-node fabric state: per-node NIC servers plus the latency model.
pub struct NetState {
    /// Fabric parameters.
    pub params: FabricParams,
    /// Per-node egress link servers (fluid-shared by concurrent sends).
    pub egress: Vec<MemSys>,
    /// Per-node ingress link servers.
    pub ingress: Vec<MemSys>,
}

/// The simulated machine: one node, or a cluster of identical nodes
/// joined by a latency-bandwidth fabric. Kernel-assisted (CMA) transfers
/// work only between ranks of the same node; the control plane and the
/// bulk two-copy path cross nodes through the fabric.
pub struct MachineState {
    /// Architecture profile driving every cost.
    pub arch: ArchProfile,
    /// Per-node topology derived from `arch`.
    pub topo: Topology,
    /// Number of simulated ranks (across all nodes).
    pub nranks: usize,
    /// Node hosting each rank (block distribution).
    pub node_of: Vec<usize>,
    /// Control-plane mailboxes.
    pub mail: Mailboxes,
    /// Per-rank private heaps.
    pub heaps: Vec<RankHeap>,
    /// Per-rank page-lock servers (contention point).
    pub locks: Vec<PageLockServer>,
    /// Per-node memory systems (cross-socket flows weigh
    /// `bw_total/bw_qpi` times more; see `fluid::MemSys::add_weighted`).
    pub mems: Vec<MemSys>,
    /// Fabric, for multi-node machines.
    pub net: Option<NetState>,
    /// Per-rank step accounting.
    pub stats: Vec<RankStats>,
    /// Machine-wide per-transport traffic totals.
    pub transport: TransportCounters,
    /// Destination for phase spans and lock-server counters. Defaults to
    /// off; the team harness installs a live tracer for traced runs.
    pub tracer: kacc_trace::Tracer,
    /// Fault injector consulted by every transport operation. Defaults to
    /// off (a single branch per site); `run_team_faulty` installs a plan.
    pub fault: kacc_fault::FaultHook,
}

impl MachineState {
    /// Build a single node with `nranks` simulated processes.
    pub fn new(arch: ArchProfile, nranks: usize) -> MachineState {
        MachineState::cluster(arch, 1, nranks, None)
    }

    /// Build `nodes` identical nodes of `ranks_per_node` processes each,
    /// with global ranks block-distributed (ranks `[n·rpn, (n+1)·rpn)`
    /// on node `n`). `fabric` is required when `nodes > 1`.
    pub fn cluster(
        arch: ArchProfile,
        nodes: usize,
        ranks_per_node: usize,
        fabric: Option<FabricParams>,
    ) -> MachineState {
        MachineState::cluster_opts(arch, nodes, ranks_per_node, fabric, false)
    }

    /// [`MachineState::cluster`] with a `phantom` switch: phantom heaps
    /// track buffer lengths only, so measurement sweeps can simulate
    /// arbitrarily large traffic without allocating it.
    pub fn cluster_opts(
        arch: ArchProfile,
        nodes: usize,
        ranks_per_node: usize,
        fabric: Option<FabricParams>,
        phantom: bool,
    ) -> MachineState {
        assert!(nodes >= 1 && ranks_per_node >= 1);
        assert!(
            nodes == 1 || fabric.is_some(),
            "multi-node machines need a fabric"
        );
        let nranks = nodes * ranks_per_node;
        let topo = arch.topology();
        MachineState {
            topo,
            nranks,
            node_of: (0..nranks).map(|r| r / ranks_per_node).collect(),
            mail: Mailboxes::new(),
            heaps: (0..nranks)
                .map(|_| RankHeap {
                    phantom,
                    ..RankHeap::default()
                })
                .collect(),
            locks: (0..nranks)
                .map(|_| {
                    PageLockServer::new(arch.l_lock_ns, arch.l_pin_ns, arch.k_bounce, arch.x_socket)
                })
                .collect(),
            mems: (0..nodes).map(|_| MemSys::new(arch.bw_total)).collect(),
            net: fabric.map(|params| NetState {
                egress: (0..nodes).map(|_| MemSys::new(params.bw_link)).collect(),
                ingress: (0..nodes).map(|_| MemSys::new(params.bw_link)).collect(),
                params,
            }),
            stats: vec![RankStats::default(); nranks],
            transport: TransportCounters::default(),
            tracer: kacc_trace::Tracer::off(),
            fault: kacc_fault::FaultHook::off(),
            arch,
        }
    }

    /// Local rank of `rank` within its node.
    pub fn local_rank(&self, rank: usize) -> usize {
        let rpn = self.nranks / self.mems.len();
        rank % rpn
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn heap_alloc_free_expose_lifecycle() {
        let mut h = RankHeap::default();
        let a = h.alloc(16);
        let b = h.alloc(0);
        assert_ne!(a, b);
        assert_eq!(h.len_of(a), Some(16));
        assert!(h.write(a, 4, &[1, 2, 3]));
        let mut out = [0u8; 3];
        assert!(h.read(a, 4, &mut out));
        assert_eq!(out, [1, 2, 3]);
        assert!(!h.write(a, 15, &[1, 2]), "overflow rejected");
        assert!(!h.is_exposed(a));
        assert!(h.expose(a));
        assert!(h.is_exposed(a));
        assert!(h.free(a));
        assert!(!h.is_exposed(a), "free revokes exposure");
        assert!(!h.free(a), "double free detected");
        assert_eq!(h.live_buffers(), 1);
    }

    #[test]
    fn expose_unknown_buffer_fails() {
        let mut h = RankHeap::default();
        assert!(!h.expose(99));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RankStats {
            syscall_ns: 1.0,
            cma_ops: 2,
            ..Default::default()
        };
        let b = RankStats {
            syscall_ns: 3.0,
            copy_ns: 4.0,
            cma_ops: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.syscall_ns, 4.0);
        assert_eq!(a.copy_ns, 4.0);
        assert_eq!(a.cma_ops, 3);
        assert_eq!(a.total_ns(), 8.0);
    }

    #[test]
    fn machine_state_sizes_match() {
        let st = MachineState::new(ArchProfile::broadwell(), 28);
        assert_eq!(st.heaps.len(), 28);
        assert_eq!(st.locks.len(), 28);
        assert_eq!(st.stats.len(), 28);
        assert_eq!(st.topo.physical_cores(), 28);
    }
}
