//! Fluid-flow servers: the page-lock server and the memory system.
//!
//! Both model shared resources as *fluid* processor sharing: while the
//! active set is constant, every flow makes continuous progress at a rate
//! determined by the whole set; rates are re-evaluated exactly at
//! add/remove boundaries, which in our cooperative simulator always
//! happen in thread context under the kernel lock.
//!
//! ## Page-lock server (one per simulated process)
//!
//! Models the per-process `mmap_sem`/page-table lock inside
//! `get_user_pages` that the paper identifies as the contention source
//! (Fig 4). Page grants are served round-robin across the `c` active
//! pinning requests, one page per grant, and each grant's service time is
//! inflated by a cache-line-bounce term that grows with the number of
//! waiters — and grows faster when the waiters span sockets:
//!
//! ```text
//! s(c) = l_lock·(1 + k_bounce·(c−1)·xs) + l_pin,   xs = x_socket if cross-socket
//! ```
//!
//! Each request therefore progresses at `1/(c·s(c))` pages/ns, which
//! makes the *effective* per-page time `c·s(c)` — super-linear in `c`.
//! The paper's γ factor is an emergent property of this mechanism; the
//! Fig 5 pipeline fits it from simulated measurements.
//!
//! ## Memory system (one per node)
//!
//! Copies are flows with per-flow ceiling `bw_core` (optionally derated
//! for inter-socket transfers) sharing an aggregate `bw_total`:
//! `rate_i = min(peak_i, bw_total / c)`.

/// Numerical slack for "flow is drained" checks (work units).
const EPS: f64 = 1e-6;

/// Handle to a flow inside a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowId(usize);

/// A pinning request in the page-lock server.
#[derive(Debug)]
struct LockFlow {
    owner_tid: usize,
    /// Socket of the requesting rank, for the cross-socket test.
    socket: usize,
    remaining_pages: f64,
    /// Wall time attributed to lock acquisition so far, ns.
    lock_ns: f64,
    /// Wall time attributed to pinning so far, ns.
    pin_ns: f64,
}

/// Per-process page-lock server.
#[derive(Debug)]
pub struct PageLockServer {
    l_lock_ns: f64,
    l_pin_ns: f64,
    k_bounce: f64,
    x_socket: f64,
    flows: Vec<Option<LockFlow>>,
    last_update: u64,
    /// Cached live-flow count, refreshed on add/remove. Polls between
    /// mutations reuse it instead of rescanning the slot vector.
    active_count: usize,
    /// Cached per-grant service time for the current active set,
    /// recomputed with exactly the same expression as [`Self::grant_ns`]
    /// on every add/remove — bit-identical to evaluating it fresh, but
    /// O(1) at the `eta`/`update` call sites that dominate wake storms.
    grant: f64,
    /// Peak concurrency ever observed (observability).
    pub peak_concurrency: usize,
    /// Queue-depth histogram: one sample per arriving pinning request,
    /// recording the active-set size it joined (observability).
    pub depth: kacc_metrics::LocalHist,
    /// Rate recomputations performed (observability): each add/remove
    /// re-evaluates the shared grant time for the whole active set.
    pub recaches: u64,
}

impl PageLockServer {
    /// Create a server with the given mechanistic constants.
    pub fn new(l_lock_ns: f64, l_pin_ns: f64, k_bounce: f64, x_socket: f64) -> PageLockServer {
        PageLockServer {
            l_lock_ns,
            l_pin_ns,
            k_bounce,
            x_socket,
            flows: Vec::new(),
            last_update: 0,
            active_count: 0,
            grant: l_lock_ns + l_pin_ns,
            peak_concurrency: 0,
            depth: kacc_metrics::LocalHist::default(),
            recaches: 0,
        }
    }

    fn active(&self) -> usize {
        self.active_count
    }

    /// Refresh the cached count and grant time after a set mutation.
    fn recache(&mut self) {
        self.recaches += 1;
        self.active_count = self.flows.iter().flatten().count();
        self.grant = self.grant_ns();
    }

    /// Number of currently active pinning flows — the queue depth the
    /// trace's lock-server counter track samples.
    pub fn concurrency(&self) -> usize {
        self.active()
    }

    /// Per-grant service time with the current active set (the fresh
    /// computation backing the `grant` cache).
    fn grant_ns(&self) -> f64 {
        let c = self.active_count as f64;
        let mut sockets = self.flows.iter().flatten().map(|f| f.socket);
        let first = sockets.next();
        let spans = first.is_some_and(|f| sockets.any(|s| s != f));
        let xs = if spans { self.x_socket } else { 1.0 };
        self.l_lock_ns * (1.0 + self.k_bounce * (c - 1.0).max(0.0) * xs) + self.l_pin_ns
    }

    /// Integrate progress up to `now`.
    pub fn update(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last_update) as f64;
        self.last_update = now;
        if dt == 0.0 {
            return;
        }
        let c = self.active_count;
        if c == 0 {
            return;
        }
        let s = self.grant;
        let lock_part = s - self.l_pin_ns;
        let rate = 1.0 / (c as f64 * s); // pages per ns, per flow
        for f in self.flows.iter_mut().flatten() {
            f.remaining_pages -= dt * rate;
            f.lock_ns += dt * lock_part / s;
            f.pin_ns += dt * self.l_pin_ns / s;
        }
    }

    /// Add a pinning request. Call `update(now)` first.
    pub fn add(&mut self, owner_tid: usize, socket: usize, pages: usize) -> FlowId {
        let flow = LockFlow {
            owner_tid,
            socket,
            remaining_pages: pages as f64,
            lock_ns: 0.0,
            pin_ns: 0.0,
        };
        let id = self
            .flows
            .iter()
            .position(|f| f.is_none())
            .unwrap_or_else(|| {
                self.flows.push(None);
                self.flows.len() - 1
            });
        self.flows[id] = Some(flow);
        self.recache();
        self.peak_concurrency = self.peak_concurrency.max(self.active());
        self.depth.record(self.active() as u64);
        FlowId(id)
    }

    /// Is a flow drained? Call `update(now)` first.
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows[id.0]
            .as_ref()
            .expect("live flow")
            .remaining_pages
            <= EPS
    }

    /// Estimated completion time of a flow under the current set.
    pub fn eta(&self, id: FlowId, now: u64) -> u64 {
        let f = self.flows[id.0].as_ref().expect("live flow");
        let c = self.active_count as f64;
        let rate = 1.0 / (c * self.grant);
        now + (f.remaining_pages.max(0.0) / rate).ceil() as u64
    }

    /// Remove a drained flow, streaming `(owner_tid, new_eta)` for each
    /// remaining flow (which just sped up and must be re-woken) into
    /// `wake`; returns the `(lock_ns, pin_ns)` attribution. Allocation-
    /// free: wake storms feed [`kacc_sim_core::Waker::wake_at`] directly.
    pub fn remove_with(
        &mut self,
        id: FlowId,
        now: u64,
        mut wake: impl FnMut(usize, u64),
    ) -> (f64, f64) {
        let f = self.flows[id.0].take().expect("live flow");
        self.recache();
        for (i, slot) in self.flows.iter().enumerate() {
            if let Some(flow) = slot.as_ref() {
                wake(flow.owner_tid, self.eta(FlowId(i), now));
            }
        }
        (f.lock_ns, f.pin_ns)
    }

    /// Remove a drained flow, returning `(lock_ns, pin_ns)` attribution
    /// and the list of `(owner_tid, new_eta)` for the remaining flows.
    pub fn remove(&mut self, id: FlowId, now: u64) -> ((f64, f64), Vec<(usize, u64)>) {
        let mut wakes = Vec::new();
        let attribution = self.remove_with(id, now, |t, at| wakes.push((t, at)));
        (attribution, wakes)
    }
}

/// A copy flow in the memory system.
#[derive(Debug)]
struct MemFlow {
    owner_tid: usize,
    remaining_bytes: f64,
    /// Per-flow bandwidth ceiling (bytes/ns), inter-socket-adjusted.
    peak: f64,
    /// Capacity consumed per delivered byte (≥ 1): cross-socket flows
    /// burn DRAM *and* interconnect bandwidth, so they weigh more.
    weight: f64,
}

/// Node-wide shared memory system.
#[derive(Debug)]
pub struct MemSys {
    bw_total: f64,
    flows: Vec<Option<MemFlow>>,
    last_update: u64,
    /// Cached live-flow count, refreshed on add/remove.
    active_count: usize,
    /// Cached Σ weight over live flows, recomputed with exactly the same
    /// fold as [`Self::total_weight`] on every add/remove — bit-identical
    /// to re-summing, but O(1) at the `eta`/`update`/`rate_of` call sites
    /// that dominate wake storms.
    weight_sum: f64,
    /// Total bytes ever moved (observability).
    pub bytes_moved: f64,
    /// Peak concurrent flows (observability).
    pub peak_concurrency: usize,
    /// Rate recomputations performed (observability): each add/remove
    /// re-evaluates the shared bandwidth split for the active set.
    pub recaches: u64,
}

impl MemSys {
    /// Create a memory system with aggregate bandwidth `bw_total`
    /// bytes/ns.
    pub fn new(bw_total: f64) -> MemSys {
        MemSys {
            bw_total,
            flows: Vec::new(),
            last_update: 0,
            active_count: 0,
            weight_sum: 0.0,
            bytes_moved: 0.0,
            peak_concurrency: 0,
            recaches: 0,
        }
    }

    fn active(&self) -> usize {
        self.active_count
    }

    /// Refresh the cached count and weight sum after a set mutation.
    fn recache(&mut self) {
        self.recaches += 1;
        self.active_count = self.flows.iter().flatten().count();
        self.weight_sum = self.total_weight();
    }

    /// Fresh Σ weight over live flows (backs the `weight_sum` cache).
    fn total_weight(&self) -> f64 {
        self.flows.iter().flatten().map(|f| f.weight).sum()
    }

    fn rate_of(&self, f: &MemFlow) -> f64 {
        // Equal-rate weighted processor sharing: Σ wᵢ·rᵢ ≤ bw_total.
        let w = self.weight_sum.max(1.0);
        f.peak.min(self.bw_total / w)
    }

    /// Integrate progress up to `now`.
    pub fn update(&mut self, now: u64) {
        let dt = now.saturating_sub(self.last_update) as f64;
        self.last_update = now;
        if dt == 0.0 || self.active_count == 0 {
            return;
        }
        let share = self.bw_total / self.weight_sum.max(1.0);
        for f in self.flows.iter_mut().flatten() {
            let rate = f.peak.min(share);
            let moved = (dt * rate).min(f.remaining_bytes);
            f.remaining_bytes -= dt * rate;
            self.bytes_moved += moved;
        }
    }

    /// Add a copy flow of unit weight. Call `update(now)` first.
    pub fn add(&mut self, owner_tid: usize, bytes: usize, peak: f64) -> FlowId {
        self.add_weighted(owner_tid, bytes, peak, 1.0)
    }

    /// Add a copy flow with an explicit capacity weight.
    pub fn add_weighted(
        &mut self,
        owner_tid: usize,
        bytes: usize,
        peak: f64,
        weight: f64,
    ) -> FlowId {
        assert!(weight >= 1.0, "weights below 1 would create capacity");
        let flow = MemFlow {
            owner_tid,
            remaining_bytes: bytes as f64,
            peak,
            weight,
        };
        let id = self
            .flows
            .iter()
            .position(|f| f.is_none())
            .unwrap_or_else(|| {
                self.flows.push(None);
                self.flows.len() - 1
            });
        self.flows[id] = Some(flow);
        self.recache();
        self.peak_concurrency = self.peak_concurrency.max(self.active());
        FlowId(id)
    }

    /// Is a flow drained? Call `update(now)` first.
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows[id.0]
            .as_ref()
            .expect("live flow")
            .remaining_bytes
            <= EPS
    }

    /// Estimated completion time of a flow under the current set.
    pub fn eta(&self, id: FlowId, now: u64) -> u64 {
        let f = self.flows[id.0].as_ref().expect("live flow");
        let rate = self.rate_of(f);
        now + (f.remaining_bytes.max(0.0) / rate).ceil() as u64
    }

    /// Remove a drained flow, streaming `(owner_tid, new_eta)` for each
    /// remaining flow into `wake` — allocation-free for wake storms.
    pub fn remove_with(&mut self, id: FlowId, now: u64, mut wake: impl FnMut(usize, u64)) {
        self.flows[id.0].take().expect("live flow");
        self.recache();
        for (i, slot) in self.flows.iter().enumerate() {
            if let Some(flow) = slot.as_ref() {
                wake(flow.owner_tid, self.eta(FlowId(i), now));
            }
        }
    }

    /// Remove a drained flow; returns re-wake list for remaining flows.
    pub fn remove(&mut self, id: FlowId, now: u64) -> Vec<(usize, u64)> {
        let mut wakes = Vec::new();
        self.remove_with(id, now, |t, at| wakes.push((t, at)));
        wakes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn single_lock_flow_takes_l_per_page() {
        let mut srv = PageLockServer::new(150.0, 100.0, 0.2, 1.0);
        srv.update(0);
        let id = srv.add(0, 0, 10);
        // 10 pages at 250ns each = 2500ns.
        assert_eq!(srv.eta(id, 0), 2500);
        srv.update(2500);
        assert!(srv.is_done(id));
        let ((lock, pin), wakes) = srv.remove(id, 2500);
        assert!(wakes.is_empty());
        assert!((lock - 1500.0).abs() < 1.0);
        assert!((pin - 1000.0).abs() < 1.0);
    }

    #[test]
    fn two_symmetric_flows_halve_rate_and_bounce() {
        let mut srv = PageLockServer::new(100.0, 0.0, 0.5, 1.0);
        srv.update(0);
        let a = srv.add(0, 0, 10);
        let b = srv.add(1, 0, 10);
        // c=2: s = 100·(1+0.5·1) = 150; per-flow rate = 1/300 pages/ns;
        // 10 pages → 3000ns each.
        assert_eq!(srv.eta(a, 0), 3000);
        assert_eq!(srv.eta(b, 0), 3000);
        srv.update(3000);
        assert!(srv.is_done(a) && srv.is_done(b));
    }

    #[test]
    fn cross_socket_flows_contend_harder() {
        let mut same = PageLockServer::new(100.0, 0.0, 0.5, 4.0);
        same.update(0);
        let s1 = same.add(0, 0, 10);
        let _s2 = same.add(1, 0, 10);
        let eta_same = same.eta(s1, 0);

        let mut cross = PageLockServer::new(100.0, 0.0, 0.5, 4.0);
        cross.update(0);
        let c1 = cross.add(0, 0, 10);
        let _c2 = cross.add(1, 1, 10);
        let eta_cross = cross.eta(c1, 0);
        assert!(eta_cross > eta_same, "{eta_cross} vs {eta_same}");
    }

    #[test]
    fn emergent_gamma_is_superlinear() {
        // Effective per-page time with c readers ≈ c·s(c): measure via
        // completion time of 100-page requests and form the γ ratio.
        let total_time = |c: usize| {
            let mut srv = PageLockServer::new(150.0, 100.0, 0.17, 1.0);
            srv.update(0);
            let ids: Vec<FlowId> = (0..c).map(|i| srv.add(i, 0, 100)).collect();
            let t = srv.eta(ids[0], 0);
            srv.update(t);
            assert!(ids.iter().all(|&id| srv.is_done(id)));
            t as f64
        };
        let t1 = total_time(1);
        let gamma = |c: usize| {
            // Remove the pin-only floor? γ is defined on the whole l.
            total_time(c) / t1
        };
        let g2 = gamma(2);
        let g8 = gamma(8);
        let g32 = gamma(32);
        assert!(g2 > 2.0, "even 2 readers more than halve throughput: {g2}");
        assert!(g8 > 4.0 * g2 * 0.8, "superlinear growth: g8={g8}");
        assert!(g32 > 2.5 * g8, "superlinear growth: g32={g32} g8={g8}");
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let mut srv = PageLockServer::new(100.0, 0.0, 0.0, 1.0);
        srv.update(0);
        let a = srv.add(0, 0, 10); // alone: 1000ns
        srv.update(500); // half done
        let _b = srv.add(1, 0, 10);
        // Remaining 5 pages now at c=2 → 2·100ns per page → 1000 more ns.
        assert_eq!(srv.eta(a, 500), 1500);
    }

    #[test]
    fn memsys_processor_shares() {
        let mut m = MemSys::new(10.0);
        m.update(0);
        // Two flows with high peaks share 5 B/ns each.
        let a = m.add(0, 1000, 100.0);
        let b = m.add(1, 1000, 100.0);
        assert_eq!(m.eta(a, 0), 200);
        assert_eq!(m.eta(b, 0), 200);
        m.update(200);
        assert!(m.is_done(a) && m.is_done(b));
    }

    #[test]
    fn memsys_respects_per_flow_peak() {
        let mut m = MemSys::new(100.0);
        m.update(0);
        let a = m.add(0, 1000, 2.0); // peak-limited: 500ns
        assert_eq!(m.eta(a, 0), 500);
    }

    #[test]
    fn memsys_removal_speeds_survivors() {
        let mut m = MemSys::new(10.0);
        m.update(0);
        let a = m.add(0, 1000, 100.0);
        let b = m.add(1, 2000, 100.0);
        m.update(200); // a done (1000 bytes at 5 B/ns)
        assert!(m.is_done(a));
        assert!(!m.is_done(b));
        let wakes = m.remove(a, 200);
        // b has 1000 bytes left, now at full 10 B/ns → eta 300.
        assert_eq!(wakes, vec![(1, 300)]);
    }

    #[test]
    fn weighted_flows_consume_more_capacity() {
        // One unit flow and one weight-3 flow: Σw = 4, so each runs at
        // bw/4 — the heavy flow delivers the same rate but burns 3
        // shares (cross-socket DRAM + interconnect).
        let mut m = MemSys::new(8.0);
        m.update(0);
        let light = m.add(0, 1000, 100.0);
        let heavy = m.add_weighted(1, 1000, 100.0, 3.0);
        assert_eq!(m.eta(light, 0), 500); // 2 B/ns each
        assert_eq!(m.eta(heavy, 0), 500);
        m.update(500);
        assert!(m.is_done(light) && m.is_done(heavy));
    }

    #[test]
    #[should_panic(expected = "weights below 1")]
    fn sub_unit_weights_are_rejected() {
        let mut m = MemSys::new(8.0);
        m.update(0);
        let _ = m.add_weighted(0, 10, 1.0, 0.5);
    }

    #[test]
    fn flow_slots_are_reused() {
        let mut m = MemSys::new(10.0);
        m.update(0);
        let a = m.add(0, 10, 100.0);
        m.update(1);
        assert!(m.is_done(a));
        m.remove(a, 1);
        let b = m.add(1, 10, 100.0);
        assert_eq!(a.0, b.0, "slot reused");
    }
}
